//! The discrete-event simulator.
//!
//! Models each replica as a set of multi-server stages (input, batch,
//! worker, execute, output) competing for a bounded number of cores, plus
//! a serialized NIC. Batches are the unit of work; replica-to-replica vote
//! floods are aggregated into quorum *bundles* whose arrival times are the
//! k-th order statistic of the senders' transmit-completion times — this
//! keeps the event count O(n) per batch instead of O(n²) while preserving
//! quorum timing, stage utilization and network load.
//!
//! Clients form a closed loop: a completed batch immediately re-submits
//! its transactions (after a link latency), so offered load self-regulates
//! exactly as the paper's 80K closed-loop clients do.

use crate::report::{SimReport, SimStage};
use crate::service::{Overheads, ServiceModel};
use rdb_common::{quorum, ProtocolKind, SystemConfig};
use rdb_crypto::CostModel;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

type Ns = u64;

/// What the simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Full consensus (PBFT or Zyzzyva per the system config).
    Consensus,
    /// Figure 7's upper bound: the primary answers clients directly with
    /// no consensus; `execute` controls whether requests are executed.
    UpperBound {
        /// Execute requests before replying.
        execute: bool,
    },
}

/// Simulator configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The deployment being simulated.
    pub system: SystemConfig,
    /// Crypto cost constants (defaults to production-library costs).
    pub cost: CostModel,
    /// Fixed stage overheads.
    pub overheads: Overheads,
    /// Per-replica NIC bandwidth in Gbit/s.
    pub bandwidth_gbps: f64,
    /// One-way link latency in microseconds.
    pub link_latency_us: f64,
    /// Number of crashed backups (highest-numbered replicas).
    pub failures: usize,
    /// Simulated warmup before measurement starts, in milliseconds.
    pub warmup_ms: u64,
    /// Measurement window, in milliseconds.
    pub measure_ms: u64,
    /// What to simulate.
    pub mode: SimMode,
}

impl SimConfig {
    /// Paper-like defaults around `system`.
    pub fn new(system: SystemConfig) -> Self {
        SimConfig {
            system,
            cost: CostModel::optimized(),
            overheads: Overheads::default(),
            bandwidth_gbps: 10.0,
            link_latency_us: 75.0,
            failures: 0,
            warmup_ms: 400,
            measure_ms: 1_200,
            mode: SimMode::Consensus,
        }
    }

    /// Runs the simulation to completion.
    pub fn run(&self) -> SimReport {
        Sim::new(self).run()
    }
}

/// Vote phases whose floods are aggregated into bundles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Prepare,
    Commit,
}

/// Continuations: what happens when a job or transmission finishes.
#[derive(Debug, Clone)]
enum After {
    /// Input ingested a chunk of client requests.
    Ingested { count: u64, arrival: Ns },
    /// A batch-thread finished assembling the batch.
    BatchAssembled { batch: usize },
    /// The worker proposed the batch (primary).
    Proposed { batch: usize },
    /// Output signed the pre-prepare; hand to NIC.
    PrePrepareSigned { batch: usize },
    /// A backup's input ingested the pre-prepare.
    PrePrepareDelivered { batch: usize },
    /// A backup's worker validated the pre-prepare.
    PrePrepareProcessed { batch: usize },
    /// Output signed a vote; hand to NIC.
    VoteSigned { batch: usize, phase: Phase },
    /// NIC finished flooding a vote.
    VoteSent { batch: usize, phase: Phase },
    /// NIC finished sending the pre-prepare broadcast.
    PrePrepareSent { batch: usize },
    /// Input ingested a quorum (or straggler) vote bundle.
    VoteBundleIngested {
        batch: usize,
        phase: Phase,
        count: u64,
        advance: bool,
    },
    /// Worker processed a vote bundle that completed a quorum.
    QuorumReached { batch: usize, phase: Phase },
    /// Capacity-only work (stragglers); no protocol progress.
    Absorb,
    /// Execution of the batch finished.
    Executed { batch: usize },
    /// Output signed the batch's client replies; hand to NIC.
    RepliesSigned { batch: usize },
    /// NIC finished sending the replies.
    RepliesSent { batch: usize },
    /// Zyzzyva slow path: input ingested the commit certificates.
    CcIngested { batch: usize },
    /// Zyzzyva slow path: worker verified the commit certificates.
    CcProcessed { batch: usize },
    /// Zyzzyva slow path: output signed the local-commits; hand to NIC.
    LocalCommitsSigned { batch: usize },
    /// Zyzzyva slow path: NIC finished sending local-commits.
    LocalCommitsSent { batch: usize },
    /// Upper-bound mode: worker finished a chunk.
    UpperDone { count: u64, arrival: Ns },
    /// Upper-bound mode: NIC finished sending the replies for a chunk.
    UpperSent { count: u64, arrival: Ns },
}

#[derive(Debug)]
enum EventKind {
    /// A stage job completed.
    JobDone {
        replica: usize,
        stage: usize,
        service: Ns,
        after: After,
    },
    /// The NIC finished a transmission.
    NicDone { replica: usize, after: After },
    /// A job arrives at a stage's queue.
    JobArrive {
        replica: usize,
        stage: usize,
        service: Ns,
        after: After,
    },
    /// Client requests reach the primary.
    ClientArrive { count: u64 },
    /// A Zyzzyva client's fast-path timer expired.
    ZyzzyvaTimeout { batch: usize },
}

struct Event {
    at: Ns,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

const STAGE_COUNT: usize = 5;
const S_INPUT: usize = 0;
const S_BATCH: usize = 1;
const S_WORKER: usize = 2;
const S_EXECUTE: usize = 3;
const S_OUTPUT: usize = 4;

fn stage_enum(idx: usize) -> SimStage {
    match idx {
        S_INPUT => SimStage::Input,
        S_BATCH => SimStage::Batch,
        S_WORKER => SimStage::Worker,
        S_EXECUTE => SimStage::Execute,
        _ => SimStage::Output,
    }
}

#[derive(Debug, Default)]
struct StageState {
    servers: usize,
    busy: usize,
    queue: VecDeque<(Ns, After)>,
    busy_ns: u64,
}

#[derive(Debug)]
struct Rep {
    stages: Vec<StageState>,
    cores: usize,
    cores_busy: usize,
    /// Jobs whose stage has a free server but no core was available.
    core_wait: VecDeque<(usize, Ns, After)>,
    nic_busy_until: Ns,
    nic_busy_ns: u64,
    crashed: bool,
}

/// Per-batch protocol bookkeeping.
#[derive(Debug, Default)]
struct BatchSt {
    size: u64,
    arrival: Ns,
    prepare_senders: Vec<(usize, Ns)>,
    prepare_sched: u64,
    prepare_absorbed: bool,
    commit_senders: Vec<(usize, Ns)>,
    commit_sched: u64,
    commit_absorbed: bool,
    reply_arrivals: u64,
    lc_arrivals: u64,
    completed: bool,
    cc_fired: bool,
}

struct Sim<'a> {
    cfg: &'a SimConfig,
    svc: ServiceModel,
    n: usize,
    f: usize,
    reps: Vec<Rep>,
    events: BinaryHeap<Reverse<Event>>,
    now: Ns,
    event_seq: u64,
    latency_ns: Ns,
    pool: u64,
    pool_arrivals: VecDeque<(u64, Ns)>,
    batches: Vec<BatchSt>,
    warmup_end: Ns,
    end: Ns,
    completed_txns: u64,
    latency_sum_ns: f64,
    latency_count: u64,
    batches_committed: u64,
    ckpt_amortized: f64,
}

impl<'a> Sim<'a> {
    fn new(cfg: &'a SimConfig) -> Self {
        let sys = &cfg.system;
        let svc = ServiceModel::new(sys, cfg.cost.clone(), cfg.overheads.clone());
        let n = sys.n;
        let t = &sys.threads;
        let mut reps = Vec::with_capacity(n);
        for r in 0..n {
            let is_primary = r == 0;
            let mut stages = Vec::with_capacity(STAGE_COUNT);
            let servers = |s: usize| -> usize {
                match s {
                    S_INPUT => {
                        if is_primary {
                            t.client_input_threads + t.replica_input_threads
                        } else {
                            t.replica_input_threads.max(1)
                        }
                    }
                    S_BATCH => {
                        if is_primary {
                            t.batch_threads
                        } else {
                            0
                        }
                    }
                    S_WORKER => t.worker_threads.max(1),
                    S_EXECUTE => t.execute_threads,
                    _ => t.output_threads.max(1),
                }
            };
            for s in 0..STAGE_COUNT {
                stages.push(StageState {
                    servers: servers(s),
                    ..Default::default()
                });
            }
            let crashed = r != 0 && r >= n - cfg.failures;
            reps.push(Rep {
                stages,
                cores: sys.cores,
                cores_busy: 0,
                core_wait: VecDeque::new(),
                nic_busy_until: 0,
                nic_busy_ns: 0,
                crashed,
            });
        }
        let warmup_end = cfg.warmup_ms * 1_000_000;
        let end = warmup_end + cfg.measure_ms * 1_000_000;
        let interval_batches = (sys.checkpoint_interval / sys.batch_size as u64).max(1);
        let ckpt_amortized = svc.checkpoint_worker_amortized(n, interval_batches);
        Sim {
            cfg,
            svc,
            n,
            f: sys.f,
            reps,
            events: BinaryHeap::new(),
            now: 0,
            event_seq: 0,
            latency_ns: (cfg.link_latency_us * 1_000.0) as Ns,
            pool: 0,
            pool_arrivals: VecDeque::new(),
            batches: Vec::new(),
            warmup_end,
            end,
            completed_txns: 0,
            latency_sum_ns: 0.0,
            latency_count: 0,
            batches_committed: 0,
            ckpt_amortized,
        }
    }

    fn push_event(&mut self, at: Ns, kind: EventKind) {
        self.event_seq += 1;
        self.events.push(Reverse(Event {
            at,
            seq: self.event_seq,
            kind,
        }));
    }

    /// Enqueues a job for `stage` at `replica`, starting it if a server
    /// and core are free.
    fn enqueue(&mut self, replica: usize, stage: usize, service_ns: f64, after: After) {
        if self.reps[replica].crashed {
            return;
        }
        let service = service_ns.max(1.0) as Ns;
        let rep = &mut self.reps[replica];
        let st = &mut rep.stages[stage];
        if st.busy < st.servers {
            if rep.cores_busy < rep.cores {
                st.busy += 1;
                rep.cores_busy += 1;
                let at = self.now + service;
                self.push_event(
                    at,
                    EventKind::JobDone {
                        replica,
                        stage,
                        service,
                        after,
                    },
                );
            } else {
                rep.core_wait.push_back((stage, service, after));
            }
        } else {
            st.queue.push_back((service, after));
        }
    }

    /// Called after a job releases its server+core: start whatever can run.
    fn dispatch(&mut self, replica: usize) {
        loop {
            let rep = &mut self.reps[replica];
            if rep.cores_busy >= rep.cores {
                return;
            }
            // First serve core-waiters whose stage has a free server.
            let mut started = false;
            for i in 0..rep.core_wait.len() {
                let stage = rep.core_wait[i].0;
                if rep.stages[stage].busy < rep.stages[stage].servers {
                    let (stage, service, after) = rep.core_wait.remove(i).expect("index checked");
                    rep.stages[stage].busy += 1;
                    rep.cores_busy += 1;
                    let at = self.now + service;
                    self.push_event(
                        at,
                        EventKind::JobDone {
                            replica,
                            stage,
                            service,
                            after,
                        },
                    );
                    started = true;
                    break;
                }
            }
            if started {
                continue;
            }
            // Then pull from stage queues.
            for stage in 0..STAGE_COUNT {
                let rep = &mut self.reps[replica];
                let st = &mut rep.stages[stage];
                if st.busy < st.servers && rep.cores_busy < rep.cores {
                    if let Some((service, after)) = st.queue.pop_front() {
                        st.busy += 1;
                        rep.cores_busy += 1;
                        let at = self.now + service;
                        self.push_event(
                            at,
                            EventKind::JobDone {
                                replica,
                                stage,
                                service,
                                after,
                            },
                        );
                        started = true;
                        break;
                    }
                }
            }
            if !started {
                return;
            }
        }
    }

    /// Serialized NIC: transmission completes FIFO.
    fn nic_push(&mut self, replica: usize, bytes: f64, after: After) {
        if self.reps[replica].crashed {
            return;
        }
        let tx_ns = (bytes * 8.0 / self.cfg.bandwidth_gbps).max(1.0) as Ns;
        let rep = &mut self.reps[replica];
        let start = rep.nic_busy_until.max(self.now);
        let done = start + tx_ns;
        rep.nic_busy_until = done;
        rep.nic_busy_ns += tx_ns;
        self.push_event(done, EventKind::NicDone { replica, after });
    }

    fn live(&self, r: usize) -> bool {
        !self.reps[r].crashed
    }

    fn live_count(&self) -> usize {
        self.reps.iter().filter(|r| !r.crashed).count()
    }

    // --- protocol flow -----------------------------------------------------

    fn on_client_arrive(&mut self, count: u64) {
        let arrival = self.now;
        match self.cfg.mode {
            SimMode::UpperBound { execute } => {
                let per_req = self.svc.input_request()
                    + if execute {
                        self.cfg.overheads.mem_op_ns * self.cfg.system.ops_per_txn as f64
                    } else {
                        0.0
                    }
                    + self.cfg.overheads.reply_create_ns;
                self.enqueue(
                    0,
                    S_WORKER,
                    count as f64 * per_req,
                    After::UpperDone { count, arrival },
                );
            }
            SimMode::Consensus => {
                self.enqueue(
                    0,
                    S_INPUT,
                    count as f64 * self.svc.input_request(),
                    After::Ingested { count, arrival },
                );
            }
        }
    }

    fn form_batches(&mut self) {
        let b = self.cfg.system.batch_size as u64;
        while self.pool >= b {
            self.pool -= b;
            // The batch inherits the arrival time of its oldest requests.
            let mut need = b;
            let mut arrival = self.now;
            while need > 0 {
                let Some((cnt, t)) = self.pool_arrivals.front_mut() else {
                    break;
                };
                arrival = arrival.min(*t);
                if *cnt > need {
                    *cnt -= need;
                    need = 0;
                } else {
                    need -= *cnt;
                    self.pool_arrivals.pop_front();
                }
            }
            let id = self.batches.len();
            self.batches.push(BatchSt {
                size: b,
                arrival,
                ..Default::default()
            });
            let has_batch_stage = self.reps[0].stages[S_BATCH].servers > 0;
            if has_batch_stage {
                self.enqueue(
                    0,
                    S_BATCH,
                    self.svc.assemble_batch(),
                    After::BatchAssembled { batch: id },
                );
            } else {
                // 0B: assembly + propose folded into the worker.
                self.enqueue(
                    0,
                    S_WORKER,
                    self.svc.assemble_batch() + self.svc.propose(),
                    After::Proposed { batch: id },
                );
            }
        }
    }

    fn schedule_execute(&mut self, replica: usize, batch: usize) {
        let has_exec = self.reps[replica].stages[S_EXECUTE].servers > 0;
        let stage = if has_exec { S_EXECUTE } else { S_WORKER };
        self.enqueue(
            replica,
            stage,
            self.svc.execute_batch(),
            After::Executed { batch },
        );
    }

    /// Vote-bundle scheduling: when enough senders of `phase` have finished
    /// transmitting, each receiver ingests a quorum bundle; once all live
    /// senders finished, receivers absorb the stragglers.
    fn check_vote_receivers(&mut self, batch: usize, phase: Phase) {
        let protocol = self.cfg.system.protocol;
        debug_assert_eq!(protocol, ProtocolKind::Pbft, "vote phases are PBFT-only");
        let live_senders: Vec<usize> = match phase {
            // Backups send prepares; everyone sends commits.
            Phase::Prepare => (1..self.n).filter(|&r| self.live(r)).collect(),
            Phase::Commit => (0..self.n).filter(|&r| self.live(r)).collect(),
        };
        let senders_done: Vec<(usize, Ns)> = match phase {
            Phase::Prepare => self.batches[batch].prepare_senders.clone(),
            Phase::Commit => self.batches[batch].commit_senders.clone(),
        };
        for r in 0..self.n {
            if !self.live(r) {
                continue;
            }
            let bit = 1u64 << r;
            let sched = match phase {
                Phase::Prepare => self.batches[batch].prepare_sched & bit != 0,
                Phase::Commit => self.batches[batch].commit_sched & bit != 0,
            };
            if sched {
                continue;
            }
            // Quorum counting: own votes count without traveling the wire.
            // Prepare: prepared = 2f votes; a backup contributed its own,
            // the primary holds the pre-prepare. Commit: 2f+1 total, one
            // is the receiver's own.
            let needed_from_others = match phase {
                Phase::Prepare => {
                    if r == 0 {
                        quorum::prepare_quorum(self.f)
                    } else {
                        quorum::prepare_quorum(self.f).saturating_sub(1)
                    }
                }
                Phase::Commit => quorum::commit_quorum(self.f) - 1,
            };
            let from_others = senders_done.iter().filter(|(s, _)| *s != r).count();
            if from_others >= needed_from_others {
                match phase {
                    Phase::Prepare => self.batches[batch].prepare_sched |= bit,
                    Phase::Commit => self.batches[batch].commit_sched |= bit,
                }
                let count = needed_from_others as u64;
                let at = self.now + self.latency_ns;
                self.push_event(
                    at,
                    EventKind::JobArrive {
                        replica: r,
                        stage: S_INPUT,
                        service: (count as f64 * self.svc.input_message()).max(1.0) as Ns,
                        after: After::VoteBundleIngested {
                            batch,
                            phase,
                            count,
                            advance: true,
                        },
                    },
                );
            }
        }
        // Stragglers: once every live sender transmitted, receivers pay for
        // the surplus votes beyond their quorum (capacity only).
        let all_done = senders_done.len() >= live_senders.len();
        let absorbed = match phase {
            Phase::Prepare => self.batches[batch].prepare_absorbed,
            Phase::Commit => self.batches[batch].commit_absorbed,
        };
        if all_done && !absorbed {
            match phase {
                Phase::Prepare => self.batches[batch].prepare_absorbed = true,
                Phase::Commit => self.batches[batch].commit_absorbed = true,
            }
            for r in 0..self.n {
                if !self.live(r) {
                    continue;
                }
                let total_from_others = live_senders.iter().filter(|&&s| s != r).count();
                let needed = match phase {
                    Phase::Prepare => {
                        if r == 0 {
                            quorum::prepare_quorum(self.f)
                        } else {
                            quorum::prepare_quorum(self.f).saturating_sub(1)
                        }
                    }
                    Phase::Commit => quorum::commit_quorum(self.f) - 1,
                };
                let extra = total_from_others.saturating_sub(needed) as u64;
                if extra > 0 {
                    let at = self.now + self.latency_ns;
                    self.push_event(
                        at,
                        EventKind::JobArrive {
                            replica: r,
                            stage: S_INPUT,
                            service: (extra as f64 * self.svc.input_message()).max(1.0) as Ns,
                            after: After::VoteBundleIngested {
                                batch,
                                phase,
                                count: extra,
                                advance: false,
                            },
                        },
                    );
                }
            }
        }
    }

    fn complete_batch(&mut self, batch: usize, at: Ns) {
        if self.batches[batch].completed {
            return;
        }
        self.batches[batch].completed = true;
        let size = self.batches[batch].size;
        let arrival = self.batches[batch].arrival;
        if at >= self.warmup_end && at < self.end {
            self.completed_txns += size;
            // Full client-observed latency: request flight + pipeline +
            // reply flight (arrival timestamps are at the primary).
            self.latency_sum_ns += (at - arrival) as f64 + self.latency_ns as f64;
            self.latency_count += 1;
        }
        // Closed loop: the clients re-submit; their requests reach the
        // primary one link latency later.
        if at < self.end {
            self.push_event(
                at + self.latency_ns,
                EventKind::ClientArrive { count: size },
            );
        }
    }

    fn on_after(&mut self, replica: usize, after: After) {
        let protocol = self.cfg.system.protocol;
        match after {
            After::Ingested { count, arrival } => {
                self.pool += count;
                self.pool_arrivals.push_back((count, arrival));
                self.form_batches();
            }
            After::BatchAssembled { batch } => {
                self.enqueue(0, S_WORKER, self.svc.propose(), After::Proposed { batch });
            }
            After::Proposed { batch } => {
                self.enqueue(
                    0,
                    S_OUTPUT,
                    self.svc.sign_replica_msg(self.svc.batch_bytes),
                    After::PrePrepareSigned { batch },
                );
                if protocol == ProtocolKind::Zyzzyva {
                    // The primary executes its own proposal speculatively.
                    self.schedule_execute(0, batch);
                }
            }
            After::PrePrepareSigned { batch } => {
                let fanout = (self.n - 1) as f64;
                self.nic_push(
                    0,
                    fanout * self.svc.batch_bytes as f64,
                    After::PrePrepareSent { batch },
                );
            }
            After::PrePrepareSent { batch } => {
                for r in 1..self.n {
                    if !self.live(r) {
                        continue;
                    }
                    let at = self.now + self.latency_ns;
                    self.push_event(
                        at,
                        EventKind::JobArrive {
                            replica: r,
                            stage: S_INPUT,
                            service: self.svc.input_message().max(1.0) as Ns,
                            after: After::PrePrepareDelivered { batch },
                        },
                    );
                }
            }
            After::PrePrepareDelivered { batch } => {
                self.enqueue(
                    replica,
                    S_WORKER,
                    self.svc.verify_pre_prepare() + self.ckpt_amortized,
                    After::PrePrepareProcessed { batch },
                );
            }
            After::PrePrepareProcessed { batch } => match protocol {
                ProtocolKind::Pbft => {
                    self.enqueue(
                        replica,
                        S_OUTPUT,
                        self.svc.sign_replica_msg(self.svc.vote_bytes),
                        After::VoteSigned {
                            batch,
                            phase: Phase::Prepare,
                        },
                    );
                }
                ProtocolKind::Zyzzyva => {
                    self.schedule_execute(replica, batch);
                }
            },
            After::VoteSigned { batch, phase } => {
                let fanout = (self.n - 1) as f64;
                self.nic_push(
                    replica,
                    fanout * self.svc.vote_bytes as f64,
                    After::VoteSent { batch, phase },
                );
            }
            After::VoteSent { batch, phase } => {
                match phase {
                    Phase::Prepare => self.batches[batch]
                        .prepare_senders
                        .push((replica, self.now)),
                    Phase::Commit => self.batches[batch].commit_senders.push((replica, self.now)),
                }
                self.check_vote_receivers(batch, phase);
            }
            After::VoteBundleIngested {
                batch,
                phase,
                count,
                advance,
            } => {
                let after = if advance {
                    After::QuorumReached { batch, phase }
                } else {
                    After::Absorb
                };
                self.enqueue(
                    replica,
                    S_WORKER,
                    count as f64 * self.svc.process_vote(),
                    after,
                );
            }
            After::QuorumReached { batch, phase } => match phase {
                Phase::Prepare => {
                    self.enqueue(
                        replica,
                        S_OUTPUT,
                        self.svc.sign_replica_msg(self.svc.vote_bytes),
                        After::VoteSigned {
                            batch,
                            phase: Phase::Commit,
                        },
                    );
                }
                Phase::Commit => {
                    if replica == 0 {
                        self.batches_committed += 1;
                    }
                    self.schedule_execute(replica, batch);
                }
            },
            After::Absorb => {}
            After::Executed { batch } => {
                self.enqueue(
                    replica,
                    S_OUTPUT,
                    self.svc.reply_batch(),
                    After::RepliesSigned { batch },
                );
            }
            After::RepliesSigned { batch } => {
                let b = self.batches[batch].size as f64;
                self.nic_push(
                    replica,
                    b * self.svc.reply_bytes as f64,
                    After::RepliesSent { batch },
                );
            }
            After::RepliesSent { batch } => {
                self.batches[batch].reply_arrivals += 1;
                let arrivals = self.batches[batch].reply_arrivals as usize;
                let client_sees_at = self.now + self.latency_ns;
                match protocol {
                    ProtocolKind::Pbft => {
                        if arrivals >= quorum::client_reply_quorum(self.f) {
                            self.complete_batch(batch, client_sees_at);
                        }
                    }
                    ProtocolKind::Zyzzyva => {
                        let live = self.live_count();
                        if self.cfg.failures == 0 {
                            // Fast path: all 3f+1 must answer.
                            if arrivals >= live {
                                self.complete_batch(batch, client_sees_at);
                            }
                        } else if arrivals >= quorum::zyzzyva_cc_quorum(self.f)
                            && !self.batches[batch].cc_fired
                        {
                            // Fast path is impossible: the client waits out
                            // its timer, then distributes certificates.
                            self.batches[batch].cc_fired = true;
                            let timeout = self.cfg.system.client_timeout_ms * 1_000_000;
                            self.push_event(
                                client_sees_at + timeout,
                                EventKind::ZyzzyvaTimeout { batch },
                            );
                        }
                    }
                }
            }
            After::CcIngested { batch } => {
                let b = self.batches[batch].size as f64;
                let q = quorum::zyzzyva_cc_quorum(self.f);
                self.enqueue(
                    replica,
                    S_WORKER,
                    b * self.svc.verify_commit_cert(q),
                    After::CcProcessed { batch },
                );
            }
            After::CcProcessed { batch } => {
                let b = self.batches[batch].size as f64;
                self.enqueue(
                    replica,
                    S_OUTPUT,
                    b * (self.cfg.overheads.reply_create_ns
                        + self.svc.sign_replica_msg(self.svc.vote_bytes)),
                    After::LocalCommitsSigned { batch },
                );
            }
            After::LocalCommitsSigned { batch } => {
                let b = self.batches[batch].size as f64;
                self.nic_push(
                    replica,
                    b * self.svc.vote_bytes as f64,
                    After::LocalCommitsSent { batch },
                );
            }
            After::LocalCommitsSent { batch } => {
                self.batches[batch].lc_arrivals += 1;
                if self.batches[batch].lc_arrivals as usize >= quorum::zyzzyva_cc_quorum(self.f) {
                    self.complete_batch(batch, self.now + self.latency_ns);
                }
            }
            After::UpperDone { count, arrival } => {
                self.nic_push(
                    0,
                    count as f64 * self.svc.reply_bytes as f64,
                    After::UpperSent { count, arrival },
                );
            }
            After::UpperSent { count, arrival } => {
                let at = self.now + self.latency_ns;
                if at >= self.warmup_end && at < self.end {
                    self.completed_txns += count;
                    self.latency_sum_ns +=
                        count as f64 * ((at - arrival) as f64 + self.latency_ns as f64);
                    self.latency_count += count;
                }
                if at < self.end {
                    self.push_event(at + self.latency_ns, EventKind::ClientArrive { count });
                }
            }
        }
    }

    fn run(mut self) -> SimReport {
        // Seed the closed loop: all clients submit, staggered over a short
        // ramp so the input stage is not hit by one giant burst.
        let total = (self.cfg.system.num_clients * self.cfg.system.max_outstanding) as u64;
        let chunk = self.cfg.system.batch_size as u64;
        let chunks = total.div_ceil(chunk);
        let ramp_ns: Ns = 20_000_000; // 20 ms
        for i in 0..chunks {
            let count = chunk.min(total - i * chunk);
            let at = i * ramp_ns / chunks.max(1);
            self.push_event(at, EventKind::ClientArrive { count });
        }

        while let Some(Reverse(ev)) = self.events.pop() {
            if ev.at > self.end + self.latency_ns * 4 {
                break;
            }
            self.now = ev.at;
            match ev.kind {
                EventKind::ClientArrive { count } => self.on_client_arrive(count),
                EventKind::JobArrive {
                    replica,
                    stage,
                    service,
                    after,
                } => {
                    self.enqueue(replica, stage, service as f64, after);
                }
                EventKind::JobDone {
                    replica,
                    stage,
                    service,
                    after,
                } => {
                    {
                        let rep = &mut self.reps[replica];
                        rep.stages[stage].busy -= 1;
                        rep.stages[stage].busy_ns += service;
                        rep.cores_busy -= 1;
                    }
                    self.on_after(replica, after);
                    self.dispatch(replica);
                }
                EventKind::NicDone { replica, after } => self.on_after(replica, after),
                EventKind::ZyzzyvaTimeout { batch } => {
                    // The client broadcasts per-request commit certificates.
                    let b = self.batches[batch].size as f64;
                    for r in 0..self.n {
                        if !self.live(r) {
                            continue;
                        }
                        let at = self.now + self.latency_ns;
                        self.push_event(
                            at,
                            EventKind::JobArrive {
                                replica: r,
                                stage: S_INPUT,
                                service: (b * self.svc.input_message()).max(1.0) as Ns,
                                after: After::CcIngested { batch },
                            },
                        );
                    }
                }
            }
        }

        // Saturation: busy per thread over the measured duration.
        let duration = self.end as f64;
        let sat = |rep: &Rep, s: usize| -> f64 {
            let st = &rep.stages[s];
            if st.servers == 0 {
                return 0.0;
            }
            100.0 * st.busy_ns as f64 / (duration * st.servers as f64)
        };
        let mut primary_saturation = BTreeMap::new();
        let mut backup_saturation = BTreeMap::new();
        for s in 0..STAGE_COUNT {
            primary_saturation.insert(stage_enum(s), sat(&self.reps[0], s));
            let backups: Vec<&Rep> = self.reps[1..].iter().filter(|r| !r.crashed).collect();
            let mean = if backups.is_empty() {
                0.0
            } else {
                backups.iter().map(|r| sat(r, s)).sum::<f64>() / backups.len() as f64
            };
            backup_saturation.insert(stage_enum(s), mean);
        }
        primary_saturation.insert(
            SimStage::Nic,
            100.0 * self.reps[0].nic_busy_ns as f64 / duration,
        );

        let measure_s = self.cfg.measure_ms as f64 / 1_000.0;
        SimReport {
            throughput_tps: self.completed_txns as f64 / measure_s,
            avg_latency_ms: if self.latency_count == 0 {
                0.0
            } else {
                self.latency_sum_ns / self.latency_count as f64 / 1e6
            },
            completed_txns: self.completed_txns,
            batches_committed: self.batches_committed,
            primary_saturation,
            backup_saturation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::{CryptoScheme, StorageMode, ThreadConfig};

    fn base(n: usize) -> SimConfig {
        let mut sys = SystemConfig::new(n).unwrap();
        sys.num_clients = 4_000;
        let mut cfg = SimConfig::new(sys);
        cfg.warmup_ms = 200;
        cfg.measure_ms = 400;
        cfg
    }

    #[test]
    fn pbft_sim_produces_throughput() {
        let report = base(4).run();
        assert!(report.throughput_tps > 1_000.0, "got {report}");
        assert!(report.avg_latency_ms > 0.0);
        assert!(report.batches_committed > 0);
    }

    #[test]
    fn zyzzyva_sim_produces_throughput() {
        let mut cfg = base(4);
        cfg.system.protocol = ProtocolKind::Zyzzyva;
        let report = cfg.run();
        assert!(report.throughput_tps > 1_000.0, "got {report}");
    }

    #[test]
    fn deterministic_runs() {
        let a = base(4).run();
        let b = base(4).run();
        assert_eq!(a.completed_txns, b.completed_txns);
        assert_eq!(a.batches_committed, b.batches_committed);
    }

    #[test]
    fn batching_beats_single_request_consensus() {
        let mut single = base(4);
        single.system.batch_size = 1;
        let mut batched = base(4);
        batched.system.batch_size = 100;
        let s = single.run();
        let b = batched.run();
        assert!(
            b.throughput_tps > s.throughput_tps * 3.0,
            "batched {} vs single {}",
            b.throughput_tps,
            s.throughput_tps
        );
    }

    #[test]
    fn pipelined_beats_monolith() {
        let mut mono = base(4);
        mono.system.threads = ThreadConfig::monolithic();
        let mut piped = base(4);
        piped.system.threads = ThreadConfig::standard();
        let m = mono.run();
        let p = piped.run();
        assert!(
            p.throughput_tps > m.throughput_tps,
            "pipelined {} vs monolithic {}",
            p.throughput_tps,
            m.throughput_tps
        );
    }

    #[test]
    fn paged_storage_collapses_throughput() {
        let mem = base(4).run();
        let mut paged_cfg = base(4);
        paged_cfg.system.storage = StorageMode::Paged;
        let paged = paged_cfg.run();
        assert!(
            paged.throughput_tps < mem.throughput_tps / 4.0,
            "paged {} vs mem {}",
            paged.throughput_tps,
            mem.throughput_tps
        );
    }

    #[test]
    fn rsa_slower_than_cmac() {
        let mut rsa_cfg = base(4);
        rsa_cfg.system.crypto = CryptoScheme::Rsa;
        let rsa = rsa_cfg.run();
        let cmac = base(4).run();
        assert!(
            cmac.throughput_tps > rsa.throughput_tps * 2.0,
            "cmac {} vs rsa {}",
            cmac.throughput_tps,
            rsa.throughput_tps
        );
    }

    #[test]
    fn zyzzyva_collapses_under_failure_pbft_does_not() {
        let mut pbft_fail = base(4);
        pbft_fail.failures = 1;
        let pbft = pbft_fail.run();

        let mut zyz_ok = base(4);
        zyz_ok.system.protocol = ProtocolKind::Zyzzyva;
        let zyz_healthy = zyz_ok.run();

        let mut zyz_fail = base(4);
        zyz_fail.system.protocol = ProtocolKind::Zyzzyva;
        zyz_fail.failures = 1;
        let zyz = zyz_fail.run();

        assert!(
            pbft.throughput_tps > zyz.throughput_tps * 2.0,
            "PBFT under failure {} must dominate Zyzzyva under failure {}",
            pbft.throughput_tps,
            zyz.throughput_tps
        );
        assert!(
            zyz.throughput_tps < zyz_healthy.throughput_tps / 2.0,
            "Zyzzyva must collapse: healthy {} vs failed {}",
            zyz_healthy.throughput_tps,
            zyz.throughput_tps
        );
    }

    #[test]
    fn upper_bound_exceeds_consensus() {
        let consensus = base(4).run();
        let mut ub_cfg = base(4);
        ub_cfg.mode = SimMode::UpperBound { execute: false };
        ub_cfg.system.crypto = CryptoScheme::NoCrypto;
        ub_cfg.system.threads.worker_threads = 2;
        let ub = ub_cfg.run();
        assert!(
            ub.throughput_tps > consensus.throughput_tps,
            "upper bound {} vs consensus {}",
            ub.throughput_tps,
            consensus.throughput_tps
        );
    }

    #[test]
    fn fewer_cores_reduce_throughput() {
        let mut one_core = base(4);
        one_core.system.cores = 1;
        let one = one_core.run();
        let eight = base(4).run();
        assert!(
            eight.throughput_tps > one.throughput_tps * 1.5,
            "8 cores {} vs 1 core {}",
            eight.throughput_tps,
            one.throughput_tps
        );
    }

    #[test]
    fn saturation_reported() {
        let report = base(4).run();
        let batch_sat = report.primary_saturation[&SimStage::Batch];
        assert!(batch_sat > 1.0, "batch stage should be busy: {batch_sat}");
        assert!(report.primary_cumulative() > batch_sat);
    }
}
