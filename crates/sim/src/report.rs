//! Simulation output: throughput, latency and stage saturations.

use std::collections::BTreeMap;
use std::fmt;

/// Pipeline stages the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimStage {
    /// Network ingestion threads.
    Input,
    /// Batch assembly threads (primary).
    Batch,
    /// The consensus worker thread.
    Worker,
    /// Ordered execution threads.
    Execute,
    /// Signing/transmit threads.
    Output,
    /// The NIC (bandwidth, not a CPU thread).
    Nic,
}

impl SimStage {
    /// All CPU stages (excluding the NIC).
    pub const CPU: [SimStage; 5] = [
        SimStage::Input,
        SimStage::Batch,
        SimStage::Worker,
        SimStage::Execute,
        SimStage::Output,
    ];

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            SimStage::Input => "input",
            SimStage::Batch => "batch",
            SimStage::Worker => "worker",
            SimStage::Execute => "execute",
            SimStage::Output => "output",
            SimStage::Nic => "nic",
        }
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Committed transactions per second during the measurement window.
    pub throughput_tps: f64,
    /// Mean client-observed latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Transactions completed inside the measurement window.
    pub completed_txns: u64,
    /// Batches committed at the primary during the whole run.
    pub batches_committed: u64,
    /// Mean per-thread saturation (%) by stage at the primary.
    pub primary_saturation: BTreeMap<SimStage, f64>,
    /// Mean per-thread saturation (%) by stage averaged over live backups.
    pub backup_saturation: BTreeMap<SimStage, f64>,
}

impl SimReport {
    /// Throughput in thousands of transactions per second.
    pub fn ktps(&self) -> f64 {
        self.throughput_tps / 1_000.0
    }

    /// Sum of primary stage saturations (the "cumulative" bar of Fig. 9).
    pub fn primary_cumulative(&self) -> f64 {
        self.primary_saturation.values().sum()
    }

    /// Sum of backup stage saturations.
    pub fn backup_cumulative(&self) -> f64 {
        self.backup_saturation.values().sum()
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} ktxn/s, {:.2} ms latency ({} txns, {} batches)",
            self.ktps(),
            self.avg_latency_ms,
            self.completed_txns,
            self.batches_committed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_sums() {
        let mut primary = BTreeMap::new();
        primary.insert(SimStage::Worker, 50.0);
        primary.insert(SimStage::Batch, 30.0);
        let r = SimReport {
            throughput_tps: 10_000.0,
            avg_latency_ms: 5.0,
            completed_txns: 10_000,
            batches_committed: 100,
            primary_saturation: primary,
            backup_saturation: BTreeMap::new(),
        };
        assert!((r.primary_cumulative() - 80.0).abs() < 1e-9);
        assert!((r.ktps() - 10.0).abs() < 1e-9);
        assert!(r.to_string().contains("ktxn/s"));
    }
}
