//! Multi-primary ordering model: predicted throughput for k parallel
//! consensus instances over one replica set.
//!
//! The threaded runtime runs k PBFT instances with rotated leadership —
//! instance `j` is led by replica `(view + j) mod n` and owns global
//! sequences `j+1, j+1+k, …` — so every replica is the primary of one
//! instance and a backup of the other `k − 1`. The win comes from the
//! asymmetry the discrete-event simulator already measures: at
//! saturation, the single-primary bottleneck is a leader-only stage
//! (batch assembly), pegged at ~100% on the primary and idle on every
//! backup. Spreading leadership spreads exactly that stage.
//!
//! The model is the standard linear-rate argument. Let `S_p[s]` and
//! `S_b[s]` be the k = 1 primary/backup saturations of stage `s` at
//! measured throughput `T₁`. In a k-instance deployment at the same
//! total throughput, each instance carries `T₁/k`, and a replica pays
//! the primary rate for its own instance plus the backup rate for the
//! other `k − 1`:
//!
//! ```text
//! U_k[s] = (S_p[s] + (k − 1) · S_b[s]) / k
//! ```
//!
//! Stages whose cost is role-independent (execution replays the whole
//! merged schedule everywhere, `S_p = S_b`) correctly don't shard under
//! this formula: `U_k = S_b` for all k. Scaling throughput until the
//! hottest stage hits the k = 1 binding level `B₁ = max_s S_p[s]` gives
//!
//! ```text
//! T_k = T₁ · B₁ / max_s U_k[s]
//! ```
//!
//! with a hard ceiling at `B₁ / U_∞` where `U_∞` is the saturation of
//! the non-shardable stages — on this pipeline, ordered execution.

use crate::des::SimConfig;
use crate::report::{SimReport, SimStage};
use std::collections::BTreeMap;

/// Predicted behaviour of one k value, derived from a k = 1 base run.
#[derive(Debug, Clone)]
pub struct MultiPrimaryPrediction {
    /// Number of parallel consensus instances.
    pub k: usize,
    /// Measured k = 1 throughput the prediction scales from (txn/s).
    pub base_tps: f64,
    /// Predicted committed-transactions/s with k instances.
    pub predicted_tps: f64,
    /// `predicted_tps / base_tps`.
    pub speedup: f64,
    /// Per-replica stage load `U_k[s]` (%) at the base throughput.
    pub per_stage: BTreeMap<SimStage, f64>,
    /// The stage that binds at k (highest `U_k`), and its load (%).
    pub bottleneck: (SimStage, f64),
}

impl MultiPrimaryPrediction {
    /// One row of hand-rolled JSON (the workspace has no serde_json).
    pub fn to_json(&self) -> String {
        let stages: Vec<String> = self
            .per_stage
            .iter()
            .map(|(s, v)| format!("\"{}\": {:.2}", s.label(), v))
            .collect();
        format!(
            "{{\"k\": {}, \"base_tps\": {:.1}, \"predicted_tps\": {:.1}, \
             \"speedup\": {:.3}, \"bottleneck\": \"{}\", \
             \"bottleneck_pct\": {:.2}, \"stage_load\": {{{}}}}}",
            self.k,
            self.base_tps,
            self.predicted_tps,
            self.speedup,
            self.bottleneck.0.label(),
            self.bottleneck.1,
            stages.join(", ")
        )
    }
}

/// Backup saturation for a stage; stages the backup map doesn't report
/// (the NIC) are taken at the primary rate — i.e. treated as
/// non-shardable, the conservative choice.
fn backup_rate(base: &SimReport, s: SimStage) -> f64 {
    base.backup_saturation
        .get(&s)
        .or_else(|| base.primary_saturation.get(&s))
        .copied()
        .unwrap_or(0.0)
}

/// Predicts the k-instance operating point from a k = 1 simulator run.
pub fn predict(base: &SimReport, k: usize) -> MultiPrimaryPrediction {
    let k = k.max(1);
    let binding = base
        .primary_saturation
        .values()
        .cloned()
        .fold(0.0_f64, f64::max);
    let mut per_stage = BTreeMap::new();
    for (&s, &sp) in &base.primary_saturation {
        let sb = backup_rate(base, s);
        per_stage.insert(s, (sp + (k as f64 - 1.0) * sb) / k as f64);
    }
    let bottleneck = per_stage
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(&s, &v)| (s, v))
        .unwrap_or((SimStage::Worker, 0.0));
    let speedup = if bottleneck.1 > 0.0 {
        binding / bottleneck.1
    } else {
        1.0
    };
    MultiPrimaryPrediction {
        k,
        base_tps: base.throughput_tps,
        predicted_tps: base.throughput_tps * speedup,
        speedup,
        per_stage,
        bottleneck,
    }
}

/// Runs the k = 1 base simulation once and predicts every requested k.
pub fn sweep(cfg: &SimConfig, ks: &[usize]) -> (SimReport, Vec<MultiPrimaryPrediction>) {
    let base = cfg.run();
    let rows = ks.iter().map(|&k| predict(&base, k)).collect();
    (base, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::SystemConfig;

    fn base_run() -> SimReport {
        let system = SystemConfig::new(4).unwrap();
        let mut cfg = SimConfig::new(system);
        cfg.warmup_ms = 200;
        cfg.measure_ms = 400;
        cfg.run()
    }

    #[test]
    fn k1_is_identity() {
        let base = base_run();
        let p = predict(&base, 1);
        assert!((p.speedup - 1.0).abs() < 1e-9, "k=1 speedup {}", p.speedup);
        assert!((p.predicted_tps - base.throughput_tps).abs() < 1e-6);
    }

    #[test]
    fn k2_clears_the_issue_bar() {
        let base = base_run();
        let p = predict(&base, 2);
        assert!(
            p.speedup >= 1.5,
            "k=2 must predict >= 1.5x on the calibrated model, got {:.3} \
             (bottleneck {:?})",
            p.speedup,
            p.bottleneck
        );
    }

    #[test]
    fn speedup_is_monotone_and_capped_by_execution() {
        let base = base_run();
        let binding = base
            .primary_saturation
            .values()
            .cloned()
            .fold(0.0_f64, f64::max);
        let exec = base.backup_saturation[&SimStage::Execute];
        let ceiling = binding / exec;
        let mut last = 0.0;
        for k in [1usize, 2, 4, 8, 16, 64] {
            let p = predict(&base, k);
            assert!(p.speedup >= last, "speedup must not regress with k");
            assert!(
                p.speedup <= ceiling + 1e-9,
                "k={k} speedup {:.2} exceeds execution ceiling {:.2}",
                p.speedup,
                ceiling
            );
            last = p.speedup;
        }
        // Large k runs into the non-shardable execute stage.
        let huge = predict(&base, 1_000);
        assert!((huge.speedup - ceiling).abs() / ceiling < 0.15);
    }

    #[test]
    fn json_row_shape() {
        let base = base_run();
        let row = predict(&base, 2).to_json();
        for needle in ["\"k\": 2", "predicted_tps", "bottleneck", "stage_load"] {
            assert!(row.contains(needle), "missing {needle} in {row}");
        }
    }
}
