//! Service-time model: how long each pipeline stage works on each job.
//!
//! Costs combine the crypto [`CostModel`] with fixed per-message overheads
//! (syscall-ish receive/dispatch costs) and storage access costs. Message
//! sizes come from the analytic `wire_size` formulas in `rdb-common`, so
//! the network model prices transmission without serializing anything.

use rdb_common::{CryptoScheme, ProtocolKind, StorageMode, SystemConfig};
use rdb_crypto::CostModel;

/// Fixed overheads, all in nanoseconds (tunable; defaults represent a
/// 3.8 GHz core running an optimized build).
#[derive(Debug, Clone)]
pub struct Overheads {
    /// Receiving + dispatching one client request at an input thread.
    pub input_request_ns: f64,
    /// Receiving + dispatching one replica message at an input thread.
    pub input_message_ns: f64,
    /// One consensus state-machine step at the worker.
    pub process_message_ns: f64,
    /// Sequence assignment + bookkeeping when proposing.
    pub propose_ns: f64,
    /// Copying/allocating one transaction into a batch.
    pub batch_per_txn_ns: f64,
    /// Per-payload-byte copy cost while batching.
    pub batch_per_byte_ns: f64,
    /// Building one reply message.
    pub reply_create_ns: f64,
    /// One in-memory store operation (hash-map access + digest fold).
    pub mem_op_ns: f64,
    /// One paged-store operation (the SQLite stand-in: API call, page
    /// fetch, journaled write).
    pub paged_op_ns: f64,
}

impl Default for Overheads {
    fn default() -> Self {
        // Per-message fixed costs reflect what a real TCP-based replica
        // pays per message: socket receive, framing, deserialization,
        // buffer-pool bookkeeping and queue hand-offs (several µs each in
        // the systems the paper benchmarks — this is exactly why batching
        // pays off so dramatically in Figure 10).
        Overheads {
            input_request_ns: 1_500.0,
            input_message_ns: 3_000.0,
            process_message_ns: 5_000.0,
            propose_ns: 2_000.0,
            batch_per_txn_ns: 300.0,
            batch_per_byte_ns: 0.15,
            reply_create_ns: 400.0,
            mem_op_ns: 600.0,
            paged_op_ns: 400_000.0,
        }
    }
}

/// Computed per-job service times and message sizes for one configuration.
#[derive(Debug, Clone)]
pub struct ServiceModel {
    cost: CostModel,
    over: Overheads,
    scheme: CryptoScheme,
    storage: StorageMode,
    protocol: ProtocolKind,
    /// Transactions per batch.
    pub batch_size: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Serialized bytes of one transaction.
    pub txn_bytes: usize,
    /// Serialized bytes of one batch (the pre-prepare payload).
    pub batch_bytes: usize,
    /// Bytes of a prepare/commit/ack message.
    pub vote_bytes: usize,
    /// Bytes of one client reply.
    pub reply_bytes: usize,
    /// Bytes of one commit-certificate message (Zyzzyva slow path).
    pub cc_bytes: usize,
    /// The pipeline's signature-verification batching window
    /// (`ThreadConfig::verify_window`): replica traffic verified by the
    /// input threads amortizes at this window under saturation.
    pub verify_window: usize,
}

impl ServiceModel {
    /// Builds the model for `config` with the given crypto cost model.
    pub fn new(config: &SystemConfig, cost: CostModel, over: Overheads) -> Self {
        let value_size = 8;
        let op_bytes = 13 + value_size;
        let txn_bytes = 24 + config.ops_per_txn * op_bytes + 4 + config.payload_bytes;
        let batch_bytes = 16 + 8 + 8 + 32 + config.batch_size * txn_bytes;
        let sig = match config.crypto {
            CryptoScheme::NoCrypto => 0,
            CryptoScheme::CmacEd25519 => 16,
            CryptoScheme::Ed25519 => 64,
            CryptoScheme::Rsa => 128,
        };
        let vote_bytes = 16 + 8 + 8 + 32 + sig;
        let reply_bytes = 16 + 8 + 16 + 4 + 8 + sig;
        let q = rdb_common::quorum::zyzzyva_cc_quorum(config.f);
        let cc_bytes = 16 + 8 + 8 + 32 + q * (4 + sig.max(16)) + 8;
        ServiceModel {
            cost,
            over,
            scheme: config.crypto,
            storage: config.storage,
            protocol: config.protocol,
            batch_size: config.batch_size,
            ops_per_txn: config.ops_per_txn,
            txn_bytes,
            batch_bytes,
            vote_bytes,
            reply_bytes,
            cc_bytes,
            verify_window: config.threads.verify_window.max(1),
        }
    }

    /// Input thread: ingest one client request.
    pub fn input_request(&self) -> f64 {
        self.over.input_request_ns
    }

    /// Input thread: ingest one replica message.
    pub fn input_message(&self) -> f64 {
        self.over.input_message_ns
    }

    /// Batch thread: verify client signatures, assemble, digest (one batch).
    ///
    /// Client signatures are *batch-verified*: the whole window of requests
    /// feeding one consensus batch goes through a single
    /// random-linear-combination check, so the per-signature cost is the
    /// amortized batched rate, not the single-verify rate — this is the
    /// batch-verify pipeline stage's main effect on the figures.
    pub fn assemble_batch(&self) -> f64 {
        let b = self.batch_size as f64;
        let verify =
            b * self
                .cost
                .verify_batch_ns(self.scheme, false, self.txn_bytes, self.batch_size);
        let copy =
            b * (self.over.batch_per_txn_ns + self.over.batch_per_byte_ns * self.txn_bytes as f64);
        // One digest over the whole batch (Section 4.3's single-hash trick).
        let digest = self.cost.hash_ns(self.batch_bytes);
        verify + copy + digest
    }

    /// Worker: propose a batch (bookkeeping only; digest already computed).
    pub fn propose(&self) -> f64 {
        self.over.propose_ns
    }

    /// Worker at a backup: verify the pre-prepare (signature over the whole
    /// batch) and re-digest it to validate the primary's digest. Replica
    /// traffic flows through the input threads' batch-verify window, so
    /// digital-signature schemes price at the amortized batched rate
    /// (MAC'd links are unaffected — `verify_batch_ns` falls through).
    pub fn verify_pre_prepare(&self) -> f64 {
        self.cost
            .verify_batch_ns(self.scheme, true, self.batch_bytes, self.verify_window)
            + self.cost.hash_ns(self.batch_bytes)
            + self.over.process_message_ns
    }

    /// Worker: verify + process one prepare/commit vote (batch-verified on
    /// the input threads, as for pre-prepares).
    pub fn process_vote(&self) -> f64 {
        self.cost
            .verify_batch_ns(self.scheme, true, self.vote_bytes, self.verify_window)
            + self.over.process_message_ns
    }

    /// Output thread: sign one replica-bound message of `bytes`.
    pub fn sign_replica_msg(&self, bytes: usize) -> f64 {
        self.cost.sign_ns(self.scheme, true, bytes)
    }

    /// Execute stage: run one full batch against the store.
    pub fn execute_batch(&self) -> f64 {
        let per_op = match self.storage {
            StorageMode::InMemory => self.over.mem_op_ns,
            StorageMode::Paged => self.over.paged_op_ns,
        };
        (self.batch_size * self.ops_per_txn) as f64 * per_op
    }

    /// Output: create + sign the replies for one batch (one per client).
    ///
    /// Protocol fidelity point: PBFT replies are terminal (clients only
    /// match them against each other), so MACs suffice under
    /// `CmacEd25519`. Zyzzyva's speculative responses are *forwarded* by
    /// clients inside commit certificates, so they must be digital
    /// signatures — this is the hidden crypto tax of the single-phase
    /// protocol.
    pub fn reply_batch(&self) -> f64 {
        let sign = match (self.protocol, self.scheme) {
            (_, CryptoScheme::NoCrypto) => 0.0,
            (ProtocolKind::Zyzzyva, CryptoScheme::CmacEd25519) => {
                self.cost.ed25519_sign_ns + self.cost.sha256_per_byte_ns * self.reply_bytes as f64
            }
            (_, scheme) => self.cost.sign_ns(scheme, true, self.reply_bytes),
        };
        self.batch_size as f64 * (self.over.reply_create_ns + sign)
    }

    /// Worker: verify one commit certificate (Zyzzyva slow path): `q`
    /// forwarded *digital signatures* plus processing. The `q` signatures
    /// arrive together in one message, so Ed25519 checks them as a batch.
    pub fn verify_commit_cert(&self, q: usize) -> f64 {
        let per_sig = match self.scheme {
            CryptoScheme::NoCrypto => 0.0,
            CryptoScheme::Rsa => self.cost.rsa_verify_ns,
            _ => self
                .cost
                .verify_batch_ns(CryptoScheme::Ed25519, false, 0, q),
        };
        q as f64 * per_sig + self.over.process_message_ns
    }

    /// Amortized checkpoint work per batch at the worker (collecting 2f+1
    /// checkpoint votes every Δ batches).
    pub fn checkpoint_worker_amortized(&self, n: usize, interval_batches: u64) -> f64 {
        let per_ckpt = n as f64 * self.process_vote();
        per_ckpt / interval_batches.max(1) as f64
    }

    /// The crypto scheme in effect.
    pub fn scheme(&self) -> CryptoScheme {
        self.scheme
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::SystemConfig;

    fn model(mutate: impl FnOnce(&mut SystemConfig)) -> ServiceModel {
        let mut cfg = SystemConfig::new(16).unwrap();
        mutate(&mut cfg);
        ServiceModel::new(&cfg, CostModel::optimized(), Overheads::default())
    }

    #[test]
    fn batch_assembly_scales_with_batch_size() {
        let small = model(|c| c.batch_size = 10);
        let large = model(|c| c.batch_size = 1000);
        assert!(large.assemble_batch() > small.assemble_batch() * 50.0);
    }

    #[test]
    fn paged_storage_dominates_execution() {
        let mem = model(|c| c.storage = StorageMode::InMemory);
        let paged = model(|c| c.storage = StorageMode::Paged);
        assert!(paged.execute_batch() > mem.execute_batch() * 100.0);
    }

    #[test]
    fn rsa_votes_cost_more_than_cmac() {
        let mac = model(|c| c.crypto = CryptoScheme::CmacEd25519);
        let rsa = model(|c| c.crypto = CryptoScheme::Rsa);
        assert!(rsa.process_vote() > mac.process_vote() * 5.0);
        assert!(rsa.reply_batch() > mac.reply_batch() * 10.0);
    }

    #[test]
    fn no_crypto_eliminates_signature_costs() {
        let none = model(|c| c.crypto = CryptoScheme::NoCrypto);
        let mac = model(|c| c.crypto = CryptoScheme::CmacEd25519);
        assert!(none.assemble_batch() < mac.assemble_batch());
        assert_eq!(none.sign_replica_msg(100), 0.0);
    }

    #[test]
    fn payload_inflates_batch_bytes() {
        let small = model(|c| c.payload_bytes = 0);
        let large = model(|c| c.payload_bytes = 8192);
        assert!(large.batch_bytes > small.batch_bytes + 100 * 8000);
    }

    #[test]
    fn multi_op_txns_inflate_execution() {
        let one = model(|c| c.ops_per_txn = 1);
        let fifty = model(|c| c.ops_per_txn = 50);
        assert!((fifty.execute_batch() / one.execute_batch() - 50.0).abs() < 1.0);
    }
}
