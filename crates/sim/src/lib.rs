//! Deterministic discrete-event simulator for cluster-scale experiments.
//!
//! The paper's testbed is a Google Cloud cluster (8-core c2 replicas, up
//! to 32 replicas, 80K clients). This crate substitutes that hardware with
//! a calibrated discrete-event model (the substitution is documented in
//! `DESIGN.md`): per-replica multi-server pipeline stages with a bounded
//! core pool, a serialized NIC with configurable bandwidth and latency,
//! closed-loop clients, and crypto/storage costs priced by
//! [`rdb_crypto::CostModel`] and [`service::Overheads`].
//!
//! The same protocol flows implemented by the sans-io state machines in
//! `rdb-consensus` are modeled here at batch granularity (quorum bundles
//! instead of individual votes), which keeps runs fast while preserving
//! quorum timing, per-stage utilization and network load — the quantities
//! every figure in the paper's evaluation is built from.
//!
//! # Example
//!
//! ```
//! use rdb_sim::SimConfig;
//! use rdb_common::SystemConfig;
//!
//! let mut system = SystemConfig::new(4).unwrap();
//! system.num_clients = 1_000;
//! let mut cfg = SimConfig::new(system);
//! cfg.warmup_ms = 100;
//! cfg.measure_ms = 200;
//! let report = cfg.run();
//! assert!(report.throughput_tps > 0.0);
//! ```

pub mod des;
pub mod multi;
pub mod report;
pub mod service;

pub use des::{SimConfig, SimMode};
pub use multi::MultiPrimaryPrediction;
pub use report::{SimReport, SimStage};
pub use service::{Overheads, ServiceModel};
