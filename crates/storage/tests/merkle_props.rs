//! Property tests pinning the incremental Merkle accumulator to its
//! from-scratch definition.
//!
//! The store never rebuilds the tree — every `put`/`remove`/`apply`
//! nudges the cached node hashes along one path (or one batched dirty
//! set). These properties assert that after an arbitrary interleaving of
//! such nudges the root is bit-identical to hashing the surviving record
//! set from scratch ([`commitment_of`], the same function snapshot
//! verification uses), that batching is order-insensitive within a batch
//! (last write per key wins), and that every surviving key still proves
//! membership against the final root.

use proptest::prelude::*;
use rdb_storage::merkle::{commitment_of, verify_proof, MerkleAccumulator};
use rdb_storage::record_hash;
use std::collections::BTreeMap;

/// Decode one raw u64 into an op: a small key space (64 keys across a
/// 2^16-bucket tree forces same-bucket collisions) and a ~25% remove mix.
fn op_of(raw: u64) -> (u64, Option<Vec<u8>>) {
    let key = raw % 64;
    if raw % 4 == 3 {
        (key, None)
    } else {
        (key, Some(raw.to_le_bytes().to_vec()))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental updates/removes ≡ from-scratch rebuild of the final
    /// record set, for any op sequence.
    #[test]
    fn incremental_root_equals_from_scratch_rebuild(
        raw_ops in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut acc = MerkleAccumulator::new();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for raw in raw_ops {
            let (key, value) = op_of(raw);
            match value {
                Some(v) => {
                    acc.update(key, record_hash(key, &v));
                    model.insert(key, v);
                }
                None => {
                    acc.remove(key);
                    model.remove(&key);
                }
            }
        }
        let rebuilt = commitment_of(model.iter().map(|(k, v)| (*k, v.as_slice())));
        prop_assert_eq!(acc.root(), rebuilt);
    }

    /// Batched `apply` ≡ one-at-a-time application of the same writes, for
    /// any chunking of the op stream.
    #[test]
    fn batched_apply_equals_singleton_application(
        raw_ops in proptest::collection::vec(any::<u64>(), 1..200),
        chunk in 1usize..17,
    ) {
        let mut batched = MerkleAccumulator::new();
        let mut singly = MerkleAccumulator::new();
        for window in raw_ops.chunks(chunk) {
            batched.apply(window.iter().map(|&raw| {
                let (key, value) = op_of(raw);
                (key, value.map(|v| record_hash(key, &v)))
            }));
            for &raw in window {
                let (key, value) = op_of(raw);
                match value {
                    Some(v) => singly.update(key, record_hash(key, &v)),
                    None => singly.remove(key),
                }
            }
            prop_assert_eq!(batched.root(), singly.root());
        }
    }

    /// After any op sequence, every surviving key proves membership
    /// against the final root, and a tampered record hash is rejected.
    #[test]
    fn surviving_keys_prove_membership(
        raw_ops in proptest::collection::vec(any::<u64>(), 1..120),
    ) {
        let mut acc = MerkleAccumulator::new();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for raw in raw_ops {
            let (key, value) = op_of(raw);
            match value {
                Some(v) => {
                    acc.update(key, record_hash(key, &v));
                    model.insert(key, v);
                }
                None => {
                    acc.remove(key);
                    model.remove(&key);
                }
            }
        }
        let root = acc.root();
        for (key, value) in &model {
            let proof = acc.prove(*key).expect("present key must prove");
            let hash = record_hash(*key, value);
            prop_assert!(verify_proof(root, *key, hash, &proof));
            let mut tampered = hash;
            tampered[0] ^= 1;
            prop_assert!(!verify_proof(root, *key, tampered, &proof));
        }
        // Absent keys yield no proof at all.
        prop_assert!(acc.prove(u64::MAX).is_none());
    }
}
