//! Key-value state stores.
//!
//! The execute-thread applies transaction operations against a
//! [`StateStore`]. The digest of the state (needed by checkpoints) is
//! maintained *incrementally* as an XOR-fold of per-record hashes, so
//! taking a checkpoint never requires scanning the store.

use parking_lot::{Mutex, RwLock};
use rdb_common::Digest;
use rdb_crypto::digest;
use std::collections::HashMap;

/// Number of lock shards in [`MemStore`]. A power of two so the shard of a
/// key is a mask away.
const SHARDS: usize = 16;

/// Abstract key-value state accessed during execution.
///
/// Implementations must be thread-safe: the execute-thread writes while
/// checkpoint threads read digests.
pub trait StateStore: Send + Sync {
    /// Reads the value stored under `key`.
    fn get(&self, key: u64) -> Option<Vec<u8>>;

    /// Stores `value` under `key`.
    fn put(&self, key: u64, value: &[u8]);

    /// Number of records present.
    fn len(&self) -> usize;

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Incrementally-maintained digest over all records.
    fn state_digest(&self) -> Digest;
}

/// Hash of one `(key, value)` record, folded into the state digest.
fn record_hash(key: u64, value: &[u8]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(8 + value.len());
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(value);
    *digest(&buf).as_bytes()
}

fn xor_into(acc: &mut [u8; 32], h: &[u8; 32]) {
    for i in 0..32 {
        acc[i] ^= h[i];
    }
}

/// Sharded in-memory key-value store — ResilientDB's default state backend.
#[derive(Debug)]
pub struct MemStore {
    shards: Vec<RwLock<HashMap<u64, Vec<u8>>>>,
    digest_acc: Mutex<[u8; 32]>,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            digest_acc: Mutex::new([0u8; 32]),
        }
    }

    /// Creates a store pre-loaded with `n` records of `value_size` zero
    /// bytes, mirroring the paper's 600K-record YCSB table initialization.
    pub fn with_table(n: u64, value_size: usize) -> Self {
        let store = Self::new();
        let value = vec![0u8; value_size];
        for key in 0..n {
            store.put(key, &value);
        }
        store
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, Vec<u8>>> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }
}

impl StateStore for MemStore {
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        self.shard(key).read().get(&key).cloned()
    }

    fn put(&self, key: u64, value: &[u8]) {
        let mut shard = self.shard(key).write();
        let old = shard.insert(key, value.to_vec());
        let mut acc = self.digest_acc.lock();
        if let Some(old) = old {
            xor_into(&mut acc, &record_hash(key, &old));
        }
        xor_into(&mut acc, &record_hash(key, value));
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn state_digest(&self) -> Digest {
        Digest(*self.digest_acc.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_round_trip() {
        let s = MemStore::new();
        assert!(s.get(1).is_none());
        s.put(1, b"alpha");
        assert_eq!(s.get(1).as_deref(), Some(&b"alpha"[..]));
        s.put(1, b"beta");
        assert_eq!(s.get(1).as_deref(), Some(&b"beta"[..]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn table_preload() {
        let s = MemStore::with_table(100, 8);
        assert_eq!(s.len(), 100);
        assert_eq!(s.get(99).unwrap().len(), 8);
        assert!(s.get(100).is_none());
    }

    #[test]
    fn digest_tracks_content_not_history() {
        let a = MemStore::new();
        a.put(1, b"x");
        a.put(2, b"y");
        let b = MemStore::new();
        b.put(2, b"y");
        b.put(1, b"x");
        // Same content via different orders → same digest.
        assert_eq!(a.state_digest(), b.state_digest());

        // Overwrite then restore → digest returns to the original value.
        let before = a.state_digest();
        a.put(1, b"z");
        assert_ne!(a.state_digest(), before);
        a.put(1, b"x");
        assert_eq!(a.state_digest(), before);
    }

    #[test]
    fn empty_store_zero_digest() {
        let s = MemStore::new();
        assert_eq!(s.state_digest(), Digest::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn digests_differ_across_contents() {
        let a = MemStore::new();
        a.put(1, b"x");
        let b = MemStore::new();
        b.put(1, b"y");
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn concurrent_writers() {
        use std::sync::Arc;
        let s = Arc::new(MemStore::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        s.put(t * 1000 + i, &i.to_le_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 8000);
        assert_eq!(s.get(7999).as_deref(), Some(&999u64.to_le_bytes()[..]));
    }
}
