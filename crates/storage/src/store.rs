//! Key-value state stores.
//!
//! The execute stage applies transaction operations against a
//! [`StateStore`]. The digest of the state (needed by checkpoints and
//! snapshot vouching) is maintained *incrementally* as a sparse Merkle
//! commitment over per-record hashes ([`crate::merkle`]), so taking a
//! checkpoint never requires scanning the store, a Byzantine snapshot
//! cannot exploit XOR cancellation, and membership can be proven against
//! the 32-byte root ([`MemStore::prove`]).
//!
//! Execution never mutates the store directly: it buffers writes as
//! [`WriteRecord`]s (hashing each record where it is produced — under
//! parallel execution that is an execute-worker, off the commit path) and
//! commits them in canonical order through [`StateStore::apply`]. Because
//! the state digest is content-based (a pure function of the final
//! records), any apply schedule that produces the same final contents
//! produces the same digest.

use crate::merkle::{MerkleAccumulator, MerkleProof};
use parking_lot::{Mutex, RwLock};
use rdb_common::Digest;
use rdb_crypto::digest;
use std::collections::HashMap;

/// Number of lock shards in [`MemStore`]. A power of two so the shard of a
/// key is a mask away.
const SHARDS: usize = 16;

/// Hash of one `(key, value)` record, folded into the state digest.
pub fn record_hash(key: u64, value: &[u8]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(8 + value.len());
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(value);
    *digest(&buf).as_bytes()
}

/// A buffered write: the unit of the deferred-commit execution path.
///
/// The record hash is computed when the write is produced, so the serial
/// `apply` step only folds precomputed hashes instead of re-hashing every
/// value on the commit path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRecord {
    /// Record key in the table.
    pub key: u64,
    /// Final value for the key.
    pub value: Vec<u8>,
    /// Precomputed `record_hash(key, value)`.
    pub hash: [u8; 32],
}

impl WriteRecord {
    /// Creates a record, hashing it immediately (caller's thread).
    pub fn new(key: u64, value: Vec<u8>) -> Self {
        let hash = record_hash(key, &value);
        WriteRecord { key, value, hash }
    }
}

/// Abstract key-value state accessed during execution.
///
/// Implementations must be thread-safe: execute workers read while the
/// commit step writes and checkpoint threads read digests.
pub trait StateStore: Send + Sync {
    /// Reads the value stored under `key`.
    fn get(&self, key: u64) -> Option<Vec<u8>>;

    /// Stores `value` under `key`.
    fn put(&self, key: u64, value: &[u8]);

    /// Commits buffered writes in order (the in-order commit step of
    /// deferred execution). The default delegates to [`StateStore::put`];
    /// backends that track per-record hashes override this to reuse the
    /// precomputed hashes.
    fn apply(&self, writes: &[WriteRecord]) {
        for w in writes {
            self.put(w.key, &w.value);
        }
    }

    /// Number of records present.
    fn len(&self) -> usize;

    /// Whether the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Incrementally-maintained digest over all records.
    fn state_digest(&self) -> Digest;

    /// Removes `key`, returning whether it was present. Backends that
    /// maintain an incremental digest fold the removed record's hash out,
    /// so remove-after-put restores the exact pre-put digest — the
    /// property speculative rollback relies on to undo writes to
    /// previously-absent keys.
    ///
    /// The default panics: only recovery-capable backends opt in.
    fn remove(&self, _key: u64) -> bool {
        unimplemented!("this StateStore backend does not support removal")
    }

    /// Every `(key, value)` record, sorted by key — the deterministic
    /// payload of a checkpoint snapshot.
    ///
    /// The default panics: only recovery-capable backends opt in.
    fn export_records(&self) -> Vec<(u64, Vec<u8>)> {
        unimplemented!("this StateStore backend does not support snapshot export")
    }

    /// Replaces the entire contents with `records` (snapshot install).
    /// Afterwards `state_digest()` reflects exactly the installed records.
    ///
    /// The default panics: only recovery-capable backends opt in.
    fn install_records(&self, _records: &[(u64, Vec<u8>)]) {
        unimplemented!("this StateStore backend does not support snapshot install")
    }
}

/// Sharded in-memory key-value store — ResilientDB's default state backend.
///
/// Values live in lock-sharded hash maps; the state commitment lives in a
/// single [`MerkleAccumulator`] updated under its own lock, exactly where
/// the XOR accumulator used to sit.
#[derive(Debug)]
pub struct MemStore {
    shards: Vec<RwLock<HashMap<u64, Vec<u8>>>>,
    merkle: Mutex<MerkleAccumulator>,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        MemStore {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            merkle: Mutex::new(MerkleAccumulator::new()),
        }
    }

    /// Creates a store pre-loaded with `n` records of `value_size` zero
    /// bytes, mirroring the paper's 600K-record YCSB table initialization.
    /// Bulk-builds the commitment (one batched tree rebuild, not `n`
    /// root-path walks).
    pub fn with_table(n: u64, value_size: usize) -> Self {
        let store = Self::new();
        let value = vec![0u8; value_size];
        {
            let mut merkle = store.merkle.lock();
            merkle.apply((0..n).map(|key| {
                store.shard(key).write().insert(key, value.clone());
                (key, Some(record_hash(key, &value)))
            }));
        }
        store
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, Vec<u8>>> {
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    fn insert_hashed(&self, key: u64, value: Vec<u8>, hash: [u8; 32]) {
        self.shard(key).write().insert(key, value);
        self.merkle.lock().update(key, hash);
    }

    /// Membership proof for `key` against the current [`state_digest`]:
    /// the record's leaf bucket plus its sibling path. Verified with
    /// [`crate::merkle::verify_proof`].
    ///
    /// [`state_digest`]: StateStore::state_digest
    pub fn prove(&self, key: u64) -> Option<MerkleProof> {
        self.merkle.lock().prove(key)
    }
}

impl StateStore for MemStore {
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        self.shard(key).read().get(&key).cloned()
    }

    fn put(&self, key: u64, value: &[u8]) {
        self.insert_hashed(key, value.to_vec(), record_hash(key, value));
    }

    fn apply(&self, writes: &[WriteRecord]) {
        // Batched commitment update: every dirty leaf hashes once and the
        // upper tree is shared across the whole batch.
        let mut merkle = self.merkle.lock();
        merkle.apply(writes.iter().map(|w| {
            self.shard(w.key).write().insert(w.key, w.value.clone());
            (w.key, Some(w.hash))
        }));
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    fn state_digest(&self) -> Digest {
        self.merkle.lock().root()
    }

    fn remove(&self, key: u64) -> bool {
        let removed = self.shard(key).write().remove(&key).is_some();
        if removed {
            self.merkle.lock().remove(key);
        }
        removed
    }

    fn export_records(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    fn install_records(&self, records: &[(u64, Vec<u8>)]) {
        for shard in &self.shards {
            shard.write().clear();
        }
        let mut merkle = self.merkle.lock();
        merkle.clear();
        merkle.apply(records.iter().map(|(key, value)| {
            self.shard(*key).write().insert(*key, value.clone());
            (*key, Some(record_hash(*key, value)))
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_round_trip() {
        let s = MemStore::new();
        assert!(s.get(1).is_none());
        s.put(1, b"alpha");
        assert_eq!(s.get(1).as_deref(), Some(&b"alpha"[..]));
        s.put(1, b"beta");
        assert_eq!(s.get(1).as_deref(), Some(&b"beta"[..]));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn table_preload() {
        let s = MemStore::with_table(100, 8);
        assert_eq!(s.len(), 100);
        assert_eq!(s.get(99).unwrap().len(), 8);
        assert!(s.get(100).is_none());
    }

    #[test]
    fn digest_tracks_content_not_history() {
        let a = MemStore::new();
        a.put(1, b"x");
        a.put(2, b"y");
        let b = MemStore::new();
        b.put(2, b"y");
        b.put(1, b"x");
        // Same content via different orders → same digest.
        assert_eq!(a.state_digest(), b.state_digest());

        // Overwrite then restore → digest returns to the original value.
        let before = a.state_digest();
        a.put(1, b"z");
        assert_ne!(a.state_digest(), before);
        a.put(1, b"x");
        assert_eq!(a.state_digest(), before);
    }

    #[test]
    fn empty_store_zero_digest() {
        let s = MemStore::new();
        assert_eq!(s.state_digest(), Digest::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn digests_differ_across_contents() {
        let a = MemStore::new();
        a.put(1, b"x");
        let b = MemStore::new();
        b.put(1, b"y");
        assert_ne!(a.state_digest(), b.state_digest());
    }

    #[test]
    fn apply_equals_direct_puts() {
        let direct = MemStore::new();
        direct.put(1, b"one");
        direct.put(2, b"two");
        direct.put(1, b"uno");

        let applied = MemStore::new();
        applied.apply(&[
            WriteRecord::new(1, b"one".to_vec()),
            WriteRecord::new(2, b"two".to_vec()),
            WriteRecord::new(1, b"uno".to_vec()),
        ]);

        assert_eq!(direct.state_digest(), applied.state_digest());
        assert_eq!(applied.get(1).as_deref(), Some(&b"uno"[..]));
        assert_eq!(applied.get(2).as_deref(), Some(&b"two"[..]));
        assert_eq!(applied.len(), 2);
    }

    #[test]
    fn apply_uses_precomputed_hashes() {
        // A WriteRecord constructed off-thread carries its hash; apply must
        // fold exactly that hash, so the digest matches a plain put.
        let w = WriteRecord::new(7, b"payload".to_vec());
        assert_eq!(w.hash, record_hash(7, b"payload"));
        let s = MemStore::new();
        s.apply(std::slice::from_ref(&w));
        let p = MemStore::new();
        p.put(7, b"payload");
        assert_eq!(s.state_digest(), p.state_digest());
    }

    #[test]
    fn remove_restores_pre_put_digest() {
        let s = MemStore::new();
        s.put(1, b"x");
        let before = s.state_digest();
        s.put(2, b"new");
        assert!(s.remove(2), "present key removes");
        assert_eq!(s.state_digest(), before, "digest folds the record back out");
        assert_eq!(s.len(), 1);
        assert!(!s.remove(2), "absent key is a no-op");
        assert_eq!(s.state_digest(), before);
    }

    #[test]
    fn export_install_round_trips_content_and_digest() {
        let a = MemStore::new();
        a.put(5, b"five");
        a.put(1, b"one");
        a.put(99, b"ninety-nine");
        let records = a.export_records();
        assert_eq!(records.len(), 3);
        assert!(records.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");

        let b = MemStore::new();
        b.put(42, b"stale state that install must wipe");
        b.install_records(&records);
        assert_eq!(b.state_digest(), a.state_digest());
        assert_eq!(b.len(), 3);
        assert!(b.get(42).is_none());
        assert_eq!(b.get(5).as_deref(), Some(&b"five"[..]));
    }

    #[test]
    fn proofs_check_out_against_the_state_digest() {
        let s = MemStore::with_table(64, 8);
        s.put(7, b"proven");
        let proof = s.prove(7).expect("present key");
        assert!(crate::merkle::verify_proof(
            s.state_digest(),
            7,
            record_hash(7, b"proven"),
            &proof
        ));
        // The proof pins the value: a different value hash fails.
        assert!(!crate::merkle::verify_proof(
            s.state_digest(),
            7,
            record_hash(7, b"forged"),
            &proof
        ));
        // And the proof is against *this* state: a later write invalidates it.
        s.put(7, b"moved on");
        assert!(!crate::merkle::verify_proof(
            s.state_digest(),
            7,
            record_hash(7, b"proven"),
            &proof
        ));
        assert!(s.prove(1 << 40).is_none(), "absent key has no proof");
    }

    #[test]
    fn concurrent_writers() {
        use std::sync::Arc;
        let s = Arc::new(MemStore::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        s.put(t * 1000 + i, &i.to_le_bytes());
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 8000);
        assert_eq!(s.get(7999).as_deref(), Some(&999u64.to_le_bytes()[..]));
    }
}
