//! Object pools (Section 4.8, "Buffer Pool Management").
//!
//! ResilientDB pre-allocates message and transaction objects at startup and
//! recycles them instead of calling the allocator per message. The generic
//! [`BufferPool`] here hands out [`Pooled`] guards that return the object
//! (after a user-supplied reset) when dropped.

use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

struct PoolInner<T> {
    free: Mutex<Vec<T>>,
    factory: Box<dyn Fn() -> T + Send + Sync>,
    reset: Box<dyn Fn(&mut T) + Send + Sync>,
    hits: AtomicU64,
    misses: AtomicU64,
    max_retained: usize,
}

/// A pool of reusable objects.
pub struct BufferPool<T> {
    inner: Arc<PoolInner<T>>,
}

impl<T> Clone for BufferPool<T> {
    fn clone(&self) -> Self {
        BufferPool {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for BufferPool<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BufferPool")
            .field("free", &self.inner.free.lock().len())
            .field("hits", &self.inner.hits.load(Ordering::Relaxed))
            .field("misses", &self.inner.misses.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T> BufferPool<T> {
    /// Creates a pool that pre-allocates `prealloc` objects via `factory`
    /// and calls `reset` on objects as they return. At most `max_retained`
    /// idle objects are kept; surplus returns are dropped.
    pub fn new(
        prealloc: usize,
        max_retained: usize,
        factory: impl Fn() -> T + Send + Sync + 'static,
        reset: impl Fn(&mut T) + Send + Sync + 'static,
    ) -> Self {
        let free: Vec<T> = (0..prealloc).map(|_| factory()).collect();
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(free),
                factory: Box::new(factory),
                reset: Box::new(reset),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                max_retained,
            }),
        }
    }

    /// Takes an object from the pool (allocating if the pool is empty).
    pub fn take(&self) -> Pooled<T> {
        let obj = self.inner.free.lock().pop();
        let obj = match obj {
            Some(o) => {
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                o
            }
            None => {
                self.inner.misses.fetch_add(1, Ordering::Relaxed);
                (self.inner.factory)()
            }
        };
        Pooled {
            obj: Some(obj),
            pool: Arc::clone(&self.inner),
        }
    }

    /// `(hits, misses)`: takes served from the pool vs fresh allocations.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.inner.hits.load(Ordering::Relaxed),
            self.inner.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of idle objects currently pooled.
    pub fn idle(&self) -> usize {
        self.inner.free.lock().len()
    }
}

/// Guard over a pooled object; returns it to the pool on drop.
pub struct Pooled<T> {
    obj: Option<T>,
    pool: Arc<PoolInner<T>>,
}

impl<T> Pooled<T> {
    /// Detaches the object from the pool (it will not be returned).
    pub fn into_inner(mut self) -> T {
        self.obj.take().expect("object present until drop")
    }
}

impl<T> std::ops::Deref for Pooled<T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.obj.as_ref().expect("object present until drop")
    }
}

impl<T> std::ops::DerefMut for Pooled<T> {
    fn deref_mut(&mut self) -> &mut T {
        self.obj.as_mut().expect("object present until drop")
    }
}

impl<T: fmt::Debug> fmt::Debug for Pooled<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Pooled").field(&self.obj).finish()
    }
}

impl<T> Drop for Pooled<T> {
    fn drop(&mut self) {
        if let Some(mut obj) = self.obj.take() {
            (self.pool.reset)(&mut obj);
            let mut free = self.pool.free.lock();
            if free.len() < self.pool.max_retained {
                free.push(obj);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn byte_pool(prealloc: usize) -> BufferPool<Vec<u8>> {
        BufferPool::new(prealloc, 64, || Vec::with_capacity(1024), |v| v.clear())
    }

    #[test]
    fn take_reuses_objects() {
        let pool = byte_pool(2);
        assert_eq!(pool.idle(), 2);
        {
            let mut a = pool.take();
            a.extend_from_slice(b"data");
            assert_eq!(pool.idle(), 1);
        }
        // Returned and reset.
        assert_eq!(pool.idle(), 2);
        let b = pool.take();
        assert!(b.is_empty(), "reset must clear contents");
        assert!(b.capacity() >= 1024, "capacity survives reset");
        let (hits, misses) = pool.stats();
        assert_eq!(hits, 2);
        assert_eq!(misses, 0);
    }

    #[test]
    fn exhausted_pool_allocates() {
        let pool = byte_pool(1);
        let _a = pool.take();
        let _b = pool.take(); // must allocate
        let (hits, misses) = pool.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
    }

    #[test]
    fn into_inner_detaches() {
        let pool = byte_pool(1);
        let v = pool.take().into_inner();
        drop(v);
        assert_eq!(pool.idle(), 0, "detached object must not return");
    }

    #[test]
    fn retention_cap_drops_surplus() {
        let pool = BufferPool::new(0, 2, Vec::<u8>::new, |v| v.clear());
        let items: Vec<_> = (0..5).map(|_| pool.take()).collect();
        drop(items);
        assert_eq!(pool.idle(), 2, "at most max_retained kept");
    }

    #[test]
    fn concurrent_take_return() {
        let pool = byte_pool(8);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let p = pool.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let mut v = p.take();
                        v.push(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // All objects returned.
        assert!(pool.idle() >= 8);
    }
}
