//! A from-scratch file-backed paged store — the SQLite stand-in.
//!
//! Figure 14 of the paper compares in-memory state against SQLite and finds
//! a 94% throughput loss: the execute-thread blocks on per-record file I/O.
//! This module reproduces that storage class honestly: a slotted file of
//! fixed-size records behind a small LRU page cache, with synchronous
//! write-through (like SQLite's journaled writes). Every cache miss pays a
//! real `read`/`write` syscall; every put pays a write (plus an optional
//! `fsync`).

use crate::merkle::MerkleAccumulator;
use crate::store::{record_hash, StateStore, WriteRecord};
use parking_lot::Mutex;
use rdb_common::Digest;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Bytes per page.
pub const PAGE_SIZE: usize = 4096;

/// Configuration for a [`PagedStore`].
#[derive(Debug, Clone)]
pub struct PagedStoreConfig {
    /// Maximum record payload size; slots are sized for this.
    pub record_size: usize,
    /// Number of key slots (keys must be `< capacity`).
    pub capacity: u64,
    /// Pages held in the cache before eviction.
    pub cache_pages: usize,
    /// Whether each put issues an `fsync` (SQLite-like durability).
    pub fsync_on_write: bool,
}

impl Default for PagedStoreConfig {
    fn default() -> Self {
        PagedStoreConfig {
            record_size: 64,
            capacity: 600_000,
            cache_pages: 64,
            fsync_on_write: false,
        }
    }
}

/// Slot header: 2-byte length (0xFFFF = empty) stored before the payload.
const SLOT_HDR: usize = 2;
const EMPTY_LEN: u16 = u16::MAX;

struct Page {
    data: Vec<u8>,
    dirty: bool,
    /// LRU tick of the last access.
    last_used: u64,
}

struct PagerState {
    file: File,
    cache: HashMap<u64, Page>,
    tick: u64,
    /// Incremental state commitment — the same Merkle accumulator the
    /// in-memory backend maintains, so both backends agree digest-for-digest.
    merkle: MerkleAccumulator,
    record_count: usize,
    /// Cache statistics: (hits, misses).
    hits: u64,
    misses: u64,
}

/// File-backed slotted record store with an LRU page cache.
pub struct PagedStore {
    config: PagedStoreConfig,
    state: Mutex<PagerState>,
}

impl std::fmt::Debug for PagedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PagedStore")
            .field("record_size", &self.config.record_size)
            .field("capacity", &self.config.capacity)
            .field("cache_pages", &self.config.cache_pages)
            .finish()
    }
}

impl PagedStore {
    /// Creates (or truncates) the store file at `path`.
    ///
    /// # Errors
    /// Returns any I/O error from creating or sizing the file.
    pub fn create(path: &Path, config: PagedStoreConfig) -> std::io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let slot = config.record_size + SLOT_HDR;
        let total_bytes = (config.capacity as usize * slot).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        file.set_len(total_bytes as u64)?;
        let store = PagedStore {
            config,
            state: Mutex::new(PagerState {
                file,
                cache: HashMap::new(),
                tick: 0,
                merkle: MerkleAccumulator::new(),
                record_count: 0,
                hits: 0,
                misses: 0,
            }),
        };
        store.initialize_empty()?;
        Ok(store)
    }

    /// Marks every slot empty (writes the full file once, sequentially, so
    /// slots that straddle page boundaries are laid out correctly).
    fn initialize_empty(&self) -> std::io::Result<()> {
        let slot = self.config.record_size + SLOT_HDR;
        let mut st = self.state.lock();
        st.file.seek(SeekFrom::Start(0))?;
        let mut slot_buf = vec![0u8; slot];
        slot_buf[..2].copy_from_slice(&EMPTY_LEN.to_le_bytes());
        let mut writer = std::io::BufWriter::new(&mut st.file);
        for _ in 0..self.config.capacity {
            writer.write_all(&slot_buf)?;
        }
        writer.flush()?;
        drop(writer);
        st.file.sync_all()?;
        Ok(())
    }

    fn slot_bytes(&self) -> usize {
        self.config.record_size + SLOT_HDR
    }

    fn slot_offset(&self, key: u64) -> u64 {
        key * self.slot_bytes() as u64
    }

    /// Loads the page containing `byte_off` into cache, evicting LRU pages.
    fn page_for(&self, st: &mut PagerState, byte_off: u64) -> std::io::Result<u64> {
        let page_id = byte_off / PAGE_SIZE as u64;
        st.tick += 1;
        let tick = st.tick;
        if let Some(p) = st.cache.get_mut(&page_id) {
            p.last_used = tick;
            st.hits += 1;
            return Ok(page_id);
        }
        st.misses += 1;
        // Evict if full.
        if st.cache.len() >= self.config.cache_pages {
            let victim = st
                .cache
                .iter()
                .min_by_key(|(_, p)| p.last_used)
                .map(|(id, _)| *id)
                .expect("cache non-empty");
            let page = st.cache.remove(&victim).expect("victim exists");
            if page.dirty {
                st.file.seek(SeekFrom::Start(victim * PAGE_SIZE as u64))?;
                st.file.write_all(&page.data)?;
            }
        }
        let mut data = vec![0u8; PAGE_SIZE];
        st.file.seek(SeekFrom::Start(page_id * PAGE_SIZE as u64))?;
        st.file.read_exact(&mut data)?;
        st.cache.insert(
            page_id,
            Page {
                data,
                dirty: false,
                last_used: tick,
            },
        );
        Ok(page_id)
    }

    /// Reads `len` bytes at `byte_off`, possibly spanning pages.
    fn read_at(&self, st: &mut PagerState, byte_off: u64, len: usize) -> std::io::Result<Vec<u8>> {
        let mut out = Vec::with_capacity(len);
        let mut off = byte_off;
        let mut remaining = len;
        while remaining > 0 {
            let page_id = self.page_for(st, off)?;
            let in_page = (off % PAGE_SIZE as u64) as usize;
            let take = remaining.min(PAGE_SIZE - in_page);
            let page = st.cache.get(&page_id).expect("just loaded");
            out.extend_from_slice(&page.data[in_page..in_page + take]);
            off += take as u64;
            remaining -= take;
        }
        Ok(out)
    }

    /// Writes `data` at `byte_off` through the cache, write-through to disk.
    fn write_at(&self, st: &mut PagerState, byte_off: u64, data: &[u8]) -> std::io::Result<()> {
        let mut off = byte_off;
        let mut written = 0;
        while written < data.len() {
            let page_id = self.page_for(st, off)?;
            let in_page = (off % PAGE_SIZE as u64) as usize;
            let take = (data.len() - written).min(PAGE_SIZE - in_page);
            let page = st.cache.get_mut(&page_id).expect("just loaded");
            page.data[in_page..in_page + take].copy_from_slice(&data[written..written + take]);
            page.dirty = true;
            off += take as u64;
            written += take;
        }
        // Write-through: push the bytes to the file now (the page stays
        // cached for reads).
        st.file.seek(SeekFrom::Start(byte_off))?;
        st.file.write_all(data)?;
        if self.config.fsync_on_write {
            st.file.sync_data()?;
        }
        Ok(())
    }

    /// Cache statistics `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.hits, st.misses)
    }
}

impl PagedStore {
    /// Shared put body: `new_hash` is the caller's precomputed
    /// `record_hash(key, value)`, so the deferred-commit path does not
    /// re-hash values it already hashed in the execute workers. The Merkle
    /// accumulator is keyed, so overwrites replace the bucket entry
    /// directly — the old slot only has to be read for its empty/occupied
    /// header, not re-hashed.
    fn put_hashed(&self, key: u64, value: &[u8], new_hash: [u8; 32]) {
        assert!(
            key < self.config.capacity,
            "key {key} beyond store capacity"
        );
        assert!(
            value.len() <= self.config.record_size,
            "value of {} bytes exceeds record size {}",
            value.len(),
            self.config.record_size
        );
        let mut st = self.state.lock();
        let off = self.slot_offset(key);
        // Read the old header for record accounting.
        let raw = self
            .read_at(&mut st, off, SLOT_HDR)
            .expect("paged read failed");
        let old_len = u16::from_le_bytes([raw[0], raw[1]]);
        if old_len == EMPTY_LEN {
            st.record_count += 1;
        }
        st.merkle.update(key, new_hash);
        // Write slot: length header + payload.
        let mut buf = Vec::with_capacity(SLOT_HDR + value.len());
        buf.extend_from_slice(&(value.len() as u16).to_le_bytes());
        buf.extend_from_slice(value);
        self.write_at(&mut st, off, &buf)
            .expect("paged write failed");
    }
}

impl StateStore for PagedStore {
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        assert!(
            key < self.config.capacity,
            "key {key} beyond store capacity"
        );
        let mut st = self.state.lock();
        let off = self.slot_offset(key);
        let raw = self
            .read_at(&mut st, off, SLOT_HDR + self.config.record_size)
            .expect("paged read failed");
        let len = u16::from_le_bytes([raw[0], raw[1]]);
        if len == EMPTY_LEN {
            return None;
        }
        Some(raw[SLOT_HDR..SLOT_HDR + len as usize].to_vec())
    }

    fn put(&self, key: u64, value: &[u8]) {
        self.put_hashed(key, value, record_hash(key, value));
    }

    fn apply(&self, writes: &[WriteRecord]) {
        for w in writes {
            self.put_hashed(w.key, &w.value, w.hash);
        }
    }

    fn len(&self) -> usize {
        self.state.lock().record_count
    }

    fn state_digest(&self) -> Digest {
        self.state.lock().merkle.root()
    }

    fn remove(&self, key: u64) -> bool {
        assert!(
            key < self.config.capacity,
            "key {key} beyond store capacity"
        );
        let mut st = self.state.lock();
        let off = self.slot_offset(key);
        let raw = self
            .read_at(&mut st, off, SLOT_HDR)
            .expect("paged read failed");
        let old_len = u16::from_le_bytes([raw[0], raw[1]]);
        if old_len == EMPTY_LEN {
            return false;
        }
        st.merkle.remove(key);
        st.record_count -= 1;
        self.write_at(&mut st, off, &EMPTY_LEN.to_le_bytes())
            .expect("paged write failed");
        true
    }

    fn export_records(&self) -> Vec<(u64, Vec<u8>)> {
        let mut st = self.state.lock();
        let mut out = Vec::with_capacity(st.record_count);
        for key in 0..self.config.capacity {
            let off = self.slot_offset(key);
            let raw = self
                .read_at(&mut st, off, SLOT_HDR + self.config.record_size)
                .expect("paged read failed");
            let len = u16::from_le_bytes([raw[0], raw[1]]);
            if len != EMPTY_LEN {
                out.push((key, raw[SLOT_HDR..SLOT_HDR + len as usize].to_vec()));
            }
        }
        out
    }

    fn install_records(&self, records: &[(u64, Vec<u8>)]) {
        self.initialize_empty().expect("paged re-init failed");
        {
            let mut st = self.state.lock();
            st.cache.clear();
            st.merkle.clear();
            st.record_count = 0;
        }
        for (key, value) in records {
            self.put(*key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn temp_store(config: PagedStoreConfig) -> (PagedStore, std::path::PathBuf) {
        let path = std::env::temp_dir().join(format!(
            "rdb-pagedb-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let store = PagedStore::create(&path, config).unwrap();
        (store, path)
    }

    fn small_config() -> PagedStoreConfig {
        PagedStoreConfig {
            record_size: 32,
            capacity: 1000,
            cache_pages: 4,
            fsync_on_write: false,
        }
    }

    #[test]
    fn get_put_round_trip() {
        let (s, path) = temp_store(small_config());
        assert!(s.get(5).is_none());
        s.put(5, b"hello");
        assert_eq!(s.get(5).as_deref(), Some(&b"hello"[..]));
        s.put(5, b"world!");
        assert_eq!(s.get(5).as_deref(), Some(&b"world!"[..]));
        assert_eq!(s.len(), 1);
        drop(s);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn eviction_preserves_data() {
        // 4-page cache, write far more pages than fit.
        let (s, path) = temp_store(small_config());
        for key in 0..1000u64 {
            s.put(key, &key.to_le_bytes());
        }
        for key in (0..1000u64).step_by(97) {
            assert_eq!(
                s.get(key).as_deref(),
                Some(&key.to_le_bytes()[..]),
                "key {key}"
            );
        }
        let (hits, misses) = s.cache_stats();
        assert!(misses > 0, "a 4-page cache must miss");
        assert!(hits > 0);
        drop(s);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn digest_matches_memstore_semantics() {
        let (s, path) = temp_store(small_config());
        let m = MemStore::new();
        for key in [3u64, 7, 500, 999, 7] {
            let v = key.to_be_bytes();
            s.put(key, &v);
            m.put(key, &v);
        }
        assert_eq!(s.state_digest(), m.state_digest());
        assert_eq!(s.len(), m.len());
        drop(s);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn apply_uses_precomputed_hashes_and_matches_puts() {
        let (applied, path_a) = temp_store(small_config());
        applied.apply(&[
            WriteRecord::new(3, b"one".to_vec()),
            WriteRecord::new(9, b"two".to_vec()),
            WriteRecord::new(3, b"uno".to_vec()),
        ]);
        let (direct, path_b) = temp_store(small_config());
        direct.put(3, b"one");
        direct.put(9, b"two");
        direct.put(3, b"uno");
        assert_eq!(applied.state_digest(), direct.state_digest());
        assert_eq!(applied.get(3).as_deref(), Some(&b"uno"[..]));
        assert_eq!(applied.len(), 2);
        drop(applied);
        drop(direct);
        let _ = std::fs::remove_file(path_a);
        let _ = std::fs::remove_file(path_b);
    }

    #[test]
    #[should_panic(expected = "beyond store capacity")]
    fn out_of_range_key_panics() {
        let (s, _path) = temp_store(small_config());
        s.put(1000, b"x");
    }

    #[test]
    #[should_panic(expected = "exceeds record size")]
    fn oversized_value_panics() {
        let (s, _path) = temp_store(small_config());
        s.put(1, &[0u8; 33]);
    }

    #[test]
    fn records_spanning_page_boundaries() {
        // slot = 34 bytes: slots straddle 4096-byte page edges regularly.
        let (s, path) = temp_store(small_config());
        // Keys around page boundary: page 0 holds ~120 slots.
        for key in 115..125u64 {
            s.put(key, &[key as u8; 32]);
        }
        for key in 115..125u64 {
            assert_eq!(s.get(key).as_deref(), Some(&[key as u8; 32][..]));
        }
        drop(s);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn remove_restores_pre_put_digest() {
        let (s, path) = temp_store(small_config());
        s.put(1, b"base");
        let before = s.state_digest();
        s.put(42, b"transient");
        assert_ne!(s.state_digest(), before);
        assert!(s.remove(42));
        assert_eq!(s.state_digest(), before);
        assert_eq!(s.len(), 1);
        assert!(s.get(42).is_none());
        assert!(!s.remove(42), "second removal finds an empty slot");
        drop(s);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn export_install_round_trips_content_and_digest() {
        let (src, path_a) = temp_store(small_config());
        for key in [999u64, 3, 118, 120] {
            src.put(key, &key.to_le_bytes());
        }
        let records = src.export_records();
        assert_eq!(records.len(), 4);
        assert!(records.windows(2).all(|w| w[0].0 < w[1].0), "key-sorted");

        let (dst, path_b) = temp_store(small_config());
        dst.put(7, b"stale state to be wiped");
        dst.install_records(&records);
        assert_eq!(dst.state_digest(), src.state_digest());
        assert_eq!(dst.len(), src.len());
        assert!(dst.get(7).is_none());
        assert_eq!(dst.get(118).as_deref(), Some(&118u64.to_le_bytes()[..]));

        // A MemStore installed from the same records agrees too.
        let m = MemStore::new();
        m.install_records(&records);
        assert_eq!(m.state_digest(), src.state_digest());
        drop(src);
        drop(dst);
        let _ = std::fs::remove_file(path_a);
        let _ = std::fs::remove_file(path_b);
    }

    #[test]
    fn empty_after_create() {
        let (s, path) = temp_store(small_config());
        for key in (0..1000).step_by(111) {
            assert!(s.get(key).is_none());
        }
        assert_eq!(s.len(), 0);
        assert_eq!(s.state_digest(), Digest::ZERO);
        drop(s);
        let _ = std::fs::remove_file(path);
    }
}
