//! Incremental sparse binary Merkle commitment over store records.
//!
//! PR 9's state commitment was an XOR fold of per-record hashes: cheap and
//! order-independent, but a Byzantine responder can craft record *sets* that
//! cancel under XOR, and it admits no partial proofs. This module replaces it
//! with a fixed-depth sparse binary Merkle tree:
//!
//! - Records are bucketed into `2^DEPTH` leaves by a Fibonacci hash of their
//!   key. A leaf commits to the sorted `(key, record_hash)` pairs of its
//!   bucket; interior nodes are `SHA-256(left ‖ right)`.
//! - The tree is **sparse**: only non-empty nodes are materialized, and each
//!   level's all-empty subtree hash is precomputed once, so an empty or
//!   lightly-populated table costs memory proportional to its occupancy,
//!   not to `2^DEPTH`.
//! - Updates are **incremental**: a single `put`/`remove` re-hashes one leaf
//!   and its root path (`DEPTH` compressions); a batched [`apply`] re-hashes
//!   each dirty leaf once and propagates dirty parents level by level, so a
//!   256-write batch shares most of its upper-tree work.
//! - The root is a pure function of the record *contents* — identical across
//!   backends (`MemStore` ≡ `PagedStore`) and across put/remove histories
//!   that converge on the same state, which the Zyzzyva undo log depends on.
//!
//! An empty store commits to [`Digest::ZERO`], preserving the XOR-fold
//! convention every genesis block and test fixture already assumes.
//!
//! [`apply`]: MerkleAccumulator::apply
//!
//! [`prove`](MerkleAccumulator::prove) / [`verify_proof`] add what the XOR
//! fold never could: a replica can hand over one bucket plus `DEPTH` sibling
//! hashes and a verifier checks membership against the 32-byte commitment
//! without the full record set.

use rdb_common::Digest;
use rdb_crypto::sha2::Sha256;
use std::collections::{BTreeMap, HashMap};
use std::sync::OnceLock;

/// Tree depth: `2^16` leaf buckets. At the paper-scale 600K-row table this
/// averages ~9 records per bucket; the per-update path is 16 compressions.
pub const DEPTH: usize = 16;
const LEAVES: u32 = 1 << DEPTH;

/// Leaf bucket for a key: top `DEPTH` bits of the Fibonacci product, so
/// sequential workload keys spread across distinct buckets.
#[inline]
pub fn bucket_of(key: u64) -> u32 {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - DEPTH)) as u32
}

/// Per-level hash of an all-empty subtree, computed once per process.
fn empty_levels() -> &'static [[u8; 32]; DEPTH + 1] {
    static EMPTY: OnceLock<[[u8; 32]; DEPTH + 1]> = OnceLock::new();
    EMPTY.get_or_init(|| {
        let mut levels = [[0u8; 32]; DEPTH + 1];
        for l in 0..DEPTH {
            levels[l + 1] = hash_pair(&levels[l], &levels[l]);
        }
        levels
    })
}

fn hash_pair(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(left);
    h.update(right);
    h.finalize()
}

/// Hash of one leaf bucket: the concatenation of `key ‖ record_hash` for
/// every entry in key order. The empty bucket hashes to all-zero (the
/// sparse default), so vacating a bucket restores the empty subtree hash.
fn leaf_hash(bucket: &BTreeMap<u64, [u8; 32]>) -> [u8; 32] {
    if bucket.is_empty() {
        return [0u8; 32];
    }
    let mut h = Sha256::new();
    for (key, rh) in bucket {
        h.update(&key.to_le_bytes());
        h.update(rh);
    }
    h.finalize()
}

/// The incremental commitment. Owned by a store (under the same lock that
/// previously guarded the XOR accumulator); not internally synchronized.
#[derive(Debug, Default, Clone)]
pub struct MerkleAccumulator {
    /// Bucket contents: key → record hash, grouped by leaf index.
    buckets: HashMap<u32, BTreeMap<u64, [u8; 32]>>,
    /// Materialized non-empty nodes, `nodes[level][index]`. Level 0 is the
    /// leaves; level `DEPTH` holds only the root at index 0.
    nodes: Vec<HashMap<u32, [u8; 32]>>,
    len: usize,
}

impl MerkleAccumulator {
    pub fn new() -> Self {
        MerkleAccumulator {
            buckets: HashMap::new(),
            nodes: (0..=DEPTH).map(|_| HashMap::new()).collect(),
            len: 0,
        }
    }

    /// Number of records committed to.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn node(&self, level: usize, index: u32) -> [u8; 32] {
        self.nodes[level]
            .get(&index)
            .copied()
            .unwrap_or(empty_levels()[level])
    }

    fn set_node(&mut self, level: usize, index: u32, hash: [u8; 32]) {
        if hash == empty_levels()[level] {
            self.nodes[level].remove(&index);
        } else {
            self.nodes[level].insert(index, hash);
        }
    }

    /// Mutates one bucket entry, maintaining `len`; returns the leaf index
    /// if the bucket's contents actually changed.
    fn touch(&mut self, key: u64, record_hash: Option<[u8; 32]>) -> Option<u32> {
        let leaf = bucket_of(key);
        let bucket = self.buckets.entry(leaf).or_default();
        let changed = match record_hash {
            Some(h) => {
                let prior = bucket.insert(key, h);
                if prior.is_none() {
                    self.len += 1;
                }
                prior != Some(h)
            }
            None => {
                let removed = bucket.remove(&key).is_some();
                if removed {
                    self.len -= 1;
                }
                removed
            }
        };
        if self.buckets[&leaf].is_empty() {
            self.buckets.remove(&leaf);
        }
        changed.then_some(leaf)
    }

    /// Inserts or replaces the record hash for `key` and re-hashes its root
    /// path.
    pub fn update(&mut self, key: u64, record_hash: [u8; 32]) {
        if let Some(leaf) = self.touch(key, Some(record_hash)) {
            self.rehash_path(leaf);
        }
    }

    /// Removes `key` (no-op if absent) and re-hashes its root path.
    pub fn remove(&mut self, key: u64) {
        if let Some(leaf) = self.touch(key, None) {
            self.rehash_path(leaf);
        }
    }

    /// Batched update: every dirty leaf is re-hashed once and parents are
    /// propagated level by level, deduplicated, so a batch shares the upper
    /// tree instead of walking `DEPTH` levels per write.
    pub fn apply<I>(&mut self, writes: I)
    where
        I: IntoIterator<Item = (u64, Option<[u8; 32]>)>,
    {
        let mut dirty: Vec<u32> = Vec::new();
        for (key, rh) in writes {
            if let Some(leaf) = self.touch(key, rh) {
                dirty.push(leaf);
            }
        }
        self.rehash_many(&mut dirty);
    }

    /// Drops every record and resets the commitment to empty.
    pub fn clear(&mut self) {
        self.buckets.clear();
        for level in &mut self.nodes {
            level.clear();
        }
        self.len = 0;
    }

    fn rehash_path(&mut self, leaf: u32) {
        let hash = leaf_hash(self.buckets.get(&leaf).unwrap_or(&BTreeMap::new()));
        self.set_node(0, leaf, hash);
        let mut index = leaf;
        for level in 0..DEPTH {
            let parent = index >> 1;
            let pair = hash_pair(
                &self.node(level, parent << 1),
                &self.node(level, (parent << 1) | 1),
            );
            self.set_node(level + 1, parent, pair);
            index = parent;
        }
    }

    fn rehash_many(&mut self, dirty: &mut Vec<u32>) {
        if dirty.is_empty() {
            return;
        }
        dirty.sort_unstable();
        dirty.dedup();
        for &leaf in dirty.iter() {
            let hash = leaf_hash(self.buckets.get(&leaf).unwrap_or(&BTreeMap::new()));
            self.set_node(0, leaf, hash);
        }
        let mut level_dirty: Vec<u32> = dirty.clone();
        for level in 0..DEPTH {
            let mut parents: Vec<u32> = level_dirty.iter().map(|i| i >> 1).collect();
            parents.dedup();
            for &parent in &parents {
                let pair = hash_pair(
                    &self.node(level, parent << 1),
                    &self.node(level, (parent << 1) | 1),
                );
                self.set_node(level + 1, parent, pair);
            }
            level_dirty = parents;
        }
    }

    /// The 32-byte state commitment. An empty accumulator commits to
    /// [`Digest::ZERO`] (the pre-Merkle convention); any occupancy yields
    /// the sparse-tree root.
    pub fn root(&self) -> Digest {
        if self.len == 0 {
            return Digest::ZERO;
        }
        Digest(self.node(DEPTH, 0))
    }

    /// Membership proof for `key`: its full leaf bucket plus the `DEPTH`
    /// sibling hashes on the root path. `None` if the key is absent.
    pub fn prove(&self, key: u64) -> Option<MerkleProof> {
        let leaf = bucket_of(key);
        let bucket = self.buckets.get(&leaf)?;
        if !bucket.contains_key(&key) {
            return None;
        }
        let mut siblings = Vec::with_capacity(DEPTH);
        let mut index = leaf;
        for level in 0..DEPTH {
            siblings.push(self.node(level, index ^ 1));
            index >>= 1;
        }
        Some(MerkleProof {
            leaf,
            entries: bucket.iter().map(|(k, h)| (*k, *h)).collect(),
            siblings,
        })
    }
}

/// A partial state proof: one leaf bucket and its root path.
#[derive(Debug, Clone)]
pub struct MerkleProof {
    /// Leaf index the bucket hashes into.
    pub leaf: u32,
    /// The complete `(key, record_hash)` contents of that bucket.
    pub entries: Vec<(u64, [u8; 32])>,
    /// Sibling hash at each level, leaf-side first.
    pub siblings: Vec<[u8; 32]>,
}

/// Verifies that `proof` places `(key, record_hash)` under `root`.
///
/// Checks, in order: the bucket really is the one `key` hashes to, the
/// claimed pair appears in it, and folding the bucket hash with the sibling
/// path reproduces the commitment.
pub fn verify_proof(root: Digest, key: u64, record_hash: [u8; 32], proof: &MerkleProof) -> bool {
    if proof.leaf != bucket_of(key) || proof.leaf >= LEAVES || proof.siblings.len() != DEPTH {
        return false;
    }
    if !proof
        .entries
        .iter()
        .any(|(k, h)| *k == key && *h == record_hash)
    {
        return false;
    }
    let bucket: BTreeMap<u64, [u8; 32]> = proof.entries.iter().copied().collect();
    if bucket.len() != proof.entries.len() || bucket.keys().any(|k| bucket_of(*k) != proof.leaf) {
        return false;
    }
    let mut hash = leaf_hash(&bucket);
    let mut index = proof.leaf;
    for sibling in &proof.siblings {
        hash = if index & 1 == 0 {
            hash_pair(&hash, sibling)
        } else {
            hash_pair(sibling, &hash)
        };
        index >>= 1;
    }
    Digest(hash) == root
}

/// One-shot commitment over a record set (the snapshot-verification path):
/// hashes every record and bulk-builds the tree.
pub fn commitment_of<'a, I>(records: I) -> Digest
where
    I: IntoIterator<Item = (u64, &'a [u8])>,
{
    let mut acc = MerkleAccumulator::new();
    acc.apply(
        records
            .into_iter()
            .map(|(k, v)| (k, Some(crate::store::record_hash(k, v)))),
    );
    acc.root()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::record_hash;

    fn rh(key: u64, tag: u8) -> [u8; 32] {
        record_hash(key, &[tag; 8])
    }

    #[test]
    fn empty_commits_to_zero() {
        assert_eq!(MerkleAccumulator::new().root(), Digest::ZERO);
    }

    #[test]
    fn root_is_content_only() {
        let mut a = MerkleAccumulator::new();
        a.update(1, rh(1, 1));
        a.update(2, rh(2, 2));
        let mut b = MerkleAccumulator::new();
        b.update(2, rh(2, 2));
        b.update(7, rh(7, 7));
        b.update(1, rh(1, 1));
        b.remove(7);
        assert_eq!(a.root(), b.root());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn remove_restores_prior_root() {
        let mut a = MerkleAccumulator::new();
        a.update(1, rh(1, 1));
        let before = a.root();
        a.update(9, rh(9, 9));
        assert_ne!(a.root(), before);
        a.remove(9);
        assert_eq!(a.root(), before);
        a.remove(1);
        assert_eq!(a.root(), Digest::ZERO);
    }

    #[test]
    fn distinct_contents_distinct_roots() {
        // Value swap between two keys, same multiset of values: roots differ.
        let (mut a, mut b) = (MerkleAccumulator::new(), MerkleAccumulator::new());
        a.update(1, rh(1, 1));
        a.update(2, rh(2, 2));
        b.update(1, rh(2, 2));
        b.update(2, rh(1, 1));
        assert_ne!(a.root(), b.root());
        // A strict subset commits differently too.
        let mut c = MerkleAccumulator::new();
        c.update(1, rh(1, 1));
        assert_ne!(a.root(), c.root());
        // Colliding buckets (keys LEAVES apart may share one) still separate.
        let (mut d, mut e) = (MerkleAccumulator::new(), MerkleAccumulator::new());
        d.update(0, rh(0, 1));
        e.update(0, rh(0, 2));
        assert_ne!(d.root(), e.root());
    }

    #[test]
    fn batched_apply_equals_incremental() {
        let writes: Vec<(u64, Option<[u8; 32]>)> = (0..300u64)
            .map(|k| (k * 7919, Some(rh(k * 7919, k as u8))))
            .chain([(7919u64 * 3, None), (7919u64 * 4, None)])
            .collect();
        let mut batched = MerkleAccumulator::new();
        batched.apply(writes.iter().copied());
        let mut stepped = MerkleAccumulator::new();
        for (k, h) in &writes {
            match h {
                Some(h) => stepped.update(*k, *h),
                None => stepped.remove(*k),
            }
        }
        assert_eq!(batched.root(), stepped.root());
        assert_eq!(batched.len(), stepped.len());
    }

    #[test]
    fn proofs_verify_and_reject_tampering() {
        let mut acc = MerkleAccumulator::new();
        for k in 0..64u64 {
            acc.update(k, rh(k, k as u8));
        }
        let root = acc.root();
        let proof = acc.prove(17).expect("present key proves");
        assert!(verify_proof(root, 17, rh(17, 17), &proof));
        // Wrong value hash.
        assert!(!verify_proof(root, 17, rh(17, 18), &proof));
        // Wrong key for this bucket's proof.
        assert!(!verify_proof(root, 99_999, rh(17, 17), &proof));
        // Tampered sibling.
        let mut bad = proof.clone();
        bad.siblings[3][0] ^= 1;
        assert!(!verify_proof(root, 17, rh(17, 17), &bad));
        // Padded bucket (smuggled entry) no longer matches the root.
        let mut padded = proof.clone();
        padded.entries.push((17 + (LEAVES as u64) * 17, [9u8; 32]));
        assert!(!verify_proof(root, 17, rh(17, 17), &padded));
        // Absent key has no proof.
        assert!(acc.prove(1 << 40).is_none());
    }

    #[test]
    fn commitment_of_matches_accumulated_store_order() {
        let records: Vec<(u64, Vec<u8>)> =
            (0..40u64).map(|k| (k * 31, vec![k as u8; 16])).collect();
        let mut acc = MerkleAccumulator::new();
        for (k, v) in records.iter().rev() {
            acc.update(*k, record_hash(*k, v));
        }
        let oneshot = commitment_of(records.iter().map(|(k, v)| (*k, v.as_slice())));
        assert_eq!(acc.root(), oneshot);
    }
}
