//! Write-ahead log with group commit for the block-append path.
//!
//! The WAL is a flat file of length-prefixed, checksummed records:
//!
//! ```text
//! [ 8-byte magic "RDBWAL01" ]
//! [ u32 len | 32-byte SHA-256(payload) | payload ] *
//! ```
//!
//! Payloads are opaque bytes — the pipeline encodes its typed records with
//! the canonical `Wire` codec before appending, so the on-disk bytes are the
//! same deterministic encoding every digest and signature already covers.
//!
//! **Crash behaviour.** A crash can leave a torn final record (length or
//! payload only partially written) or, on pathological media, a corrupt
//! checksum anywhere. [`Wal::open`] scans forward and keeps the longest
//! valid prefix, truncating the rest — the recovery contract is "every
//! record you get back was durably and completely appended, in order".
//!
//! **Group commit.** `fsync` per append caps a serial commit loop at the
//! disk's sync latency. [`FsyncPolicy::Group`] instead marks the log dirty
//! and lets a flusher thread issue one `fdatasync` per window, amortizing
//! the sync across every append that landed in the window — the same move
//! PR 2 made for serialization (encode once, share the bytes). The window
//! bounds the data loss of a power failure; a clean process crash loses
//! nothing because appends always reach the OS page cache synchronously.

use parking_lot::{Condvar, Mutex};
use rdb_crypto::sha2::sha256;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const MAGIC: &[u8; 8] = b"RDBWAL01";
const HEADER_LEN: u64 = 8;
/// Per-record framing overhead: u32 length + 32-byte checksum.
const RECORD_OVERHEAD: usize = 4 + 32;
/// Upper bound on a single record; anything larger is treated as a torn
/// length field during recovery (a batch of 100 txns encodes to ~10 KiB).
const MAX_RECORD: usize = 256 << 20;

/// When appends reach the platter, not just the page cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` on every append — durable at once, pays full sync latency
    /// per record.
    Always,
    /// Group commit: appends mark the log dirty; a flusher thread syncs at
    /// most once per window. Power-failure loss is bounded by the window.
    Group(Duration),
    /// Never sync explicitly; the OS flushes on its own schedule. The
    /// honest lower bound for the bench sweep, not a durability mode.
    Never,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug, Default, Clone)]
pub struct WalRecovery {
    /// Fully-valid payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes discarded past the last valid record (torn tail / corruption).
    pub torn_bytes: u64,
}

struct WalState {
    file: File,
    /// Appends since the last sync (group mode's dirty marker).
    unsynced: u64,
}

struct WalShared {
    state: Mutex<WalState>,
    wake: Condvar,
    stop: AtomicBool,
    appends: AtomicU64,
    syncs: AtomicU64,
}

impl WalShared {
    fn sync_if_dirty(&self) -> io::Result<()> {
        let mut st = self.state.lock();
        if st.unsynced > 0 {
            st.file.sync_data()?;
            st.unsynced = 0;
            self.syncs.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }
}

/// An open write-ahead log. Appends are thread-safe; one `Wal` per replica.
pub struct Wal {
    shared: Arc<WalShared>,
    path: PathBuf,
    policy: FsyncPolicy,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("appends", &self.appends())
            .field("syncs", &self.syncs())
            .finish()
    }
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, recovering the valid
    /// prefix and truncating any torn tail before the first new append.
    pub fn open(path: impl AsRef<Path>, policy: FsyncPolicy) -> io::Result<(Wal, WalRecovery)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;

        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (recovery, valid_len) = scan(&bytes);
        if bytes.len() as u64 != valid_len {
            // Torn tail (or a file that isn't a WAL at all): keep the valid
            // prefix, drop the rest, and make the truncation itself durable
            // before anything appends after it.
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        if valid_len < HEADER_LEN {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;

        let shared = Arc::new(WalShared {
            state: Mutex::new(WalState { file, unsynced: 0 }),
            wake: Condvar::new(),
            stop: AtomicBool::new(false),
            appends: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        });
        let flusher = match policy {
            FsyncPolicy::Group(window) => Some(spawn_flusher(Arc::clone(&shared), window)),
            _ => None,
        };
        Ok((
            Wal {
                shared,
                path,
                policy,
                flusher: Mutex::new(flusher),
            },
            recovery,
        ))
    }

    /// Appends one record. The write always reaches the OS synchronously;
    /// when it reaches the disk is the [`FsyncPolicy`]'s call.
    pub fn append(&self, payload: &[u8]) -> io::Result<()> {
        let checksum = sha256(payload);
        let mut frame = Vec::with_capacity(RECORD_OVERHEAD + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum);
        frame.extend_from_slice(payload);

        let mut st = self.shared.state.lock();
        st.file.write_all(&frame)?;
        self.shared.appends.fetch_add(1, Ordering::Relaxed);
        match self.policy {
            FsyncPolicy::Always => {
                st.file.sync_data()?;
                self.shared.syncs.fetch_add(1, Ordering::Relaxed);
            }
            FsyncPolicy::Group(_) => st.unsynced += 1,
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Forces any unsynced appends to disk now (checkpoint barrier).
    pub fn sync(&self) -> io::Result<()> {
        self.shared.sync_if_dirty()
    }

    /// Truncates the log back to empty (everything below the just-persisted
    /// snapshot is covered by it).
    pub fn reset(&self) -> io::Result<()> {
        let mut st = self.shared.state.lock();
        st.file.set_len(HEADER_LEN)?;
        st.file.seek(SeekFrom::End(0))?;
        st.file.sync_data()?;
        st.unsynced = 0;
        Ok(())
    }

    /// Compacts the log, retaining only records `keep` accepts (in order).
    /// Atomic: the retained set is written to a sibling temp file, synced,
    /// and renamed over the log, so a crash leaves either the old or the
    /// new log — never a partial rewrite.
    pub fn rewrite_retain(&self, mut keep: impl FnMut(&[u8]) -> bool) -> io::Result<()> {
        let mut st = self.shared.state.lock();
        st.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        st.file.read_to_end(&mut bytes)?;
        let (recovery, _) = scan(&bytes);

        let tmp_path = self.path.with_extension("rewrite");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(MAGIC)?;
        for payload in &recovery.records {
            if keep(payload) {
                tmp.write_all(&(payload.len() as u32).to_le_bytes())?;
                tmp.write_all(&sha256(payload))?;
                tmp.write_all(payload)?;
            }
        }
        tmp.sync_data()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;

        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        st.file = file;
        st.unsynced = 0;
        Ok(())
    }

    /// Total records appended through this handle.
    pub fn appends(&self) -> u64 {
        self.shared.appends.load(Ordering::Relaxed)
    }

    /// Total `fdatasync` calls issued — the number group commit amortizes.
    pub fn syncs(&self) -> u64 {
        self.shared.syncs.load(Ordering::Relaxed)
    }

    /// The configured sync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.wake.notify_all();
        if let Some(handle) = self.flusher.lock().take() {
            let _ = handle.join();
        }
        // Final sync so a clean shutdown under Group policy loses nothing.
        let _ = self.shared.sync_if_dirty();
    }
}

fn spawn_flusher(shared: Arc<WalShared>, window: Duration) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name("wal-flush".into())
        .spawn(move || loop {
            {
                // Sleep on the condvar so Drop can wake us immediately.
                let mut st = shared.state.lock();
                shared.wake.wait_for(&mut st, window);
            }
            if shared.stop.load(Ordering::Acquire) {
                return;
            }
            let _ = shared.sync_if_dirty();
        })
        .expect("spawn wal flusher")
}

/// Scans `bytes` for the longest valid record prefix. Returns the decoded
/// payloads and the byte offset the file should be truncated to.
fn scan(bytes: &[u8]) -> (WalRecovery, u64) {
    let mut recovery = WalRecovery::default();
    if bytes.len() < HEADER_LEN as usize || &bytes[..8] != MAGIC {
        recovery.torn_bytes = bytes.len() as u64;
        return (recovery, 0);
    }
    let mut pos = HEADER_LEN as usize;
    loop {
        if pos + RECORD_OVERHEAD > bytes.len() {
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD || pos + RECORD_OVERHEAD + len > bytes.len() {
            break;
        }
        let checksum = &bytes[pos + 4..pos + 36];
        let payload = &bytes[pos + 36..pos + 36 + len];
        if sha256(payload) != *checksum {
            break;
        }
        recovery.records.push(payload.to_vec());
        pos += RECORD_OVERHEAD + len;
    }
    recovery.torn_bytes = (bytes.len() - pos) as u64;
    (recovery, pos as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rdb-wal-test-{}-{name}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("wal.log")
    }

    #[test]
    fn round_trips_records_across_reopen() {
        let path = tmp("roundtrip");
        {
            let (wal, rec) = Wal::open(&path, FsyncPolicy::Always).expect("open");
            assert!(rec.records.is_empty());
            wal.append(b"alpha").expect("append");
            wal.append(b"beta").expect("append");
            wal.append(&[]).expect("empty payload is legal");
            assert_eq!(wal.appends(), 3);
            assert_eq!(wal.syncs(), 3);
        }
        let (_, rec) = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(
            rec.records,
            vec![b"alpha".to_vec(), b"beta".to_vec(), vec![]]
        );
        assert_eq!(rec.torn_bytes, 0);
    }

    #[test]
    fn torn_tail_recovers_to_last_valid_prefix() {
        let path = tmp("torn");
        {
            let (wal, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
            wal.append(b"keep-1").expect("append");
            wal.append(b"keep-2").expect("append");
            wal.append(b"torn-away").expect("append");
        }
        // Chop mid-way through the final record's payload.
        let len = std::fs::metadata(&path).expect("meta").len();
        let f = OpenOptions::new().write(true).open(&path).expect("open");
        f.set_len(len - 4).expect("truncate");
        drop(f);

        let (wal, rec) = Wal::open(&path, FsyncPolicy::Never).expect("recover");
        assert_eq!(rec.records, vec![b"keep-1".to_vec(), b"keep-2".to_vec()]);
        assert!(rec.torn_bytes > 0, "the torn record is reported");
        // The log is usable immediately after recovery.
        wal.append(b"keep-3").expect("append after recovery");
        drop(wal);
        let (_, rec) = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(
            rec.records,
            vec![b"keep-1".to_vec(), b"keep-2".to_vec(), b"keep-3".to_vec()]
        );
    }

    #[test]
    fn corrupt_checksum_discards_suffix() {
        let path = tmp("corrupt");
        {
            let (wal, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
            wal.append(b"good").expect("append");
            wal.append(b"flipped").expect("append");
            wal.append(b"after").expect("append");
        }
        // Flip a payload byte of the middle record: it and everything after
        // it are gone — suffix order would otherwise be unprovable.
        let mut bytes = std::fs::read(&path).expect("read");
        let second_payload = 8 + (36 + 4) + 36; // header, "good" record, framing
        bytes[second_payload] ^= 0xff;
        std::fs::write(&path, &bytes).expect("write");

        let (_, rec) = Wal::open(&path, FsyncPolicy::Never).expect("recover");
        assert_eq!(rec.records, vec![b"good".to_vec()]);
    }

    #[test]
    fn non_wal_file_is_reset_not_trusted() {
        let path = tmp("notawal");
        std::fs::write(&path, b"definitely not a wal").expect("write");
        let (wal, rec) = Wal::open(&path, FsyncPolicy::Never).expect("open");
        assert!(rec.records.is_empty());
        assert_eq!(rec.torn_bytes, 20);
        wal.append(b"fresh").expect("append");
        drop(wal);
        let (_, rec) = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(rec.records, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn group_commit_amortizes_syncs() {
        let path = tmp("group");
        let (wal, _) =
            Wal::open(&path, FsyncPolicy::Group(Duration::from_millis(5))).expect("open");
        for i in 0..200u32 {
            wal.append(&i.to_le_bytes()).expect("append");
        }
        // Let at least one window elapse, then force the tail out.
        std::thread::sleep(Duration::from_millis(20));
        wal.sync().expect("sync");
        let syncs = wal.syncs();
        assert!(syncs >= 1, "flusher ran");
        assert!(
            syncs < 200,
            "group commit must not sync per append (got {syncs})"
        );
        drop(wal);
        let (_, rec) = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(rec.records.len(), 200);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        let (wal, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
        wal.append(b"old").expect("append");
        wal.reset().expect("reset");
        wal.append(b"new").expect("append");
        drop(wal);
        let (_, rec) = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(rec.records, vec![b"new".to_vec()]);
    }

    #[test]
    fn rewrite_retain_keeps_the_selected_suffix() {
        let path = tmp("rewrite");
        let (wal, _) = Wal::open(&path, FsyncPolicy::Never).expect("open");
        for tag in [b"a1", b"a2", b"b1", b"b2"] {
            wal.append(tag).expect("append");
        }
        wal.rewrite_retain(|payload| payload.starts_with(b"b"))
            .expect("rewrite");
        wal.append(b"b3").expect("append after rewrite");
        drop(wal);
        let (_, rec) = Wal::open(&path, FsyncPolicy::Never).expect("reopen");
        assert_eq!(
            rec.records,
            vec![b"b1".to_vec(), b"b2".to_vec(), b"b3".to_vec()]
        );
    }
}
