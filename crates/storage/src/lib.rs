//! Storage substrate: state stores, the blockchain ledger, and buffer pools.
//!
//! Three pieces of the paper's replica live here:
//!
//! - [`store`] — the key-value state the execute-thread reads and writes.
//!   [`MemStore`] is the in-memory structure ResilientDB uses by default;
//!   [`pagedb::PagedStore`] is a from-scratch file-backed paged store that
//!   stands in for SQLite in the off-memory experiment (Figure 14).
//! - [`blockchain`] — the immutable ledger. Blocks are certified by the
//!   2f+1 commit signatures gathered during consensus instead of hashing
//!   the previous block on the critical path (Section 4.6).
//! - [`pool`] — object pools that avoid per-message allocation
//!   (Section 4.8, "Buffer Pool Management").
//! - [`merkle`] — the incremental sparse Merkle commitment both stores
//!   maintain over their records (checkpoint digests, snapshot vouching,
//!   partial state proofs).
//! - [`wal`] — the write-ahead log with group commit that makes the
//!   recovery path durable across process death.

pub mod blockchain;
pub mod merkle;
pub mod pagedb;
pub mod pool;
pub mod store;
pub mod wal;

pub use blockchain::Blockchain;
pub use merkle::{MerkleAccumulator, MerkleProof};
pub use pagedb::PagedStore;
pub use pool::BufferPool;
pub use store::{record_hash, MemStore, StateStore, WriteRecord};
pub use wal::{FsyncPolicy, Wal, WalRecovery};
