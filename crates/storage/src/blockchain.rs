//! The immutable ledger maintained at each replica.
//!
//! Each executed batch appends one [`Block`]. In the ResilientDB design the
//! block is linked to its predecessor by the 2f+1 commit signatures that
//! certified it (the consensus proof), avoiding the hash of the previous
//! block on the execution critical path; the traditional hash linkage is
//! also supported so the two chaining styles can be compared (an ablation
//! the paper motivates in Section 4.6).

use rdb_common::block::{Block, BlockCertificate, BlockLink};
use rdb_common::{CommonError, Digest, Result, SeqNum, ViewNum};
use rdb_crypto::digest;

/// How new blocks are linked to the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChainMode {
    /// Store the 2f+1 commit signatures (ResilientDB default; no hashing).
    #[default]
    Certificate,
    /// Hash the previous block into each new block (traditional chains).
    PrevHash,
}

/// An append-only blockchain with checkpoint-driven pruning.
#[derive(Debug)]
pub struct Blockchain {
    /// Blocks currently retained (pruned below `base_seq`).
    blocks: Vec<Block>,
    /// Sequence number of `blocks[0]`.
    base_seq: SeqNum,
    /// Number of commit signatures a certificate must carry (2f+1).
    commit_quorum: usize,
    mode: ChainMode,
    /// Hash of the last appended block (for `PrevHash` mode).
    head_hash: Digest,
    /// Total blocks ever appended (excluding genesis).
    appended: u64,
}

impl Blockchain {
    /// Creates a chain holding only the genesis block.
    ///
    /// `seed` becomes the genesis digest (the paper suggests the hash of
    /// the first primary's identifier); `commit_quorum` is `2f+1`.
    pub fn new(seed: Digest, commit_quorum: usize, mode: ChainMode) -> Self {
        let genesis = Block::genesis(seed);
        let head_hash = digest(&genesis.canonical_bytes());
        Blockchain {
            blocks: vec![genesis],
            base_seq: SeqNum(0),
            commit_quorum,
            mode,
            head_hash,
            appended: 0,
        }
    }

    /// The chain mode.
    pub fn mode(&self) -> ChainMode {
        self.mode
    }

    /// Height of the last block (genesis = 0).
    pub fn head_seq(&self) -> SeqNum {
        self.blocks.last().map(|b| b.seq).unwrap_or(self.base_seq)
    }

    /// Number of retained blocks (including genesis until pruned).
    pub fn retained(&self) -> usize {
        self.blocks.len()
    }

    /// Total blocks appended over the chain's lifetime.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends the block for the batch committed at `seq`.
    ///
    /// The caller provides the batch digest, the view, the certificate
    /// gathered from 2f+1 `Commit` signatures, and the execution-result
    /// digest. The link is built according to [`ChainMode`].
    ///
    /// # Errors
    /// Returns [`CommonError::InvalidMessage`] if `seq` is not exactly one
    /// past the head, or the certificate is smaller than the commit quorum.
    pub fn append(
        &mut self,
        seq: SeqNum,
        batch_digest: Digest,
        view: ViewNum,
        certificate: BlockCertificate,
        txn_count: u32,
        result_digest: Digest,
    ) -> Result<&Block> {
        if seq != self.head_seq().next() {
            return Err(CommonError::InvalidMessage(format!(
                "appending {seq} but head is {}",
                self.head_seq()
            )));
        }
        if certificate.signer_count() < self.commit_quorum {
            return Err(CommonError::InvalidMessage(format!(
                "certificate carries {} signatures, quorum is {}",
                certificate.signer_count(),
                self.commit_quorum
            )));
        }
        let link = match self.mode {
            ChainMode::Certificate => BlockLink::Certificate(certificate),
            ChainMode::PrevHash => BlockLink::Hash(self.head_hash),
        };
        let block = Block {
            seq,
            digest: batch_digest,
            view,
            link,
            txn_count,
            result_digest,
        };
        if self.mode == ChainMode::PrevHash {
            self.head_hash = digest(&block.canonical_bytes());
        }
        self.blocks.push(block);
        self.appended += 1;
        Ok(self.blocks.last().expect("just pushed"))
    }

    /// The block at `seq`, if retained.
    pub fn block_at(&self, seq: SeqNum) -> Option<&Block> {
        let idx = seq.0.checked_sub(self.base_seq.0)? as usize;
        self.blocks.get(idx)
    }

    /// Iterates over the retained blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Blocks in `(after, up_to]`, for building checkpoint messages.
    pub fn blocks_between(&self, after: SeqNum, up_to: SeqNum) -> Vec<Block> {
        self.blocks
            .iter()
            .filter(|b| b.seq > after && b.seq <= up_to)
            .cloned()
            .collect()
    }

    /// Discards blocks strictly below `keep_from` (checkpoint GC,
    /// Section 4.7: a stable checkpoint lets replicas clear old blocks).
    ///
    /// Never prunes past the head: a checkpoint becomes stable from 2f+1
    /// *remote* checkpoint messages, which can happen while this
    /// replica's own execution still lags behind the covered sequence —
    /// advancing the base past the head would make the replica's next
    /// (perfectly sequential) append look like a gap. The unpruned tail
    /// is collected by a later checkpoint once execution catches up.
    ///
    /// Returns the base after pruning, so callers can tell whether the
    /// request was clamped (returned base < requested `keep_from`) and
    /// needs retrying later.
    pub fn prune_below(&mut self, keep_from: SeqNum) -> SeqNum {
        let keep_from = SeqNum(keep_from.0.min(self.head_seq().0));
        if keep_from <= self.base_seq {
            return self.base_seq;
        }
        let cut = ((keep_from.0 - self.base_seq.0) as usize).min(self.blocks.len());
        self.blocks.drain(..cut);
        self.base_seq = keep_from;
        self.base_seq
    }

    /// Rolls the chain back to `seq`, discarding every block above it
    /// (Zyzzyva mis-speculation rollback: the speculative suffix is
    /// abandoned and the reconciled history re-appended).
    ///
    /// `seq` must be retained (at or above the pruning base) — rolling back
    /// below a stable checkpoint would contradict 2f+1 replicas.
    ///
    /// Returns how many blocks were discarded.
    pub fn truncate_to(&mut self, seq: SeqNum) -> usize {
        assert!(
            seq >= self.base_seq,
            "cannot roll back to {seq}: pruned below base {}",
            self.base_seq
        );
        if seq >= self.head_seq() {
            return 0;
        }
        let keep = (seq.0 - self.base_seq.0) as usize + 1;
        let dropped = self.blocks.len() - keep;
        self.blocks.truncate(keep);
        self.appended = self.appended.saturating_sub(dropped as u64);
        self.head_hash = digest(
            &self
                .blocks
                .last()
                .expect("base block is always retained")
                .canonical_bytes(),
        );
        dropped
    }

    /// Replaces the whole chain with a single snapshot block: the verified
    /// block at a remote peer's stable checkpoint. Everything this replica
    /// held (possibly nothing but genesis) is discarded; execution resumes
    /// at `block.seq + 1` on top of the installed state.
    pub fn install_snapshot_block(&mut self, block: Block) {
        self.head_hash = digest(&block.canonical_bytes());
        self.base_seq = block.seq;
        self.appended = block.seq.0;
        self.blocks = vec![block];
    }

    /// Verifies the retained chain: sequence continuity, certificate
    /// quorums, and (in `PrevHash` mode) the hash links.
    pub fn verify(&self) -> Result<()> {
        for pair in self.blocks.windows(2) {
            let (prev, cur) = (&pair[0], &pair[1]);
            if cur.seq != prev.seq.next() {
                return Err(CommonError::InvalidMessage(format!(
                    "gap between {} and {}",
                    prev.seq, cur.seq
                )));
            }
            match &cur.link {
                BlockLink::Certificate(cert) => {
                    if cert.signer_count() < self.commit_quorum {
                        return Err(CommonError::InvalidMessage(format!(
                            "block {} certificate below quorum",
                            cur.seq
                        )));
                    }
                }
                BlockLink::Hash(h) => {
                    if *h != digest(&prev.canonical_bytes()) {
                        return Err(CommonError::InvalidMessage(format!(
                            "block {} hash link does not match block {}",
                            cur.seq, prev.seq
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Digest over the retained chain head — combined with the store digest
    /// to form checkpoint state digests.
    pub fn head_digest(&self) -> Digest {
        match self.blocks.last() {
            Some(b) => digest(&b.canonical_bytes()),
            None => Digest::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ids::{ReplicaId, SignatureBytes};

    fn cert(n: usize) -> BlockCertificate {
        BlockCertificate::new(
            (0..n)
                .map(|i| (ReplicaId(i as u32), SignatureBytes(vec![i as u8; 16])))
                .collect(),
        )
    }

    fn chain(mode: ChainMode) -> Blockchain {
        Blockchain::new(digest(b"genesis"), 3, mode)
    }

    #[test]
    fn append_and_verify_certificate_mode() {
        let mut c = chain(ChainMode::Certificate);
        for i in 1..=10u64 {
            c.append(
                SeqNum(i),
                digest(&i.to_le_bytes()),
                ViewNum(0),
                cert(3),
                100,
                Digest::ZERO,
            )
            .unwrap();
        }
        assert_eq!(c.head_seq(), SeqNum(10));
        assert_eq!(c.appended(), 10);
        assert!(c.verify().is_ok());
    }

    #[test]
    fn append_and_verify_prevhash_mode() {
        let mut c = chain(ChainMode::PrevHash);
        for i in 1..=10u64 {
            c.append(
                SeqNum(i),
                digest(&i.to_le_bytes()),
                ViewNum(0),
                cert(3),
                100,
                Digest::ZERO,
            )
            .unwrap();
        }
        assert!(c.verify().is_ok());
        // Tamper with a middle block: verification must fail.
        let mut tampered = chain(ChainMode::PrevHash);
        for i in 1..=5u64 {
            tampered
                .append(
                    SeqNum(i),
                    digest(&i.to_le_bytes()),
                    ViewNum(0),
                    cert(3),
                    100,
                    Digest::ZERO,
                )
                .unwrap();
        }
        tampered.blocks[2].digest = digest(b"evil");
        assert!(tampered.verify().is_err());
    }

    #[test]
    fn rejects_gap_and_small_certificate() {
        let mut c = chain(ChainMode::Certificate);
        assert!(c
            .append(
                SeqNum(2),
                Digest::ZERO,
                ViewNum(0),
                cert(3),
                1,
                Digest::ZERO
            )
            .is_err());
        assert!(c
            .append(
                SeqNum(1),
                Digest::ZERO,
                ViewNum(0),
                cert(2),
                1,
                Digest::ZERO
            )
            .is_err());
        assert!(c
            .append(
                SeqNum(1),
                Digest::ZERO,
                ViewNum(0),
                cert(3),
                1,
                Digest::ZERO
            )
            .is_ok());
    }

    #[test]
    fn block_lookup() {
        let mut c = chain(ChainMode::Certificate);
        for i in 1..=5u64 {
            c.append(
                SeqNum(i),
                digest(&i.to_le_bytes()),
                ViewNum(0),
                cert(3),
                10,
                Digest::ZERO,
            )
            .unwrap();
        }
        assert!(c.block_at(SeqNum(0)).unwrap().is_genesis());
        assert_eq!(
            c.block_at(SeqNum(3)).unwrap().digest,
            digest(&3u64.to_le_bytes())
        );
        assert!(c.block_at(SeqNum(6)).is_none());
    }

    #[test]
    fn pruning_respects_base() {
        let mut c = chain(ChainMode::Certificate);
        for i in 1..=10u64 {
            c.append(
                SeqNum(i),
                digest(&i.to_le_bytes()),
                ViewNum(0),
                cert(3),
                10,
                Digest::ZERO,
            )
            .unwrap();
        }
        c.prune_below(SeqNum(6));
        assert_eq!(c.retained(), 5); // blocks 6..=10
        assert!(c.block_at(SeqNum(5)).is_none());
        assert_eq!(c.block_at(SeqNum(6)).unwrap().seq, SeqNum(6));
        // Appending continues to work after pruning.
        c.append(
            SeqNum(11),
            Digest::ZERO,
            ViewNum(0),
            cert(3),
            10,
            Digest::ZERO,
        )
        .unwrap();
        assert_eq!(c.head_seq(), SeqNum(11));
        assert!(c.verify().is_ok());
        // Pruning below the base is a no-op.
        c.prune_below(SeqNum(2));
        assert_eq!(c.block_at(SeqNum(6)).unwrap().seq, SeqNum(6));
    }

    #[test]
    fn pruning_past_the_head_clamps_instead_of_gapping() {
        // Regression: a stable checkpoint (assembled from 2f+1 remote
        // checkpoints) can cover sequences this replica has not executed
        // yet. Pruning must clamp at the head so the execute thread's
        // next append is still `head + 1`, not a phantom gap.
        let mut c = chain(ChainMode::Certificate);
        for i in 1..=3u64 {
            c.append(
                SeqNum(i),
                digest(&i.to_le_bytes()),
                ViewNum(0),
                cert(3),
                10,
                Digest::ZERO,
            )
            .unwrap();
        }
        c.prune_below(SeqNum(10)); // checkpoint ahead of local execution
        assert_eq!(c.head_seq(), SeqNum(3), "head must not jump forward");
        assert_eq!(c.retained(), 1, "the head block itself is kept");
        // Execution continues exactly where it left off.
        c.append(
            SeqNum(4),
            Digest::ZERO,
            ViewNum(0),
            cert(3),
            10,
            Digest::ZERO,
        )
        .unwrap();
        assert!(c.verify().is_ok());
    }

    #[test]
    fn blocks_between_for_checkpoints() {
        let mut c = chain(ChainMode::Certificate);
        for i in 1..=10u64 {
            c.append(
                SeqNum(i),
                digest(&i.to_le_bytes()),
                ViewNum(0),
                cert(3),
                10,
                Digest::ZERO,
            )
            .unwrap();
        }
        let blocks = c.blocks_between(SeqNum(3), SeqNum(7));
        let seqs: Vec<u64> = blocks.iter().map(|b| b.seq.0).collect();
        assert_eq!(seqs, vec![4, 5, 6, 7]);
    }

    #[test]
    fn truncate_discards_suffix_and_reappends_identically() {
        let build = |upto: u64| {
            let mut c = chain(ChainMode::PrevHash);
            for i in 1..=upto {
                c.append(
                    SeqNum(i),
                    digest(&i.to_le_bytes()),
                    ViewNum(0),
                    cert(3),
                    10,
                    Digest::ZERO,
                )
                .unwrap();
            }
            c
        };
        let mut rolled = build(8);
        assert_eq!(rolled.truncate_to(SeqNum(5)), 3);
        assert_eq!(rolled.head_seq(), SeqNum(5));
        assert!(rolled.block_at(SeqNum(6)).is_none());
        // Re-executing 6..=8 yields a chain indistinguishable from one
        // that never speculated.
        for i in 6..=8u64 {
            rolled
                .append(
                    SeqNum(i),
                    digest(&i.to_le_bytes()),
                    ViewNum(0),
                    cert(3),
                    10,
                    Digest::ZERO,
                )
                .unwrap();
        }
        let straight = build(8);
        assert_eq!(rolled.head_digest(), straight.head_digest());
        assert!(rolled.verify().is_ok());
        // Truncating at or above the head is a no-op.
        assert_eq!(rolled.truncate_to(SeqNum(8)), 0);
        assert_eq!(rolled.truncate_to(SeqNum(20)), 0);
    }

    #[test]
    #[should_panic(expected = "pruned below base")]
    fn truncate_below_stable_base_panics() {
        let mut c = chain(ChainMode::Certificate);
        for i in 1..=6u64 {
            c.append(
                SeqNum(i),
                digest(&i.to_le_bytes()),
                ViewNum(0),
                cert(3),
                10,
                Digest::ZERO,
            )
            .unwrap();
        }
        c.prune_below(SeqNum(4));
        c.truncate_to(SeqNum(3));
    }

    #[test]
    fn install_snapshot_block_resumes_from_base() {
        // Build the "authoritative" chain a peer snapshotted at seq 5.
        let mut donor = chain(ChainMode::Certificate);
        for i in 1..=5u64 {
            donor
                .append(
                    SeqNum(i),
                    digest(&i.to_le_bytes()),
                    ViewNum(0),
                    cert(3),
                    10,
                    digest(&[i as u8]),
                )
                .unwrap();
        }
        let base_block = donor.block_at(SeqNum(5)).unwrap().clone();

        // A rejoining replica installs it over its genesis-only chain.
        let mut rejoiner = chain(ChainMode::Certificate);
        rejoiner.install_snapshot_block(base_block);
        assert_eq!(rejoiner.head_seq(), SeqNum(5));
        assert_eq!(rejoiner.retained(), 1);
        assert_eq!(rejoiner.head_digest(), donor.head_digest());
        assert!(rejoiner.block_at(SeqNum(0)).is_none(), "genesis discarded");
        // Execution resumes at base + 1.
        rejoiner
            .append(
                SeqNum(6),
                digest(b"next"),
                ViewNum(0),
                cert(3),
                10,
                Digest::ZERO,
            )
            .unwrap();
        assert!(rejoiner.verify().is_ok());
    }

    #[test]
    fn head_digest_changes_with_appends() {
        let mut c = chain(ChainMode::Certificate);
        let d0 = c.head_digest();
        c.append(
            SeqNum(1),
            digest(b"x"),
            ViewNum(0),
            cert(3),
            1,
            Digest::ZERO,
        )
        .unwrap();
        assert_ne!(c.head_digest(), d0);
    }
}
