//! Property tests for speculative rollback: after executing a random
//! speculative suffix and rolling it back to an arbitrary cut point, the
//! replica's store digest, ledger head and transaction counters must be
//! bit-identical to a replica that *never executed the rolled-back
//! suffix at all* — and re-executing a different (reconciled) suffix on
//! top must converge with a clean replica that executed the reconciled
//! history directly. This is the correctness obligation behind
//! Zyzzyva's view-change rollback: mis-speculation must leave no trace.
//!
//! Keys are drawn from a tiny space so batches overwrite each other
//! constantly — the hard case for undo, since most rolled-back writes
//! must restore a *previous* value rather than delete a fresh key.

use parking_lot::Mutex;
use proptest::prelude::*;
use rdb_common::block::BlockCertificate;
use rdb_common::{
    Batch, ClientId, Digest, Operation, ProtocolKind, ReplicaId, SeqNum, Transaction, ViewNum,
};
use rdb_pipeline::queues::ExecuteItem;
use rdb_pipeline::Executor;
use rdb_storage::blockchain::ChainMode;
use rdb_storage::{Blockchain, MemStore, StateStore};
use std::sync::Arc;

const KEY_SPACE: u64 = 16;

/// Decodes one raw u64 into a write over the tiny key space (values keep
/// enough entropy that distinct suffixes produce distinct state).
fn decode_op(raw: u64) -> Operation {
    if (raw >> 5) & 0b11 == 0 {
        Operation::Read {
            key: raw % KEY_SPACE,
        }
    } else {
        Operation::Write {
            key: raw % KEY_SPACE,
            value: vec![(raw >> 8) as u8, (raw >> 16) as u8, (raw >> 24) as u8],
        }
    }
}

/// Builds speculative execute items (one per sequence) from a raw op
/// stream, starting at `first_seq`. `salt` keeps transaction ids of
/// different suffixes distinct, as reconciliation re-orders different
/// client requests, not byte-identical ones.
fn build_items(raw_ops: &[u64], first_seq: u64, salt: u64) -> Vec<ExecuteItem> {
    let mut items = Vec::new();
    let mut txns: Vec<Transaction> = Vec::new();
    let mut ops: Vec<Operation> = Vec::new();
    let mut counter = salt;
    for (i, &raw) in raw_ops.iter().enumerate() {
        ops.push(decode_op(raw));
        if ops.len() > (raw % 3) as usize {
            txns.push(Transaction::new(
                ClientId(raw % 4),
                counter,
                std::mem::take(&mut ops),
            ));
            counter += 1;
        }
        let flush = txns.len() > (raw % 3) as usize || i == raw_ops.len() - 1;
        if flush && !txns.is_empty() {
            let seq = first_seq + items.len() as u64;
            let batch: Batch = std::mem::take(&mut txns).into_iter().collect();
            let digest = rdb_crypto::digest(&batch.canonical_bytes());
            items.push(ExecuteItem {
                seq: SeqNum(seq),
                view: ViewNum(0),
                digest,
                batch: batch.into(),
                certificate: BlockCertificate::default(),
                history: Some(Digest([seq as u8; 32])),
            });
        }
    }
    items
}

fn zyz_executor() -> Executor {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
    let chain = Arc::new(Mutex::new(Blockchain::new(
        Digest::ZERO,
        0,
        ChainMode::PrevHash,
    )));
    Executor::new(ReplicaId(0), ProtocolKind::Zyzzyva, store, chain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rollback to any cut point inside a random speculative suffix, then
    /// re-execution of a different suffix, converges exactly with a
    /// replica that never speculated past the cut.
    #[test]
    fn rollback_and_reexecute_equals_never_speculated(
        prefix_raw in proptest::collection::vec(any::<u64>(), 1..24),
        wrong_raw in proptest::collection::vec(any::<u64>(), 1..24),
        right_raw in proptest::collection::vec(any::<u64>(), 1..24),
        cut_ticks in 0u64..100,
    ) {
        let prefix = build_items(&prefix_raw, 1, 0);
        let p = prefix.len() as u64;
        let wrong = build_items(&wrong_raw, p + 1, 1_000_000);
        // The rollback target: anywhere from the prefix head to just
        // below the speculative tip.
        let cut = p + cut_ticks * wrong.len() as u64 / 100;

        let spec = zyz_executor();
        for item in prefix.iter().chain(wrong.iter()) {
            spec.execute(item);
        }
        let undone = spec.rollback_to(SeqNum(cut));
        prop_assert_eq!(undone as u64, p + wrong.len() as u64 - cut);

        // Reference A: a replica that executed exactly up to the cut.
        let clean = zyz_executor();
        for item in prefix.iter().chain(wrong.iter()).take(cut as usize) {
            clean.execute(item);
        }
        prop_assert_eq!(spec.store().state_digest(), clean.store().state_digest());
        prop_assert_eq!(spec.executed_txns(), clean.executed_txns());
        prop_assert_eq!(spec.executed_batches(), clean.executed_batches());

        // Both now execute the reconciled history; digests must stay in
        // lock-step (the rolled-back replica carries no residue).
        let right = build_items(&right_raw, cut + 1, 2_000_000);
        for item in &right {
            let (da, _) = spec.execute(item);
            let (db, _) = clean.execute(item);
            prop_assert_eq!(da, db);
        }
        prop_assert_eq!(spec.store().state_digest(), clean.store().state_digest());
        prop_assert_eq!(spec.deduped_txns(), clean.deduped_txns());
    }

    /// Rolling back to the current tip (or above) is a no-op.
    #[test]
    fn rollback_at_or_above_tip_is_noop(
        raw in proptest::collection::vec(any::<u64>(), 1..24),
        overshoot in 0u64..4,
    ) {
        let items = build_items(&raw, 1, 0);
        let ex = zyz_executor();
        for item in &items {
            ex.execute(item);
        }
        let tip = items.len() as u64;
        let before = ex.store().state_digest();
        prop_assert_eq!(ex.rollback_to(SeqNum(tip + overshoot)), 0);
        prop_assert_eq!(ex.store().state_digest(), before);
        prop_assert_eq!(ex.executed_batches(), tip);
    }
}
