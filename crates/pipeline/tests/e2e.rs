//! End-to-end tests: full replica pipelines over the in-memory network,
//! real crypto, both protocols, with and without failures.

use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::{
    ClientId, CryptoScheme, Operation, ProtocolKind, ReplicaId, SystemConfig, ThreadConfig,
    Transaction,
};
use rdb_consensus::{ClientAction, PbftClient, ZyzzyvaClient};
use rdb_crypto::{KeyRegistry, PeerClass};
use rdb_net::{Endpoint, Network, NetworkConfig};
use rdb_pipeline::{spawn_replica, ReplicaHandle};
use std::time::{Duration, Instant};

fn test_config(n: usize, protocol: ProtocolKind) -> SystemConfig {
    let mut cfg = SystemConfig::new(n).unwrap();
    cfg.protocol = protocol;
    cfg.batch_size = 5;
    cfg.checkpoint_interval = 1000;
    cfg.num_clients = 4;
    cfg.table_size = 512;
    cfg.threads = ThreadConfig::standard();
    cfg
}

struct TestClient {
    id: ClientId,
    endpoint: Endpoint,
    provider: rdb_crypto::CryptoProvider,
    counter: u64,
}

impl TestClient {
    fn new(id: u64, net: &Network, registry: &KeyRegistry) -> Self {
        let cid = ClientId(id);
        TestClient {
            id: cid,
            endpoint: net.register(Sender::Client(cid)),
            provider: registry.provider_for_client(cid),
            counter: 0,
        }
    }

    fn make_txns(&mut self, count: usize) -> Vec<Transaction> {
        (0..count)
            .map(|i| {
                let t = Transaction::new(
                    self.id,
                    self.counter,
                    vec![Operation::Write {
                        key: (i as u64) % 512,
                        value: vec![i as u8; 8],
                    }],
                );
                self.counter += 1;
                t
            })
            .collect()
    }

    fn send_request(&self, txns: Vec<Transaction>, to: ReplicaId) {
        let msg = Message::ClientRequest { txns };
        let sm = SignedMessage::sign_with(msg, Sender::Client(self.id), |bytes| {
            self.provider.sign(PeerClass::Replica, bytes)
        });
        self.endpoint
            .send(Sender::Replica(to), sm)
            .expect("send to primary");
    }
}

fn spawn_cluster(cfg: &SystemConfig, net: &Network, registry: &KeyRegistry) -> Vec<ReplicaHandle> {
    (0..cfg.n as u32)
        .map(|i| spawn_replica(cfg, ReplicaId(i), &net.handle(), registry))
        .collect()
}

#[test]
fn pbft_end_to_end_commits_and_replies() {
    let cfg = test_config(4, ProtocolKind::Pbft);
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 7);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);

    let mut client = TestClient::new(0, &net, &registry);
    let mut tracker = PbftClient::new(client.id, cfg.f);
    let txns = client.make_txns(25); // 5 batches of 5
    for t in &txns {
        tracker.track(t.id.counter);
    }
    client.send_request(txns, ReplicaId(0));

    // Collect replies until all 25 requests complete.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut completed = 0;
    while completed < 25 && Instant::now() < deadline {
        let Ok(sm) = client.endpoint.recv_timeout(Duration::from_millis(200)) else {
            continue;
        };
        for act in tracker.on_reply(&sm) {
            if matches!(act, ClientAction::Complete { .. }) {
                completed += 1;
            }
        }
    }
    assert_eq!(completed, 25, "all requests must complete");

    // Every replica executed the same chain.
    std::thread::sleep(Duration::from_millis(300));
    let heads: Vec<u64> = replicas
        .iter()
        .map(|r| r.shared().chain.lock().head_seq().0)
        .collect();
    assert!(
        heads.iter().all(|h| *h == 5),
        "all replicas at 5 blocks: {heads:?}"
    );
    let digests: Vec<_> = replicas
        .iter()
        .map(|r| r.shared().store.state_digest())
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "stores must agree"
    );
    for r in &replicas {
        assert!(r.shared().chain.lock().verify().is_ok());
    }
    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
}

#[test]
fn zyzzyva_fast_path_end_to_end() {
    let cfg = test_config(4, ProtocolKind::Zyzzyva);
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 8);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);

    let mut client = TestClient::new(0, &net, &registry);
    let mut tracker = ZyzzyvaClient::new(client.id, cfg.f);
    let txns = client.make_txns(10); // 2 batches of 5
    for t in &txns {
        tracker.track(t.id.counter);
    }
    client.send_request(txns, ReplicaId(0));

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut completed = 0;
    while completed < 10 && Instant::now() < deadline {
        let Ok(sm) = client.endpoint.recv_timeout(Duration::from_millis(200)) else {
            continue;
        };
        for act in tracker.on_spec_response(&sm) {
            if matches!(act, ClientAction::Complete { .. }) {
                completed += 1;
            }
        }
    }
    assert_eq!(
        completed, 10,
        "fast path must complete with all replicas live"
    );
    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
}

#[test]
fn pbft_survives_backup_failure() {
    let cfg = test_config(4, ProtocolKind::Pbft);
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 9);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);

    // Crash one backup (f = 1 tolerated).
    net.faults().crash(Sender::Replica(ReplicaId(3)));

    let mut client = TestClient::new(0, &net, &registry);
    let mut tracker = PbftClient::new(client.id, cfg.f);
    let txns = client.make_txns(10);
    for t in &txns {
        tracker.track(t.id.counter);
    }
    client.send_request(txns, ReplicaId(0));

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut completed = 0;
    while completed < 10 && Instant::now() < deadline {
        let Ok(sm) = client.endpoint.recv_timeout(Duration::from_millis(200)) else {
            continue;
        };
        for act in tracker.on_reply(&sm) {
            if matches!(act, ClientAction::Complete { .. }) {
                completed += 1;
            }
        }
    }
    assert_eq!(completed, 10, "PBFT must commit with one backup down");
    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
}

#[test]
fn zyzzyva_backup_failure_needs_commit_certificates() {
    let cfg = test_config(4, ProtocolKind::Zyzzyva);
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 10);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);

    net.faults().crash(Sender::Replica(ReplicaId(3)));

    let mut client = TestClient::new(0, &net, &registry);
    let mut tracker = ZyzzyvaClient::new(client.id, cfg.f);
    let txns = client.make_txns(5); // one batch
    for t in &txns {
        tracker.track(t.id.counter);
    }
    let counters: Vec<u64> = txns.iter().map(|t| t.id.counter).collect();
    client.send_request(txns, ReplicaId(0));

    // Fast path cannot complete (only 3 of 4 respond). Gather responses,
    // then fire the client timeout to trigger the commit-certificate path.
    let gather_deadline = Instant::now() + Duration::from_secs(10);
    let mut specs = 0;
    while specs < 15 && Instant::now() < gather_deadline {
        let Ok(sm) = client.endpoint.recv_timeout(Duration::from_millis(200)) else {
            continue;
        };
        let acts = tracker.on_spec_response(&sm);
        assert!(
            acts.is_empty(),
            "fast path must not complete with a dead backup"
        );
        if matches!(sm.msg(), Message::SpecResponse { .. }) {
            specs += 1;
        }
    }
    assert!(
        specs >= 15,
        "3 live replicas × 5 txns spec responses, got {specs}"
    );

    // Timeout: distribute commit certificates.
    let mut completed = 0;
    for &counter in &counters {
        for act in tracker.on_timeout(counter) {
            if let ClientAction::BroadcastReplicas(msg) = act {
                // Encode-once broadcast: one envelope, cloned per replica.
                let sm = SignedMessage::sign_with(msg, Sender::Client(client.id), |bytes| {
                    client.provider.sign(PeerClass::Replica, bytes)
                });
                for r in 0..4u32 {
                    let _ = client
                        .endpoint
                        .send(Sender::Replica(ReplicaId(r)), sm.clone());
                }
            }
        }
    }
    // Collect LocalCommits. They carry the sequence; all five requests were
    // in the same batch (seq 1), so route to each tracked counter.
    let deadline = Instant::now() + Duration::from_secs(10);
    while completed < 5 && Instant::now() < deadline {
        let Ok(sm) = client.endpoint.recv_timeout(Duration::from_millis(200)) else {
            continue;
        };
        if !matches!(sm.msg(), Message::LocalCommit { .. }) {
            continue;
        }
        for &counter in &counters {
            for act in tracker.on_local_commit(counter, &sm) {
                if matches!(act, ClientAction::Complete { .. }) {
                    completed += 1;
                }
            }
        }
    }
    assert_eq!(completed, 5, "slow path must complete all requests");
    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
}

#[test]
fn monolithic_configuration_still_commits() {
    // 0E 0B: everything on the worker thread (Figure 8's baseline).
    let mut cfg = test_config(4, ProtocolKind::Pbft);
    cfg.threads = ThreadConfig::monolithic();
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 11);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);

    let mut client = TestClient::new(0, &net, &registry);
    let mut tracker = PbftClient::new(client.id, cfg.f);
    let txns = client.make_txns(10);
    for t in &txns {
        tracker.track(t.id.counter);
    }
    client.send_request(txns, ReplicaId(0));

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut completed = 0;
    while completed < 10 && Instant::now() < deadline {
        let Ok(sm) = client.endpoint.recv_timeout(Duration::from_millis(200)) else {
            continue;
        };
        for act in tracker.on_reply(&sm) {
            if matches!(act, ClientAction::Complete { .. }) {
                completed += 1;
            }
        }
    }
    assert_eq!(completed, 10, "monolithic pipeline must still be correct");
    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
}

/// Runs a PBFT cluster with the given thread config over a fixed,
/// conflict-heavy workload; returns the replicas' state digests once all
/// `n_txns` requests complete.
fn run_fixed_workload(threads: ThreadConfig, seed: u64) -> Vec<rdb_common::Digest> {
    let mut cfg = test_config(4, ProtocolKind::Pbft);
    cfg.threads = threads;
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, seed);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);

    let mut client = TestClient::new(0, &net, &registry);
    let mut tracker = PbftClient::new(client.id, cfg.f);
    // Deliberately conflicting: every transaction hits key (i % 7), so the
    // conflict scheduler must chain most of them; a scheduling bug that
    // reorders conflicting transactions would diverge the digests.
    let txns: Vec<Transaction> = (0..40u64)
        .map(|i| {
            let t = Transaction::new(
                client.id,
                client.counter,
                vec![
                    Operation::Write {
                        key: i % 7,
                        value: vec![i as u8; 8],
                    },
                    Operation::Read { key: (i + 1) % 7 },
                    Operation::Write {
                        key: 100 + i,
                        value: vec![(i as u8) ^ 0xff; 8],
                    },
                ],
            );
            client.counter += 1;
            t
        })
        .collect();
    for t in &txns {
        tracker.track(t.id.counter);
    }
    client.send_request(txns, ReplicaId(0));

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut completed = 0;
    while completed < 40 && Instant::now() < deadline {
        let Ok(sm) = client.endpoint.recv_timeout(Duration::from_millis(200)) else {
            continue;
        };
        for act in tracker.on_reply(&sm) {
            if matches!(act, ClientAction::Complete { .. }) {
                completed += 1;
            }
        }
    }
    assert_eq!(completed, 40, "all requests must complete");
    // Let the last batch's execution land everywhere.
    std::thread::sleep(Duration::from_millis(300));
    let digests = replicas
        .iter()
        .map(|r| r.shared().store.state_digest())
        .collect();
    for r in &replicas {
        assert!(r.shared().chain.lock().verify().is_ok());
    }
    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
    digests
}

#[test]
fn parallel_execution_matches_serial_digests_end_to_end() {
    // The determinism invariant, pinned through the full pipeline: a 4E
    // cluster (conflict-scheduled worker pool) must reach exactly the
    // state digest of a 1E cluster executing the same workload serially.
    let serial = run_fixed_workload(ThreadConfig::with_e_b(1, 2), 21);
    let parallel = run_fixed_workload(ThreadConfig::with_e_b(4, 2), 21);
    assert!(
        serial.windows(2).all(|w| w[0] == w[1]),
        "serial replicas agree"
    );
    assert!(
        parallel.windows(2).all(|w| w[0] == w[1]),
        "parallel replicas agree"
    );
    assert_eq!(
        serial[0], parallel[0],
        "parallel execution must be bit-identical to serial"
    );
}

#[test]
fn checkpoints_prune_the_chain() {
    let mut cfg = test_config(4, ProtocolKind::Pbft);
    cfg.checkpoint_interval = 10; // every 2 batches of 5
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 12);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);

    let mut client = TestClient::new(0, &net, &registry);
    let mut tracker = PbftClient::new(client.id, cfg.f);
    let txns = client.make_txns(50); // 10 batches → ~5 checkpoints
    for t in &txns {
        tracker.track(t.id.counter);
    }
    client.send_request(txns, ReplicaId(0));

    let deadline = Instant::now() + Duration::from_secs(20);
    let mut completed = 0;
    while completed < 50 && Instant::now() < deadline {
        let Ok(sm) = client.endpoint.recv_timeout(Duration::from_millis(200)) else {
            continue;
        };
        for act in tracker.on_reply(&sm) {
            if matches!(act, ClientAction::Complete { .. }) {
                completed += 1;
            }
        }
    }
    assert_eq!(completed, 50);
    // Give checkpoints a moment to propagate, then check pruning happened.
    std::thread::sleep(Duration::from_millis(500));
    let retained = replicas[0].shared().chain.lock().retained();
    assert!(
        retained < 11,
        "checkpointing should prune old blocks, retained={retained}"
    );
    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
}
