//! Property tests for multi-primary ordering's merge invariant: k
//! parallel consensus instances commit into one interleaved global
//! sequence space (instance `j` owns seqs `j+1, j+1+k, …`), and the
//! execute stage drains the merged stream strictly in global order. For
//! random batches, k ∈ {1, 2, 4} and *adversarial* commit-arrival
//! interleavings — any permutation of the commit stream, including
//! out-of-order within one instance — the per-sequence state digests,
//! client replies and final store contents must be bit-identical to the
//! k = 1 serial schedule. No-op gap-fill batches (empty, as proposed by
//! an instance with nothing to say) are injected too: they must not
//! perturb state or replies.

use proptest::prelude::*;
use rdb_common::block::BlockCertificate;
use rdb_common::{
    Batch, ClientId, Digest, Operation, ProtocolKind, ReplicaId, SeqNum, Transaction, ViewNum,
};
use rdb_pipeline::queues::{ExecuteItem, ExecutionQueues};
use rdb_pipeline::{Executor, OutItem};
use rdb_storage::blockchain::ChainMode;
use rdb_storage::{Blockchain, MemStore, StateStore};
use std::sync::Arc;

/// Tiny key space keeps the workloads conflict-dense.
const KEY_SPACE: u64 = 24;

fn decode_op(raw: u64) -> Operation {
    let key = raw % KEY_SPACE;
    if (raw >> 5) & 0b11 == 0 {
        Operation::Read { key }
    } else {
        Operation::Write {
            key,
            value: vec![(raw >> 8) as u8, (raw >> 16) as u8, (raw >> 24) as u8],
        }
    }
}

/// Builds the global schedule: one `ExecuteItem` per sequence `1..=m`,
/// where raw words are packed into transactions (empty batches appear
/// when a raw word selects gap-fill — the no-op an instance proposes to
/// unblock the merged schedule).
fn build_schedule(raw_ops: &[u64]) -> Vec<ExecuteItem> {
    let mut items = Vec::new();
    let mut counter = 0u64;
    let mut i = 0usize;
    while i < raw_ops.len() {
        let seq = items.len() as u64 + 1;
        let selector = raw_ops[i];
        let batch: Batch = if selector.is_multiple_of(7) {
            // Gap-fill no-op: an empty batch in the committed schedule.
            Batch::new(Vec::new())
        } else {
            let take = 1 + (selector % 4) as usize;
            let txns: Vec<Transaction> = raw_ops[i..raw_ops.len().min(i + take)]
                .iter()
                .map(|&raw| {
                    let t = Transaction::new(ClientId(raw % 5), counter, vec![decode_op(raw)]);
                    counter += 1;
                    t
                })
                .collect();
            i += take.saturating_sub(1);
            txns.into_iter().collect()
        };
        i += 1;
        items.push(ExecuteItem {
            seq: SeqNum(seq),
            view: ViewNum(0),
            digest: Digest([seq as u8; 32]),
            batch: batch.into(),
            certificate: BlockCertificate::default(),
            history: None,
        });
    }
    items
}

fn fresh_executor() -> Arc<Executor> {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::with_table(KEY_SPACE, 8));
    let chain = Arc::new(parking_lot::Mutex::new(Blockchain::new(
        Digest::ZERO,
        0,
        ChainMode::Certificate,
    )));
    Arc::new(Executor::new(
        ReplicaId(1),
        ProtocolKind::Pbft,
        store,
        chain,
    ))
}

fn store_contents(store: &Arc<dyn StateStore>) -> Vec<Option<Vec<u8>>> {
    (0..KEY_SPACE).map(|k| store.get(k)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merged_k_streams_match_serial_schedule(
        raw_ops in proptest::collection::vec(any::<u64>(), 4..100),
        k_sel in 0usize..3,
        arrival_seed in any::<u64>(),
    ) {
        let k = [1usize, 2, 4][k_sel];
        let items = build_schedule(&raw_ops);
        prop_assume!(!items.is_empty());

        // Reference: the k = 1 serial schedule, executed in order.
        let serial = fresh_executor();
        let serial_out: Vec<(Digest, Vec<OutItem>)> =
            items.iter().map(|it| serial.execute(it)).collect();

        // k streams: instance j = (seq - 1) % k commits its owned
        // subsequence j+1, j+1+k, … in order, but the instances race —
        // the merged arrival at the execute stage is an adversarial
        // interleaving of the k in-order commit streams, chosen by a
        // seeded xorshift at every step. One instance may run
        // arbitrarily far ahead of another.
        let mut streams: Vec<Vec<&ExecuteItem>> = vec![Vec::new(); k];
        for it in &items {
            streams[(it.seq.0 as usize - 1) % k].push(it);
        }
        let mut cursors = vec![0usize; k];
        let mut arrival: Vec<&ExecuteItem> = Vec::with_capacity(items.len());
        let mut state = arrival_seed | 1;
        while arrival.len() < items.len() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let live: Vec<usize> = (0..k).filter(|&j| cursors[j] < streams[j].len()).collect();
            let j = live[(state % live.len() as u64) as usize];
            arrival.push(streams[j][cursors[j]]);
            cursors[j] += 1;
        }

        // Deposit in arrival order; drain strictly by global sequence —
        // exactly what the replica's worker + execute threads do.
        let queues = ExecutionQueues::new(1024);
        for it in &arrival {
            queues.deposit((*it).clone());
        }
        let merged_exec = fresh_executor();
        let mut merged_out = Vec::with_capacity(items.len());
        for seq in 1..=items.len() as u64 {
            let it = queues.try_take(SeqNum(seq)).expect("deposited every seq");
            merged_out.push(merged_exec.execute(&it));
        }

        // Per-sequence digests and replies bit-identical to serial...
        prop_assert_eq!(serial_out.len(), merged_out.len());
        for (j, (s, m)) in serial_out.iter().zip(&merged_out).enumerate() {
            prop_assert_eq!(&s.0, &m.0, "state digest diverged at seq {} (k={})", j + 1, k);
            prop_assert_eq!(&s.1, &m.1, "replies diverged at seq {} (k={})", j + 1, k);
        }
        // ...and so are the final stores.
        prop_assert_eq!(
            serial.store().state_digest(),
            merged_exec.store().state_digest()
        );
        prop_assert_eq!(
            store_contents(serial.store()),
            store_contents(merged_exec.store())
        );
        prop_assert_eq!(serial.executed_txns(), merged_exec.executed_txns());
    }
}
