//! Property tests for the determinism invariant of parallel execution:
//! for random batches, random worker counts and random window sizes, the
//! conflict-scheduled parallel executor must produce per-sequence
//! `state_digest`s, client replies and final store contents that are
//! bit-identical to single-threaded serial execution.
//!
//! Keys are drawn from a deliberately tiny space so the generated
//! workloads are conflict-dense: most cases exercise multi-wave
//! schedules, read-your-own-writes, write-read anti-dependencies and
//! cross-sequence dependencies, not just the embarrassingly-parallel
//! case.

use proptest::prelude::*;
use rdb_common::block::BlockCertificate;
use rdb_common::{
    Batch, ClientId, Digest, Operation, ProtocolKind, ReplicaId, SeqNum, Transaction, ViewNum,
};
use rdb_pipeline::queues::ExecuteItem;
use rdb_pipeline::scheduler::{ExecPool, ParallelExecutor};
use rdb_pipeline::{Executor, OutItem};
use rdb_storage::blockchain::ChainMode;
use rdb_storage::{Blockchain, MemStore, StateStore};
use std::sync::Arc;

/// Keys live in `[0, KEY_SPACE)`; small enough that random batches
/// conflict constantly.
const KEY_SPACE: u64 = 24;

/// Decodes one raw u64 into an operation over the tiny key space.
fn decode_op(raw: u64) -> Operation {
    let key = raw % KEY_SPACE;
    if (raw >> 5) & 0b11 == 0 {
        // 25% reads.
        Operation::Read { key }
    } else {
        Operation::Write {
            key,
            value: vec![(raw >> 8) as u8, (raw >> 16) as u8, (raw >> 24) as u8],
        }
    }
}

/// Packs the raw op stream into transactions (1-4 ops) and sequences
/// (1-5 txns), assigning deterministic ids.
fn build_items(raw_ops: &[u64]) -> Vec<ExecuteItem> {
    let mut items = Vec::new();
    let mut txns: Vec<Transaction> = Vec::new();
    let mut ops: Vec<Operation> = Vec::new();
    let mut counter = 0u64;
    for (i, &raw) in raw_ops.iter().enumerate() {
        ops.push(decode_op(raw));
        // Break points derived from the raw stream keep the structure
        // random but reproducible from the same inputs.
        if ops.len() > (raw % 4) as usize {
            txns.push(Transaction::new(
                ClientId(raw % 5),
                counter,
                std::mem::take(&mut ops),
            ));
            counter += 1;
        }
        if txns.len() > ((raw >> 3) % 5) as usize || i + 1 == raw_ops.len() {
            if !ops.is_empty() {
                txns.push(Transaction::new(
                    ClientId(raw % 5),
                    counter,
                    std::mem::take(&mut ops),
                ));
                counter += 1;
            }
            if !txns.is_empty() {
                let seq = items.len() as u64 + 1;
                let batch: Batch = std::mem::take(&mut txns).into_iter().collect();
                items.push(ExecuteItem {
                    seq: SeqNum(seq),
                    view: ViewNum(0),
                    digest: Digest([seq as u8; 32]),
                    batch: batch.into(),
                    certificate: BlockCertificate::default(),
                    history: None,
                });
            }
        }
    }
    items
}

fn fresh_executor() -> Arc<Executor> {
    let store: Arc<dyn StateStore> = Arc::new(MemStore::with_table(KEY_SPACE, 8));
    let chain = Arc::new(parking_lot::Mutex::new(Blockchain::new(
        Digest::ZERO,
        0,
        ChainMode::Certificate,
    )));
    Arc::new(Executor::new(
        ReplicaId(1),
        ProtocolKind::Pbft,
        store,
        chain,
    ))
}

fn store_contents(store: &Arc<dyn StateStore>) -> Vec<Option<Vec<u8>>> {
    (0..KEY_SPACE).map(|k| store.get(k)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_execution_is_bit_identical_to_serial(
        raw_ops in proptest::collection::vec(any::<u64>(), 4..120),
        workers in 1usize..5,
        window in 1usize..5,
    ) {
        let items = build_items(&raw_ops);
        prop_assume!(!items.is_empty());

        // Reference: single-threaded serial execution, item by item.
        let serial = fresh_executor();
        let serial_out: Vec<(Digest, Vec<OutItem>)> =
            items.iter().map(|i| serial.execute(i)).collect();

        // Parallel: the same items through a worker pool, in random-width
        // in-order windows.
        let par_exec = fresh_executor();
        let pool = ExecPool::new("prop", workers, Vec::new());
        let par = ParallelExecutor::new(Arc::clone(&par_exec), pool);
        let mut par_out = Vec::with_capacity(items.len());
        for chunk in items.chunks(window) {
            par_out.extend(par.execute_window(chunk));
        }

        // Per-sequence digests and replies are bit-identical...
        prop_assert_eq!(serial_out.len(), par_out.len());
        for (s, p) in serial_out.iter().zip(&par_out) {
            prop_assert_eq!(&s.0, &p.0, "state digest diverged");
            prop_assert_eq!(&s.1, &p.1, "replies diverged");
        }
        // ...and so are the final stores.
        prop_assert_eq!(
            serial.store().state_digest(),
            par_exec.store().state_digest()
        );
        prop_assert_eq!(
            store_contents(serial.store()),
            store_contents(par_exec.store())
        );
        prop_assert_eq!(serial.executed_txns(), par_exec.executed_txns());
        prop_assert_eq!(serial.executed_batches(), par_exec.executed_batches());
    }
}
