//! Signature/MAC coverage invariants for the encode-once message path.
//!
//! The envelope refactor memoizes the canonical bytes that signatures are
//! computed and checked over — these tests pin down that it changed *what
//! bytes are hashed*, never *how often* a node signs or verifies. The
//! per-batch counts below are derived from the protocol by hand; if a
//! refactor accidentally skips (or duplicates) a verification, the exact
//! equality fails.

use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::{
    ClientId, CryptoScheme, Digest, Operation, ProtocolKind, ReplicaId, SeqNum, SignatureBytes,
    SystemConfig, ThreadConfig, Transaction, ViewNum,
};
use rdb_crypto::{KeyRegistry, PeerClass};
use rdb_net::{Network, NetworkConfig};
use rdb_pipeline::{spawn_replica, ReplicaHandle};
use std::time::{Duration, Instant};

const BATCH: usize = 5;

fn test_config(protocol: ProtocolKind) -> SystemConfig {
    let mut cfg = SystemConfig::new(4).unwrap();
    cfg.protocol = protocol;
    cfg.batch_size = BATCH;
    // No checkpoints during the test window: keeps the expected counts
    // a pure function of one consensus round.
    cfg.checkpoint_interval = 1_000_000;
    cfg.num_clients = 4;
    cfg.table_size = 512;
    cfg.threads = ThreadConfig::standard();
    cfg
}

fn spawn_cluster(cfg: &SystemConfig, net: &Network, registry: &KeyRegistry) -> Vec<ReplicaHandle> {
    (0..cfg.n as u32)
        .map(|i| spawn_replica(cfg, ReplicaId(i), &net.handle(), registry))
        .collect()
}

fn send_one_batch(net: &Network, registry: &KeyRegistry) {
    let client = ClientId(0);
    let endpoint = net.register(Sender::Client(client));
    let provider = registry.provider_for_client(client);
    let txns: Vec<Transaction> = (0..BATCH as u64)
        .map(|i| {
            Transaction::new(
                client,
                i,
                vec![Operation::Write {
                    key: i,
                    value: vec![1; 8],
                }],
            )
        })
        .collect();
    let sm = SignedMessage::sign_with(
        Message::ClientRequest { txns },
        Sender::Client(client),
        |bytes| provider.sign(PeerClass::Replica, bytes),
    );
    endpoint
        .send(Sender::Replica(ReplicaId(0)), sm)
        .expect("send to primary");
}

/// Polls until every replica's (signs, verifies) hits `expected`, then
/// holds for a settle window to prove the counts do not overshoot.
fn assert_counts_converge(replicas: &[ReplicaHandle], expected: &[(u64, u64)]) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let got: Vec<(u64, u64)> = replicas
            .iter()
            .map(|r| {
                let s = &r.shared().crypto_stats;
                (s.signs(), s.verifies())
            })
            .collect();
        if got == expected {
            break;
        }
        for (i, (g, e)) in got.iter().zip(expected).enumerate() {
            assert!(
                g.0 <= e.0 && g.1 <= e.1,
                "replica {i} exceeded expected sign/verify counts: {g:?} > {e:?}"
            );
        }
        assert!(
            Instant::now() < deadline,
            "counts never converged: got {got:?}, expected {expected:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Settle: nothing else may sign or verify after quiescence.
    std::thread::sleep(Duration::from_millis(300));
    let after: Vec<(u64, u64)> = replicas
        .iter()
        .map(|r| {
            let s = &r.shared().crypto_stats;
            (s.signs(), s.verifies())
        })
        .collect();
    assert_eq!(after, expected, "counts moved after quiescence");
}

#[test]
fn pbft_per_batch_sign_verify_counts_are_exact() {
    let cfg = test_config(ProtocolKind::Pbft);
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 21);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);
    send_one_batch(&net, &registry);

    let b = BATCH as u64;
    // Primary: signs PrePrepare + Commit + one reply per txn; verifies the
    // client request plus a Prepare and a Commit from each of 3 backups.
    let primary = (2 + b, 1 + 3 + 3);
    // Backup: signs Prepare + Commit + one reply per txn; verifies the
    // PrePrepare, Prepares from the 2 other backups, and Commits from the
    // primary and the 2 other backups.
    let backup = (2 + b, 1 + 2 + 3);
    let expected = vec![primary, backup, backup, backup];
    assert_counts_converge(&replicas, &expected);

    for r in &replicas {
        assert_eq!(r.shared().committed_batches(), 1);
        assert_eq!(r.shared().dropped_bad_sigs(), 0);
    }
    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
}

#[test]
fn zyzzyva_per_batch_sign_verify_counts_are_exact() {
    let cfg = test_config(ProtocolKind::Zyzzyva);
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 22);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);
    send_one_batch(&net, &registry);

    let b = BATCH as u64;
    // Single-phase: the primary signs the PrePrepare plus one speculative
    // response per txn and verifies only the client request; each backup
    // signs its responses and verifies only the PrePrepare.
    let primary = (1 + b, 1);
    let backup = (b, 1);
    let expected = vec![primary, backup, backup, backup];
    assert_counts_converge(&replicas, &expected);

    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
}

#[test]
fn bad_signatures_are_still_dropped() {
    // dropped_bad_sigs behavior is unchanged by the envelope refactor: a
    // tampered/forged message is verified against its canonical bytes and
    // discarded, on both the batch-thread path (client requests) and the
    // worker path (replica messages).
    let cfg = test_config(ProtocolKind::Pbft);
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 23);
    let net = Network::new(NetworkConfig::default());
    let replicas = spawn_cluster(&cfg, &net, &registry);

    // Forged client request: garbage signature.
    let attacker_client = net.register(Sender::Client(ClientId(1)));
    let req = SignedMessage::new(
        Message::ClientRequest {
            txns: vec![Transaction::new(
                ClientId(1),
                0,
                vec![Operation::Write {
                    key: 1,
                    value: vec![9; 4],
                }],
            )],
        },
        Sender::Client(ClientId(1)),
        SignatureBytes(vec![0xde, 0xad]),
    );
    attacker_client
        .send(Sender::Replica(ReplicaId(0)), req)
        .unwrap();

    // Forged replica message: a Prepare "from" a replica id that never
    // held the group key, sent straight to a backup's worker path.
    let attacker_replica = net.register(Sender::Replica(ReplicaId(9)));
    let forged = SignedMessage::new(
        Message::Prepare {
            view: ViewNum(0),
            seq: SeqNum(1),
            digest: Digest([7; 32]),
        },
        Sender::Replica(ReplicaId(9)),
        SignatureBytes(vec![0xbe; 16]),
    );
    attacker_replica
        .send(Sender::Replica(ReplicaId(1)), forged)
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline
        && (replicas[0].shared().dropped_bad_sigs() < 1
            || replicas[1].shared().dropped_bad_sigs() < 1)
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(
        replicas[0].shared().dropped_bad_sigs(),
        1,
        "primary must drop the forged client request"
    );
    assert_eq!(
        replicas[1].shared().dropped_bad_sigs(),
        1,
        "backup must drop the forged prepare"
    );
    // Nothing committed anywhere.
    for r in &replicas {
        assert_eq!(r.shared().committed_batches(), 0);
    }
    for r in replicas {
        r.shutdown();
    }
    net.shutdown();
}
