//! The threaded replica runtime (Figures 6a/6b).
//!
//! [`spawn_replica`] starts the paper's pipeline for one replica:
//!
//! ```text
//! network ─▶ input threads ──▶ client-request queue ─▶ batch threads ─┐
//!                    │                                                │ Propose
//!                    ├─ replica msgs ──────────────────▶ worker ◀─────┘
//!                    └─ checkpoints ──▶ checkpoint thread ─▶ worker
//!  worker ─▶ execution queues (QC slots) ─▶ execute thread ─▶ output threads ─▶ network
//! ```
//!
//! Thread counts come from [`ThreadConfig`]; setting `batch_threads = 0`
//! or `execute_threads = 0` folds that stage into the worker thread,
//! reproducing the paper's `0B`/`0E` degraded configurations (Figure 8).
//! `execute_threads = 1` is the paper's serial execute-thread;
//! `execute_threads = N ≥ 2` runs a coordinator plus `N` conflict-scheduled
//! execute workers ([`crate::scheduler`]) whose committed results are
//! bit-identical to serial execution.

use crate::durable;
use crate::executor::{Executor, OutItem};
use crate::metrics::{MetricsRegistry, Stage, StageRecorder};
use crate::queues::{ClientRequestQueue, ExecuteItem, ExecutionQueues};
use crate::recovery;
use crate::scheduler::{ExecPool, ParallelExecutor};
use crossbeam::channel::{self, Receiver, Sender as ChanSender};
use parking_lot::Mutex;
use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::{
    Batch, Digest, ProtocolKind, ReplicaId, SeqNum, SignatureBytes, Snapshot, StorageMode,
    SystemConfig, Transaction, ViewNum,
};
use rdb_consensus::{Action, ConsensusConfig, MultiEngine};
use rdb_crypto::{digest, CryptoProvider, CryptoStats, KeyRegistry, PeerClass};
use rdb_net::{EndpointSender, NetHandle, NetworkStats};
use rdb_storage::blockchain::ChainMode;
use rdb_storage::pagedb::{PagedStore, PagedStoreConfig};
use rdb_storage::{Blockchain, MemStore, StateStore};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// Flush and poll latencies are configuration now: see
// `ThreadConfig::batch_flush_after_us` / `poll_interval_us` (defaults
// preserve the constants that used to live here).

/// Work items flowing into the worker thread.
#[derive(Debug)]
enum Work {
    /// Message already verified by another stage (input threads batch-verify
    /// replica traffic; the checkpoint thread verifies checkpoints).
    Verified(SignedMessage),
    /// Client request routed to the worker because `batch_threads == 0`.
    ClientRequest(SignedMessage),
    /// A digested batch ready to propose on `instance` (from a batch-thread).
    Propose {
        instance: usize,
        batch: Batch,
        digest: Digest,
    },
    /// Execution finished for `seq` (from the execute-thread). `epoch`
    /// identifies the execution timeline the result belongs to; after a
    /// rollback or snapshot install the worker bumps the queue epoch, and
    /// notifications from the displaced timeline are dropped.
    Executed {
        seq: SeqNum,
        state_digest: Digest,
        epoch: u64,
    },
    /// A backup received client traffic for `instance`: unmet demand the
    /// suspicion timer combines with lack of progress to detect a dead or
    /// partitioned primary (clients rebroadcast requests to every replica
    /// when their own timers expire).
    ClientDemand(usize),
}

/// State shared between the replica's threads and exposed to callers.
pub struct ReplicaShared {
    /// This replica's id.
    pub id: ReplicaId,
    /// The key-value state.
    pub store: Arc<dyn StateStore>,
    /// The ledger.
    pub chain: Arc<Mutex<Blockchain>>,
    /// Per-thread saturation metrics.
    pub metrics: MetricsRegistry,
    /// Per-instance lock-free client request queues (`queues[j]` fills only
    /// while this replica leads instance `j`; all empty on pure backups).
    pub client_queues: Vec<Arc<ClientRequestQueue>>,
    /// The execution engine (owns executed-transaction counters).
    pub executor: Arc<Executor>,
    /// Sign/verify call counters shared by every stage thread's provider.
    pub crypto_stats: CryptoStats,
    committed_batches: AtomicU64,
    committed_per_instance: Vec<AtomicU64>,
    dropped_bad_sigs: AtomicU64,
    /// Per-instance installed views, updated by the worker on `EnterView` —
    /// the input threads route client traffic for instance `j` by
    /// `(view_j + j) % n` through this.
    instance_views: Arc<Vec<AtomicU64>>,
    /// What restart-from-disk rebuilt (`None` when the replica runs
    /// memory-only, i.e. no `data_dir` configured).
    recovery: Option<durable::RecoveryReport>,
}

impl ReplicaShared {
    /// Batches committed by consensus so far (all instances).
    pub fn committed_batches(&self) -> u64 {
        self.committed_batches.load(Ordering::Relaxed)
    }

    /// Batches committed by consensus instance `j` so far.
    pub fn committed_batches_for(&self, j: usize) -> u64 {
        self.committed_per_instance[j].load(Ordering::Relaxed)
    }

    /// Messages dropped due to failed signature verification.
    pub fn dropped_bad_sigs(&self) -> u64 {
        self.dropped_bad_sigs.load(Ordering::Relaxed)
    }

    /// The view this replica currently has installed (instance 0's view —
    /// the classic single-primary notion when `consensus_instances == 1`).
    pub fn current_view(&self) -> u64 {
        self.instance_views[0].load(Ordering::Relaxed)
    }

    /// The view instance `j` currently has installed.
    pub fn instance_view(&self, j: usize) -> u64 {
        self.instance_views[j].load(Ordering::Relaxed)
    }

    /// Number of parallel consensus instances this replica runs.
    pub fn consensus_instances(&self) -> usize {
        self.instance_views.len()
    }

    /// What restart-from-disk recovery rebuilt at spawn time (`None` when
    /// the replica runs memory-only).
    pub fn recovery_report(&self) -> Option<durable::RecoveryReport> {
        self.recovery
    }
}

impl std::fmt::Debug for ReplicaShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaShared")
            .field("id", &self.id)
            .field("committed_batches", &self.committed_batches())
            .finish()
    }
}

/// A running replica: join handle bundle plus its shared state.
pub struct ReplicaHandle {
    shared: Arc<ReplicaShared>,
    threads: Vec<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for ReplicaHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaHandle")
            .field("id", &self.shared.id)
            .field("threads", &self.threads.len())
            .finish()
    }
}

impl ReplicaHandle {
    /// The replica's shared state (store, chain, metrics, counters).
    pub fn shared(&self) -> &Arc<ReplicaShared> {
        &self.shared
    }

    /// Number of OS threads this replica runs.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Stops all stage threads and joins them.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Spawns the full pipeline for replica `id` on `net`.
///
/// When `config.durability.data_dir` is set, the replica first rebuilds
/// itself from its per-replica directory (newest verified snapshot plus
/// the WAL suffix — see [`durable::recover_replica`]) and resumes
/// consensus past the recovered head; the outcome is published via
/// [`ReplicaShared::recovery_report`].
///
/// # Panics
/// Panics if the configuration is invalid (`config.validate()` fails), a
/// paged store cannot be created, or the replica data directory exists
/// but cannot be opened for recovery.
pub fn spawn_replica(
    config: &SystemConfig,
    id: ReplicaId,
    net: &NetHandle,
    registry: &KeyRegistry,
) -> ReplicaHandle {
    config.validate().expect("invalid system configuration");
    let provider = registry.provider_for_replica(id);
    let endpoint = net.register(Sender::Replica(id));
    let me = Sender::Replica(id);
    let poll = config.threads.poll_interval();
    let flush_after = config.threads.batch_flush_after();

    // --- storage ----------------------------------------------------------
    // With durability configured, everything this replica persists lives
    // under its own subdirectory of the shared data root.
    let data_dir: Option<std::path::PathBuf> = config.durability.data_dir.as_ref().map(|root| {
        let dir = std::path::Path::new(root).join(format!("replica-{}", id.0));
        std::fs::create_dir_all(&dir).expect("create replica data directory");
        dir
    });
    let store: Arc<dyn StateStore> = match config.storage {
        StorageMode::InMemory => Arc::new(MemStore::with_table(config.table_size, 8)),
        StorageMode::Paged => {
            // The paged file is a cache of state the WAL + snapshots can
            // rebuild, so (re)creating it fresh per boot is always safe.
            let path = data_dir
                .as_ref()
                .map(|d| d.join("paged.db"))
                .unwrap_or_else(|| {
                    std::env::temp_dir().join(format!(
                        "rdb-paged-{}-r{}-{:x}",
                        std::process::id(),
                        id.0,
                        std::time::SystemTime::now()
                            .duration_since(std::time::UNIX_EPOCH)
                            .map(|d| d.as_nanos() as u64)
                            .unwrap_or(0)
                    ))
                });
            let paged = PagedStore::create(
                &path,
                PagedStoreConfig {
                    record_size: 64,
                    capacity: config.table_size,
                    cache_pages: 64,
                    fsync_on_write: false,
                },
            )
            .expect("create paged store");
            Arc::new(paged)
        }
    };
    let chain_mode = match config.protocol {
        ProtocolKind::Pbft => ChainMode::Certificate,
        // Zyzzyva's speculative history is itself a hash chain.
        ProtocolKind::Zyzzyva => ChainMode::PrevHash,
    };
    let chain_quorum = match config.protocol {
        ProtocolKind::Pbft => rdb_common::quorum::commit_quorum(config.f),
        ProtocolKind::Zyzzyva => 0,
    };
    let chain = Arc::new(Mutex::new(Blockchain::new(
        digest(&id.0.to_le_bytes()),
        chain_quorum,
        chain_mode,
    )));
    let executor = Arc::new(Executor::new(
        id,
        config.protocol,
        Arc::clone(&store),
        Arc::clone(&chain),
    ));

    // --- queues and channels ----------------------------------------------
    let (work_tx, work_rx) = channel::unbounded::<Work>();
    let (ckpt_tx, ckpt_rx) = channel::unbounded::<SignedMessage>();
    let out_channels: Vec<(ChanSender<OutItem>, Receiver<OutItem>)> =
        (0..config.threads.output_threads)
            .map(|_| channel::unbounded())
            .collect();
    let k = config.consensus_instances.max(1);
    let client_queues: Vec<Arc<ClientRequestQueue>> = (0..k)
        .map(|_| Arc::new(ClientRequestQueue::new()))
        .collect();
    let qc = (config.execution_queue_count() as usize).clamp(1024, 1 << 16);
    let exec_queues = Arc::new(ExecutionQueues::new(qc));

    let metrics = MetricsRegistry::new();
    metrics.start_window();
    let shutdown = Arc::new(AtomicBool::new(false));
    let instance_views: Arc<Vec<AtomicU64>> = Arc::new((0..k).map(|_| AtomicU64::new(0)).collect());

    // Each instance checkpoints every Δ of its *own* executed batches;
    // scaling Δ by 1/k keeps the global prune cadence (in global sequence
    // numbers) independent of k.
    let ckpt_delta = (config.checkpoint_interval / config.batch_size as u64 / k as u64).max(1);
    // Serving snapshots are captured on the same cadence as checkpoints
    // (Δ per-instance batches × k instances in global sequence numbers),
    // so every replica snapshots identical state at identical sequences —
    // the f+1 cross-peer agreement a state-transferring receiver demands.
    executor.set_snapshot_interval(ckpt_delta * k as u64);
    let consensus_cfg = ConsensusConfig::new(config.n, ckpt_delta)
        // Only the deployment's *initial* primary is byzantine; whoever wins
        // the ensuing view change behaves honestly.
        .with_equivocation(
            config.byzantine_primary && id == rdb_common::ViewNum(0).primary(config.n),
        );
    let mut engine = MultiEngine::new(config.protocol, id, consensus_cfg, k);

    // --- durable recovery ---------------------------------------------------
    // Rebuild from the local WAL + snapshots before any stage thread runs:
    // replay re-executes through the ordinary executor (the snapshot
    // interval is already set, so serving snapshots recapture too), then
    // the consensus engines and execution cursor fast-forward past the
    // recovered head. Anything the disk could not prove is left to the
    // network state-transfer path.
    let recovery = data_dir.as_ref().map(|dir| {
        let (_, report) = durable::recover_replica(&executor, dir, &config.durability)
            .expect("replica data directory unusable");
        if report.head.0 > 0 {
            engine.install_snapshot(report.head, report.history);
            exec_queues.repoint(report.head.next());
        }
        report
    });

    let shared = Arc::new(ReplicaShared {
        id,
        store,
        chain: Arc::clone(&chain),
        metrics: metrics.clone(),
        client_queues: client_queues.clone(),
        executor: Arc::clone(&executor),
        crypto_stats: provider.stats().clone(),
        committed_batches: AtomicU64::new(0),
        committed_per_instance: (0..k).map(|_| AtomicU64::new(0)).collect(),
        dropped_bad_sigs: AtomicU64::new(0),
        instance_views: Arc::clone(&instance_views),
        recovery,
    });
    let n = config.n as u64;
    let replicas: Vec<Sender> = (0..config.n as u32)
        .map(|r| Sender::Replica(ReplicaId(r)))
        .collect();

    let mut threads = Vec::new();
    let spawn = |name: String, f: Box<dyn FnOnce() + Send>| -> JoinHandle<()> {
        std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .expect("spawn stage thread")
    };

    // --- input threads ------------------------------------------------------
    // Every replica runs the full input complement: a backup can become the
    // primary at any view change, so the client-facing threads must already
    // be listening.
    let input_total = config.threads.client_input_threads + config.threads.replica_input_threads;
    let verify_window = config.threads.verify_window.max(1);
    for i in 0..input_total {
        let rx = endpoint.receiver();
        let work_tx = work_tx.clone();
        let ckpt_tx = ckpt_tx.clone();
        let cqs = client_queues.clone();
        let stop = Arc::clone(&shutdown);
        let rec = metrics.recorder(Stage::Input, i);
        let has_batch_threads = config.threads.batch_threads > 0;
        let has_ckpt_thread = config.threads.checkpoint_threads > 0;
        let provider = provider.clone();
        let shared2 = Arc::clone(&shared);
        let views = Arc::clone(&instance_views);
        threads.push(spawn(
            format!("r{}-input-{i}", id.0),
            Box::new(move || {
                // Replica traffic awaiting signature verification. The
                // batch-verify stage: drain whatever is already queued (up
                // to `verify_window`) and check the whole window as one
                // crypto batch — under load the shared multi-scalar
                // multiplication amortizes across the window, while an
                // idle replica still verifies each message immediately
                // (a window of one).
                let mut window: Vec<SignedMessage> = Vec::with_capacity(verify_window);
                // Routes one received message: client requests go to the
                // batching stage and checkpoints to the checkpoint thread
                // (each verifies its own traffic); everything else joins
                // this thread's verify window.
                let route = |sm: SignedMessage, window: &mut Vec<SignedMessage>| match sm.msg() {
                    Message::ClientRequest { .. } => {
                        // Clients shard across instances by id; instance
                        // `j` at view `v` is led by replica `(v + j) % n`.
                        // Primaryship is dynamic: re-check the installed
                        // view on every request.
                        let j = match sm.sender() {
                            Sender::Client(c) => (c.0 % cqs.len() as u64) as usize,
                            _ => 0,
                        };
                        let led_by = (views[j].load(Ordering::Relaxed) + j as u64) % n;
                        if led_by == id.0 as u64 {
                            if has_batch_threads {
                                cqs[j].push(sm);
                            } else {
                                let _ = work_tx.send(Work::ClientRequest(sm));
                            }
                        } else {
                            // Backups drop the payload (clients address the
                            // primary directly; rebroadcasts reach it too)
                            // but surface the demand to the suspicion timer.
                            let _ = work_tx.send(Work::ClientDemand(j));
                        }
                    }
                    Message::Checkpoint { .. } if has_ckpt_thread => {
                        let _ = ckpt_tx.send(sm);
                    }
                    _ => window.push(sm),
                };
                while !stop.load(Ordering::Relaxed) {
                    let Ok(first) = rx.recv_timeout(poll) else {
                        continue;
                    };
                    rec.record(|| {
                        route(first, &mut window);
                        while window.len() < verify_window {
                            match rx.try_recv() {
                                Ok(sm) => route(sm, &mut window),
                                Err(_) => break,
                            }
                        }
                        if window.is_empty() {
                            return;
                        }
                        let items: Vec<(Sender, &[u8], &SignatureBytes)> = window
                            .iter()
                            .map(|sm| (sm.sender(), sm.signing_bytes(), sm.sig()))
                            .collect();
                        let verdicts = provider.verify_batch(&items);
                        for (sm, ok) in window.drain(..).zip(verdicts) {
                            if ok {
                                let _ = work_tx.send(Work::Verified(sm));
                            } else {
                                shared2.dropped_bad_sigs.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            }),
        ));
    }

    // --- batch threads -------------------------------------------------------
    // Spawned on every replica: a queue only fills while this replica
    // leads its instance (input routing is view-aware), and `propose` on a
    // backup engine is a no-op, so idle batch threads cost a parked
    // future. With k > 1 instances the count is raised to at least k so
    // every instance has a dedicated batching path; thread `b` serves
    // instance `b % k`.
    let batch_thread_count = if config.threads.batch_threads > 0 {
        config.threads.batch_threads.max(k)
    } else {
        0
    };
    for b in 0..batch_thread_count {
        let instance = b % k;
        let cq = Arc::clone(&client_queues[instance]);
        let work_tx = work_tx.clone();
        let stop = Arc::clone(&shutdown);
        let rec = metrics.recorder(Stage::Batch, b);
        let provider = provider.clone();
        let batch_size = config.batch_size;
        let dropped = Arc::clone(&shared);
        threads.push(spawn(
            format!("r{}-batch-{b}", id.0),
            Box::new(move || {
                batch_loop(
                    instance,
                    &cq,
                    &work_tx,
                    &stop,
                    &rec,
                    &provider,
                    batch_size,
                    verify_window,
                    flush_after,
                    &dropped,
                );
            }),
        ));
    }

    // --- checkpoint thread ---------------------------------------------------
    for c in 0..config.threads.checkpoint_threads {
        let rx = ckpt_rx.clone();
        let work_tx = work_tx.clone();
        let stop = Arc::clone(&shutdown);
        let rec = metrics.recorder(Stage::Checkpoint, c);
        let provider = provider.clone();
        let shared2 = Arc::clone(&shared);
        threads.push(spawn(
            format!("r{}-ckpt-{c}", id.0),
            Box::new(move || {
                while !stop.load(Ordering::Relaxed) {
                    let Ok(sm) = rx.recv_timeout(poll) else {
                        continue;
                    };
                    rec.record(|| {
                        // Memoized canonical bytes: the sender's clone
                        // already serialized them, so this is a lookup.
                        if provider.verify(sm.sender(), sm.signing_bytes(), sm.sig()) {
                            let _ = work_tx.send(Work::Verified(sm));
                        } else {
                            shared2.dropped_bad_sigs.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            }),
        ));
    }

    // --- worker thread(s) ----------------------------------------------------
    // The paper dedicates exactly one worker to the protocol state machine
    // (Section 4.3); additional workers would contend on consensus state.
    {
        let rx = work_rx;
        let stop = Arc::clone(&shutdown);
        let rec = metrics.recorder(Stage::Worker, 0);
        let provider = provider.clone();
        let out_txs: Vec<ChanSender<OutItem>> =
            out_channels.iter().map(|(tx, _)| tx.clone()).collect();
        let exec_queues2 = Arc::clone(&exec_queues);
        let executor2 = Arc::clone(&executor);
        let shared2 = Arc::clone(&shared);
        let chain2 = Arc::clone(&chain);
        let cfg = config.clone();
        let views = Arc::clone(&instance_views);
        let net_stats = net.stats().clone();
        let recovered = shared.recovery;
        threads.push(spawn(
            format!("r{}-worker", id.0),
            Box::new(move || {
                let view_timeout = Duration::from_millis(cfg.view_timeout_ms);
                let mut ctx = WorkerCtx {
                    engine,
                    provider,
                    out_txs,
                    out_rr: 0,
                    exec_queues: exec_queues2,
                    executor: executor2,
                    shared: shared2,
                    chain: chain2,
                    replicas,
                    me,
                    execute_inline: cfg.threads.execute_threads == 0,
                    batch_size: cfg.batch_size,
                    flush_after,
                    pending_txns: (0..k).map(|_| Vec::new()).collect(),
                    last_flush: Instant::now(),
                    inline_exec_buf: BTreeMap::new(),
                    // A replica that rebuilt itself from disk resumes its
                    // cursors past the recovered head; everything below it
                    // is already executed (and its prefix pruned).
                    inline_next_exec: recovered.map_or(SeqNum(1), |r| r.head.next()),
                    stable_checkpoint: recovered.map_or(SeqNum(0), |r| r.stable),
                    pruned_to: recovered.map_or(SeqNum(0), |r| r.snapshot_seq),
                    instance_views: views,
                    view_timeout,
                    last_progress: vec![Instant::now(); k],
                    suspect_strikes: vec![0; k],
                    client_demand: vec![false; k],
                    commit_frontier: recovered.map_or(SeqNum(0), |r| r.head),
                    last_executed: recovered.map_or(SeqNum(0), |r| r.head),
                    f: cfg.f,
                    protocol: cfg.protocol,
                    net_stats,
                    fetch_inflight: HashMap::new(),
                    fetch_votes: HashMap::new(),
                    snap_votes: HashMap::new(),
                    fetch_rr: id.0 as usize,
                    last_fetch_poll: Instant::now(),
                    probe_mark: (SeqNum(0), Instant::now()),
                    // Retries must fit several rounds inside a view timeout
                    // so a straggler repairs itself before suspecting anyone.
                    fetch_backoff: (view_timeout / 4)
                        .clamp(Duration::from_millis(40), Duration::from_millis(250)),
                };
                while !stop.load(Ordering::Relaxed) {
                    match rx.recv_timeout(poll) {
                        Ok(work) => rec.record(|| ctx.handle(work)),
                        Err(_) => {
                            // Idle: flush partial worker-side batches (0B).
                            if ctx.pending_txns.iter().any(|p| !p.is_empty())
                                && ctx.last_flush.elapsed() > ctx.flush_after
                            {
                                rec.record(|| ctx.flush_pending());
                            }
                        }
                    }
                    ctx.maybe_suspect();
                    ctx.maybe_fetch();
                }
            }),
        ));
    }

    // --- execute stage ---------------------------------------------------------
    // 1E: the paper's serial execute-thread draining the QC slots in order.
    if config.threads.execute_threads == 1 {
        let stop = Arc::clone(&shutdown);
        let rec = metrics.recorder(Stage::Execute, 0);
        let exec_queues2 = Arc::clone(&exec_queues);
        let executor2 = Arc::clone(&executor);
        let work_tx2 = work_tx.clone();
        let out_txs: Vec<ChanSender<OutItem>> =
            out_channels.iter().map(|(tx, _)| tx.clone()).collect();
        threads.push(spawn(
            format!("r{}-execute-0", id.0),
            Box::new(move || {
                let mut rr = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    // The cursor is shared with the worker: a rollback or
                    // snapshot install repoints it under the gate.
                    let next = exec_queues2.cursor();
                    let Some(item) = exec_queues2.take(next, poll) else {
                        continue;
                    };
                    let gate = exec_queues2.gate();
                    if exec_queues2.cursor() != next {
                        // The worker repointed execution while this item was
                        // being taken: it belongs to a displaced timeline.
                        continue;
                    }
                    let epoch = exec_queues2.epoch();
                    rec.record(|| {
                        let (state_digest, replies) = executor2.execute(&item);
                        for out in replies {
                            let shard = rr % out_txs.len();
                            rr += 1;
                            let _ = out_txs[shard].send(out);
                        }
                        let _ = work_tx2.send(Work::Executed {
                            seq: item.seq,
                            state_digest,
                            epoch,
                        });
                    });
                    exec_queues2.set_cursor(next.next());
                    drop(gate);
                }
            }),
        ));
    }

    // NE (N ≥ 2): deterministic parallel execution. A coordinator thread
    // collects the in-order window of committed sequences, schedules the
    // conflict waves across a pool of N execute workers, and commits in
    // sequence order — `on_executed(seq, state_digest)` fires exactly as
    // the serial path would, with identical digests.
    if config.threads.execute_threads >= 2 {
        let stop = Arc::clone(&shutdown);
        let rec = metrics.recorder(Stage::ExecuteCoord, 0);
        let exec_queues2 = Arc::clone(&exec_queues);
        let executor2 = Arc::clone(&executor);
        let work_tx2 = work_tx.clone();
        let out_txs: Vec<ChanSender<OutItem>> =
            out_channels.iter().map(|(tx, _)| tx.clone()).collect();
        let pool_recorders: Vec<StageRecorder> = (0..config.threads.execute_threads)
            .map(|w| metrics.recorder(Stage::Execute, w))
            .collect();
        let pool_name = format!("r{}", id.0);
        let workers = config.threads.execute_threads;
        let window_cap = config.threads.execute_window.max(1);
        threads.push(spawn(
            format!("r{}-execute-coord", id.0),
            Box::new(move || {
                // The pool lives on the coordinator thread: dropping it at
                // shutdown closes the task channel and joins the workers.
                let pool = ExecPool::new(&pool_name, workers, pool_recorders);
                let parallel = ParallelExecutor::new(executor2, pool);
                let mut rr = 0usize;
                let mut window = Vec::with_capacity(window_cap);
                while !stop.load(Ordering::Relaxed) {
                    let next = exec_queues2.cursor();
                    let Some(first) = exec_queues2.take(next, poll) else {
                        continue;
                    };
                    let gate = exec_queues2.gate();
                    if exec_queues2.cursor() != next {
                        continue; // repointed mid-take: stale item
                    }
                    let epoch = exec_queues2.epoch();
                    window.clear();
                    window.push(first);
                    // Widen the window with whatever committed sequences
                    // are already queued, without blocking.
                    while window.len() < window_cap {
                        let seq = SeqNum(next.0 + window.len() as u64);
                        match exec_queues2.try_take(seq) {
                            Some(item) => window.push(item),
                            None => break,
                        }
                    }
                    rec.record(|| {
                        for (item, (state_digest, replies)) in
                            window.iter().zip(parallel.execute_window(&window))
                        {
                            for out in replies {
                                let shard = rr % out_txs.len();
                                rr += 1;
                                let _ = out_txs[shard].send(out);
                            }
                            let _ = work_tx2.send(Work::Executed {
                                seq: item.seq,
                                state_digest,
                                epoch,
                            });
                        }
                    });
                    exec_queues2.set_cursor(SeqNum(next.0 + window.len() as u64));
                    drop(gate);
                }
            }),
        ));
    }

    // --- output threads ----------------------------------------------------------
    for (o, (_, out_rx)) in out_channels.iter().enumerate() {
        let rx = out_rx.clone();
        let stop = Arc::clone(&shutdown);
        let rec = metrics.recorder(Stage::Output, o);
        let provider = provider.clone();
        let sender: EndpointSender = endpoint.sender();
        threads.push(spawn(
            format!("r{}-output-{o}", id.0),
            Box::new(move || {
                while !stop.load(Ordering::Relaxed) {
                    let Ok(item) = rx.recv_timeout(poll) else {
                        continue;
                    };
                    rec.record(|| {
                        let class = match item.targets.first() {
                            Some(Sender::Replica(_)) => PeerClass::Replica,
                            Some(Sender::Client(_)) => PeerClass::Client,
                            None => return,
                        };
                        // Encode once, sign once; each destination gets a
                        // reference-count bump of the same envelope, not a
                        // fresh copy + re-serialization.
                        let sm = SignedMessage::sign_with(item.msg, me, |bytes| {
                            provider.sign(class, bytes)
                        });
                        for &dest in &item.targets {
                            if dest == me {
                                continue;
                            }
                            // Client replies ride the reliable surface so a
                            // swarm of slow readers backpressures the output
                            // stage instead of shedding replies; replica
                            // gossip stays on the droppable mesh path.
                            let _ = match dest {
                                Sender::Client(_) => sender.send_direct(dest, sm.clone()),
                                Sender::Replica(_) => sender.send(dest, sm.clone()),
                            };
                        }
                    });
                }
            }),
        ));
    }

    // Hold the endpoint alive inside a drain thread? No: the receiver clones
    // keep the channel alive; drop the endpoint handle but keep the network
    // registration (mailbox sender lives in the switchboard).
    drop(endpoint);

    ReplicaHandle {
        shared,
        threads,
        shutdown,
    }
}

/// The batch-thread body (Section 4.3): verify client signatures, assemble
/// batches, digest them once, hand them to the worker for proposing.
///
/// Client signature checking is the dominant crypto cost at the primary
/// (the paper's Section 6 observation), so requests are not verified one
/// at a time: each iteration drains up to `verify_window` queued requests
/// and checks their Ed25519 signatures as *one* batch-verification
/// equation. Per-request accept/drop semantics are exactly those of
/// per-item verification — a bad signature in the window is bisected out
/// and dropped while the rest proceed.
#[allow(clippy::too_many_arguments)]
fn batch_loop(
    instance: usize,
    cq: &ClientRequestQueue,
    work_tx: &ChanSender<Work>,
    stop: &AtomicBool,
    rec: &StageRecorder,
    provider: &CryptoProvider,
    batch_size: usize,
    verify_window: usize,
    flush_after: Duration,
    shared: &ReplicaShared,
) {
    let verify_window = verify_window.max(1);
    let mut pending: Vec<Transaction> = Vec::with_capacity(batch_size * 2);
    let mut window: Vec<SignedMessage> = Vec::with_capacity(verify_window);
    let mut last_flush = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        match cq.pop() {
            Some(sm) => rec.record(|| {
                window.clear();
                window.push(sm);
                while window.len() < verify_window {
                    match cq.pop() {
                        Some(m) => window.push(m),
                        None => break,
                    }
                }
                let items: Vec<(Sender, &[u8], &SignatureBytes)> = window
                    .iter()
                    .map(|m| (m.sender(), m.signing_bytes(), m.sig()))
                    .collect();
                let verdicts = provider.verify_batch(&items);
                for (m, ok) in window.drain(..).zip(verdicts) {
                    if !ok {
                        shared.dropped_bad_sigs.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // `into_message` is move-out, not copy: the client's
                    // send handed over the only reference to the request
                    // body.
                    if let Message::ClientRequest { txns } = m.into_message() {
                        pending.extend(txns);
                    }
                }
                while pending.len() >= batch_size {
                    let rest = pending.split_off(batch_size);
                    let batch = Batch::new(std::mem::replace(&mut pending, rest));
                    let d = digest(&batch.canonical_bytes());
                    let _ = work_tx.send(Work::Propose {
                        instance,
                        batch,
                        digest: d,
                    });
                    last_flush = Instant::now();
                }
            }),
            None => {
                if !pending.is_empty() && last_flush.elapsed() > flush_after {
                    rec.record(|| {
                        let batch = Batch::new(std::mem::take(&mut pending));
                        let d = digest(&batch.canonical_bytes());
                        let _ = work_tx.send(Work::Propose {
                            instance,
                            batch,
                            digest: d,
                        });
                    });
                    last_flush = Instant::now();
                } else {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
    }
}

/// Worker-thread state: the consensus engine plus everything needed to
/// interpret its actions.
struct WorkerCtx {
    engine: MultiEngine,
    provider: CryptoProvider,
    out_txs: Vec<ChanSender<OutItem>>,
    out_rr: usize,
    exec_queues: Arc<ExecutionQueues>,
    executor: Arc<Executor>,
    shared: Arc<ReplicaShared>,
    chain: Arc<Mutex<Blockchain>>,
    replicas: Vec<Sender>,
    me: Sender,
    execute_inline: bool,
    batch_size: usize,
    flush_after: Duration,
    /// 0B mode: per-instance worker-side batch assembly.
    pending_txns: Vec<Vec<Transaction>>,
    last_flush: Instant,
    /// 0E mode: commit actions may arrive out of order; buffer them so the
    /// inline execution stays sequential.
    inline_exec_buf: BTreeMap<SeqNum, ExecuteItem>,
    inline_next_exec: SeqNum,
    /// Highest stable checkpoint seen; chain pruning up to here is
    /// retried as execution catches up (it is clamped at the head).
    stable_checkpoint: SeqNum,
    /// How far the chain has actually been pruned (tracks the clamp).
    pruned_to: SeqNum,
    /// Shared with the input threads so client routing tracks each
    /// instance's view.
    instance_views: Arc<Vec<AtomicU64>>,
    /// Suspicion timers, one per instance: no progress on instance `j` for
    /// this long while its work is stalled (or its client demand is
    /// pending) votes out *that instance's* primary — the other k−1
    /// instances keep their timers and their progress.
    view_timeout: Duration,
    last_progress: Vec<Instant>,
    /// Consecutive suspicion fires per instance without real progress in
    /// between. The effective timeout doubles with each strike
    /// (Castro-Liskov §4.5.2's exponential backoff), so a replica that
    /// cannot be helped by a view change — e.g. a straggler with an
    /// execution hole and no state transfer — stops dragging the healthy
    /// quorum into view-change storms. Reset whenever the instance's
    /// execution advances or it installs a view.
    suspect_strikes: Vec<u32>,
    client_demand: Vec<bool>,
    /// Highest globally committed sequence seen (any instance). Execution
    /// drains strictly in global order, so a committed sequence above an
    /// instance we lead obliges us to fill our slots below it (no-op
    /// batches) — otherwise one idle instance stalls the whole schedule.
    commit_frontier: SeqNum,
    /// Highest sequence executed locally. When `commit_frontier` sits
    /// above it, the instance owning `last_executed + 1` is holding up
    /// the global schedule — suspicion treats that as stalled work even
    /// if the instance itself ordered nothing (its primary may be dead
    /// with no client traffic to surface demand).
    last_executed: SeqNum,
    /// Fault tolerance threshold (certificate quorums, f+1 vouching).
    f: usize,
    protocol: ProtocolKind,
    /// Fetch served/dropped accounting lives on the shared network stats.
    net_stats: NetworkStats,
    /// Sequences with an outstanding `FetchRequest` and the deadline after
    /// which they may be re-requested (from a rotated peer).
    fetch_inflight: HashMap<SeqNum, Instant>,
    /// Zyzzyva fallback: distinct peers that returned an identical
    /// `FetchResponse` for `(seq, digest)` — f+1 of them stand in for an
    /// offline-verifiable certificate.
    fetch_votes: HashMap<(SeqNum, ViewNum, Digest), HashSet<ReplicaId>>,
    /// Distinct peers that presented each snapshot `agreement_key`, plus
    /// the (payload-verified) snapshot itself.
    #[allow(clippy::type_complexity)]
    snap_votes: HashMap<(SeqNum, Digest, Digest), (HashSet<ReplicaId>, Arc<Snapshot>)>,
    /// Rotating peer index so retries spread across the cluster.
    fetch_rr: usize,
    last_fetch_poll: Instant,
    /// Last-executed watermark and when it last moved — the quiescence
    /// detector behind the catch-up probe.
    probe_mark: (SeqNum, Instant),
    fetch_backoff: Duration,
}

/// Sequences per `FetchRequest` (and per catch-up probe window).
const FETCH_BATCH: usize = 32;
/// Cap on outstanding fetch requests awaiting responses.
const MAX_INFLIGHT: usize = 64;

impl WorkerCtx {
    /// Which instance owns global sequence `seq`.
    fn owner(&self, seq: SeqNum) -> usize {
        if seq.0 == 0 {
            0
        } else {
            ((seq.0 - 1) % self.engine.k() as u64) as usize
        }
    }

    /// The suspicion timers (Section 4.2 of PBFT, simplified), one per
    /// instance: stalled consensus work or unmet client demand with no
    /// progress for a full view timeout means that instance's primary is
    /// dead or cut off — vote it out. Re-arming the timer after each vote
    /// gives the view change its own (doubled) timeout before the vote
    /// escalates further.
    fn maybe_suspect(&mut self) {
        const MAX_BACKOFF_SHIFT: u32 = 5; // cap at 32x the base timeout
        for j in 0..self.engine.k() {
            let shift = self.suspect_strikes[j].min(MAX_BACKOFF_SHIFT);
            if self.last_progress[j].elapsed() < self.view_timeout * (1u32 << shift) {
                continue;
            }
            // An instance with a dead primary and *no* client traffic
            // still stalls the merged schedule once another instance
            // commits past its slot: that hold-up is this instance's
            // fault, so it counts as stalled work for its timer.
            let next_needed = self.last_executed.next();
            let holds_schedule = self.engine.k() > 1
                && self.commit_frontier >= next_needed
                && self.owner(next_needed) == j;
            if self.engine.has_stalled_work(j) || self.client_demand[j] || holds_schedule {
                let actions = self.engine.on_timeout(j);
                self.last_progress[j] = Instant::now();
                self.suspect_strikes[j] = self.suspect_strikes[j].saturating_add(1);
                self.run_actions(actions);
                self.fill_gaps();
            } else {
                // Quiet and healthy: keep the timer from firing immediately
                // on the first demand signal after a long idle stretch.
                self.last_progress[j] = Instant::now();
                self.suspect_strikes[j] = 0;
            }
        }
    }

    fn handle(&mut self, work: Work) {
        match work {
            Work::Verified(sm) => {
                // Fetch-protocol traffic is point-to-point runtime state,
                // not consensus input: intercept it before engine routing
                // (`Message::seq()` is `None` for these kinds, so the
                // multi-instance router would drop them anyway).
                match sm.msg() {
                    Message::FetchRequest { seqs, replica } => {
                        let (requester, seqs) = (*replica, seqs.clone());
                        self.serve_fetch_request(requester, &seqs);
                    }
                    Message::FetchResponse { .. } | Message::SnapshotResponse { .. } => {
                        self.on_recovery_response(&sm);
                    }
                    _ => {
                        let actions = self.engine.on_message(&sm);
                        self.run_actions(actions);
                    }
                }
            }
            Work::ClientRequest(sm) => {
                // 0B configuration: the worker performs the batch-thread's
                // duties inline (Figure 8's monolithic baseline).
                if !self
                    .provider
                    .verify(sm.sender(), sm.signing_bytes(), sm.sig())
                {
                    self.shared.dropped_bad_sigs.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                let j = match sm.sender() {
                    Sender::Client(c) => (c.0 % self.engine.k() as u64) as usize,
                    _ => 0,
                };
                if let Message::ClientRequest { txns } = sm.into_message() {
                    self.pending_txns[j].extend(txns);
                }
                while self.pending_txns[j].len() >= self.batch_size {
                    let rest = self.pending_txns[j].split_off(self.batch_size);
                    let batch = Batch::new(std::mem::replace(&mut self.pending_txns[j], rest));
                    self.propose(j, batch);
                }
            }
            Work::Propose {
                instance,
                batch,
                digest,
            } => {
                let actions = self.engine.propose(instance, batch, digest);
                self.run_actions(actions);
            }
            Work::Executed {
                seq,
                state_digest,
                epoch,
            } => {
                if epoch != self.exec_queues.epoch() {
                    return; // executed on a rolled-back/superseded timeline
                }
                self.last_executed = self.last_executed.max(seq);
                let j = self.owner(seq);
                self.last_progress[j] = Instant::now();
                self.suspect_strikes[j] = 0;
                self.client_demand[j] = false;
                let actions = self.engine.on_executed(seq, state_digest);
                self.run_actions(actions);
                // A checkpoint can stabilize (2f+1 remote checkpoint
                // messages) while local execution still lags; pruning is
                // clamped at the chain head then, so retry as execution
                // advances.
                self.prune_to_stable();
            }
            Work::ClientDemand(j) => {
                if j < self.client_demand.len() {
                    self.client_demand[j] = true;
                }
            }
        }
        self.fill_gaps();
    }

    /// Multi-primary gap-fill: execution consumes the global sequence
    /// space strictly in order, so once any instance commits past a slot
    /// owned by an instance *we* lead, we must propose into that slot —
    /// an empty no-op batch if no client traffic is pending — or the
    /// committed tail above it never executes. (RCC resolves the same
    /// obligation with explicit no-op proposals.) `k == 1` never triggers:
    /// a single primary's frontier cannot pass its own next slot.
    fn fill_gaps(&mut self) {
        if self.engine.k() == 1 {
            return;
        }
        for j in 0..self.engine.k() {
            if !self.engine.is_primary(j) {
                continue;
            }
            while self
                .engine
                .next_seq(j)
                .is_some_and(|s| s <= self.commit_frontier)
            {
                let batch = Batch::new(Vec::new());
                let d = digest(&batch.canonical_bytes());
                let actions = self.engine.propose(j, batch, d);
                if actions.is_empty() {
                    break; // engine refused (e.g. mid view change)
                }
                self.run_actions(actions);
            }
        }
    }

    fn prune_to_stable(&mut self) {
        // Only lock the chain while pruning genuinely lags the stable
        // checkpoint — once caught up, this is a field comparison, not a
        // per-batch acquisition of the mutex the execute path appends
        // under.
        if self.stable_checkpoint > self.pruned_to {
            self.pruned_to = self.chain.lock().prune_below(self.stable_checkpoint);
        }
    }

    fn flush_pending(&mut self) {
        for j in 0..self.pending_txns.len() {
            if self.pending_txns[j].is_empty() {
                continue;
            }
            let batch = Batch::new(std::mem::take(&mut self.pending_txns[j]));
            self.propose(j, batch);
        }
    }

    fn propose(&mut self, instance: usize, batch: Batch) {
        let d = digest(&batch.canonical_bytes());
        let actions = self.engine.propose(instance, batch, d);
        self.last_flush = Instant::now();
        self.run_actions(actions);
    }

    fn send_out(&mut self, item: OutItem) {
        let shard = self.out_rr % self.out_txs.len();
        self.out_rr += 1;
        let _ = self.out_txs[shard].send(item);
    }

    fn run_actions(&mut self, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    let targets: Vec<Sender> = self
                        .replicas
                        .iter()
                        .copied()
                        .filter(|r| *r != self.me)
                        .collect();
                    self.send_out(OutItem { targets, msg });
                }
                Action::SendReplica(r, msg) => {
                    self.send_out(OutItem::to(Sender::Replica(r), msg));
                }
                Action::SendClient(c, msg) => {
                    self.send_out(OutItem::to(Sender::Client(c), msg));
                }
                Action::CommitBatch {
                    seq,
                    view,
                    digest,
                    batch,
                    certificate,
                } => {
                    // Deliberately NOT a progress signal: the timer re-arms
                    // on `Work::Executed` (PBFT §2.4 stops the timer when a
                    // request executes, not when it commits). A commit above
                    // an execution hole would otherwise starve the view
                    // change that re-issues the missing sequence.
                    self.shared
                        .committed_batches
                        .fetch_add(1, Ordering::Relaxed);
                    let j = self.owner(seq);
                    self.shared.committed_per_instance[j].fetch_add(1, Ordering::Relaxed);
                    self.commit_frontier = self.commit_frontier.max(seq);
                    self.dispatch_execution(ExecuteItem {
                        seq,
                        view,
                        digest,
                        batch,
                        certificate,
                        history: None,
                    });
                }
                Action::SpecExecute {
                    seq,
                    view,
                    digest,
                    history,
                    batch,
                } => {
                    self.shared
                        .committed_batches
                        .fetch_add(1, Ordering::Relaxed);
                    self.shared.committed_per_instance[0].fetch_add(1, Ordering::Relaxed);
                    self.commit_frontier = self.commit_frontier.max(seq);
                    self.dispatch_execution(ExecuteItem {
                        seq,
                        view,
                        digest,
                        batch,
                        certificate: Default::default(),
                        history: Some(history),
                    });
                }
                Action::StableCheckpoint { seq } => {
                    self.stable_checkpoint = self.stable_checkpoint.max(seq);
                    let pruned = self.chain.lock().prune_below(seq);
                    self.pruned_to = self.pruned_to.max(pruned);
                    // Nothing at or below a 2f+1-stable checkpoint can ever
                    // roll back; its undo images are dead weight. With a
                    // data directory configured this also persists the
                    // covering snapshot and compacts the WAL behind it.
                    self.executor.note_stable(seq);
                }
                Action::Rollback { to } => {
                    self.apply_rollback(to);
                }
                Action::EnterView { view, instance } => {
                    // Publish the new view so the input threads re-route
                    // client traffic to the instance's new primary, and
                    // re-arm that instance's suspicion timer: the view
                    // change itself is progress.
                    let j = instance as usize;
                    if let Some(v) = self.instance_views.get(j) {
                        v.store(view.0, Ordering::Relaxed);
                        self.last_progress[j] = Instant::now();
                        self.suspect_strikes[j] = 0;
                        self.client_demand[j] = false;
                    }
                }
            }
        }
    }

    /// This replica's id (the worker addresses fetch responses with it).
    fn my_id(&self) -> ReplicaId {
        match self.me {
            Sender::Replica(r) => r,
            _ => unreachable!("worker always runs at a replica address"),
        }
    }

    /// Undoes the speculative suffix above `to`: repoints the shared
    /// execution cursor (new epoch, so in-flight `Executed` notifications
    /// from the displaced timeline are dropped), discards parked items
    /// above `to`, and rewinds store/chain/counters through the
    /// executor's undo log. The engine re-emits the reconciled history
    /// right after, and re-execution proceeds from `to + 1`.
    fn apply_rollback(&mut self, to: SeqNum) {
        if self.execute_inline {
            self.inline_exec_buf.retain(|seq, _| *seq <= to);
            self.executor.rollback_to(to);
            self.inline_next_exec = self.inline_next_exec.min(to.next());
        } else {
            let gate = self.exec_queues.gate();
            self.exec_queues.purge_above(to);
            let resume = self.exec_queues.cursor().min(to.next());
            self.exec_queues.repoint(resume);
            self.executor.rollback_to(to);
            drop(gate);
        }
        self.last_executed = self.last_executed.min(to);
        self.fetch_votes.retain(|(seq, _, _), _| *seq > to);
    }

    /// Serves a peer's `FetchRequest`: one `FetchResponse` per retained
    /// committed sequence, one `SnapshotResponse` (at most) for sequences
    /// at or below this replica's pruning horizon, and nothing for
    /// sequences it cannot vouch for. A per-request cap bounds the
    /// amplification an abusive fetcher can extract.
    fn serve_fetch_request(&mut self, requester: ReplicaId, seqs: &[SeqNum]) {
        const SERVE_CAP: usize = 32;
        if requester == self.my_id() {
            return;
        }
        let mut served = 0u64;
        let mut dropped = seqs.len().saturating_sub(SERVE_CAP) as u64;
        let mut snapshot_sent = false;
        for &seq in seqs.iter().take(SERVE_CAP) {
            if let Some((view, digest, batch, certificate)) = self.engine.serve_fetch(seq) {
                let msg = Message::FetchResponse {
                    seq,
                    view,
                    digest,
                    batch,
                    certificate,
                    replica: self.my_id(),
                };
                self.send_out(OutItem::to(Sender::Replica(requester), msg));
                served += 1;
            } else if seq <= self.stable_checkpoint.max(self.pruned_to) {
                // Pruned below the stable checkpoint: the snapshot covers
                // it (and every other pruned sequence — send it once).
                match self.executor.latest_snapshot() {
                    Some(snapshot) if !snapshot_sent && snapshot.base_seq >= seq => {
                        snapshot_sent = true;
                        served += 1;
                        let msg = Message::SnapshotResponse {
                            snapshot,
                            replica: self.my_id(),
                        };
                        self.send_out(OutItem::to(Sender::Replica(requester), msg));
                    }
                    Some(_) => {}
                    None => dropped += 1,
                }
            } else {
                dropped += 1;
            }
        }
        self.net_stats.note_fetch_served(served);
        self.net_stats.note_fetch_dropped(dropped);
    }

    /// Validates and installs a `FetchResponse` or `SnapshotResponse`.
    fn on_recovery_response(&mut self, sm: &SignedMessage) {
        let Sender::Replica(from) = sm.sender() else {
            return; // clients cannot vouch for ordering
        };
        match sm.msg() {
            Message::FetchResponse {
                seq,
                view,
                digest: claimed,
                batch,
                certificate,
                replica,
            } => {
                if *replica != from || *seq <= self.last_executed {
                    return;
                }
                // The digest must bind the transferred batch content —
                // otherwise a valid certificate could smuggle a forged
                // batch in beside it.
                if digest(&batch.canonical_bytes()) != *claimed {
                    return;
                }
                let quorum = rdb_common::quorum::commit_quorum(self.f);
                let certified = recovery::verify_fetch_certificate(
                    &self.provider,
                    quorum,
                    from,
                    *view,
                    *seq,
                    *claimed,
                    certificate,
                );
                let vouched = {
                    // f+1 distinct peers presenting identical (seq, view,
                    // digest) responses: at least one is honest. This is
                    // the only path for Zyzzyva, whose speculation has no
                    // offline-verifiable certificate to ship. The view is
                    // part of the match: the engine treats a fetched later
                    // view as proof of a missed view change, so a lone
                    // byzantine responder must not get to invent one.
                    let votes = self.fetch_votes.entry((*seq, *view, *claimed)).or_default();
                    votes.insert(from);
                    votes.len() > self.f
                };
                if certified || vouched {
                    let (seq, view, claimed) = (*seq, *view, *claimed);
                    let (batch, certificate) = (Arc::clone(batch), certificate.clone());
                    self.fetch_votes.retain(|(s, _, _), _| *s != seq);
                    self.fetch_inflight.remove(&seq);
                    let actions =
                        self.engine
                            .install_fetched(seq, view, claimed, batch, certificate);
                    self.run_actions(actions);
                }
            }
            Message::SnapshotResponse { snapshot, replica } => {
                if *replica != from || snapshot.base_seq <= self.last_executed {
                    return;
                }
                if !recovery::verify_snapshot(snapshot) {
                    return;
                }
                let key = snapshot.agreement_key();
                let (voters, kept) = self
                    .snap_votes
                    .entry(key)
                    .or_insert_with(|| (HashSet::new(), Arc::clone(snapshot)));
                voters.insert(from);
                if voters.len() > self.f {
                    let snapshot = Arc::clone(kept);
                    self.snap_votes.clear();
                    self.adopt_snapshot(&snapshot);
                }
            }
            _ => {}
        }
    }

    /// Installs an f+1-vouched, payload-verified snapshot: replaces the
    /// store and ledger, jumps the execution cursor past the transferred
    /// history, and fast-forwards the consensus engines.
    fn adopt_snapshot(&mut self, snapshot: &Snapshot) {
        let base = snapshot.base_seq;
        if self.execute_inline {
            self.inline_exec_buf.retain(|seq, _| *seq > base);
            self.executor.install_snapshot(snapshot);
            self.inline_next_exec = self.inline_next_exec.max(base.next());
        } else {
            let gate = self.exec_queues.gate();
            self.exec_queues.purge_through(base);
            let resume = self.exec_queues.cursor().max(base.next());
            self.exec_queues.repoint(resume);
            self.executor.install_snapshot(snapshot);
            drop(gate);
        }
        self.engine.install_snapshot(base, snapshot.history);
        self.last_executed = self.last_executed.max(base);
        self.commit_frontier = self.commit_frontier.max(base);
        self.stable_checkpoint = self.stable_checkpoint.max(base);
        self.pruned_to = self.pruned_to.max(base);
        self.fetch_inflight.retain(|seq, _| *seq > base);
        self.fetch_votes.retain(|(seq, _, _), _| *seq > base);
        // Installing a snapshot is progress: re-arm every suspicion timer.
        for j in 0..self.engine.k() {
            self.last_progress[j] = Instant::now();
            self.suspect_strikes[j] = 0;
        }
    }

    /// The fetch driver: when the engine reports execution holes below
    /// the commit frontier, request the missing batches from rotating
    /// peers — deduplicating in-flight sequences, capping the outstanding
    /// set, and retrying (next peer) after a backoff. Under Zyzzyva each
    /// request fans out to f+1 peers, since acceptance needs f+1 matching
    /// responses rather than one verifiable certificate.
    fn maybe_fetch(&mut self) {
        const POLL_EVERY: Duration = Duration::from_millis(20);
        if self.last_fetch_poll.elapsed() < POLL_EVERY {
            return;
        }
        self.last_fetch_poll = Instant::now();
        let now = Instant::now();
        // Expired entries are eligible for re-request (peer rotation below
        // naturally lands retries elsewhere).
        self.fetch_inflight.retain(|_, deadline| *deadline > now);
        let budget = MAX_INFLIGHT.saturating_sub(self.fetch_inflight.len());
        if budget == 0 {
            return;
        }
        let seqs: Vec<SeqNum> = self
            .engine
            .fetch_wanted(FETCH_BATCH + self.fetch_inflight.len())
            .into_iter()
            .filter(|s| *s > self.last_executed && !self.fetch_inflight.contains_key(s))
            .take(budget.min(FETCH_BATCH))
            .collect();
        if seqs.is_empty() {
            self.maybe_probe();
            return;
        }
        self.send_fetch(seqs, now);
    }

    /// Quiescent-network catch-up. A replica that rejoins after the load
    /// has drained receives no new traffic that would reveal the committed
    /// frontier, so the engine reports no holes and [`Self::maybe_fetch`]
    /// has nothing to do — forever. When execution has not advanced for a
    /// couple of backoff periods and nothing is in flight, probe a peer
    /// with a plain `FetchRequest` for the next sequence window: either it
    /// comes back served (the log moved on without us — install and keep
    /// going) or the peer is equally idle and drops it, which costs one
    /// tiny message per idle interval.
    fn maybe_probe(&mut self) {
        if self.probe_mark.0 != self.last_executed {
            self.probe_mark = (self.last_executed, Instant::now());
            return;
        }
        if self.probe_mark.1.elapsed() < self.fetch_backoff * 2 || !self.fetch_inflight.is_empty() {
            return;
        }
        self.probe_mark.1 = Instant::now();
        let seqs: Vec<SeqNum> = (1..=FETCH_BATCH as u64)
            .map(|i| SeqNum(self.last_executed.0 + i))
            .collect();
        self.send_fetch(seqs, Instant::now());
    }

    fn send_fetch(&mut self, seqs: Vec<SeqNum>, now: Instant) {
        let deadline = now + self.fetch_backoff;
        for &seq in &seqs {
            self.fetch_inflight.insert(seq, deadline);
        }
        let peers: Vec<Sender> = self
            .replicas
            .iter()
            .copied()
            .filter(|r| *r != self.me)
            .collect();
        if peers.is_empty() {
            return;
        }
        let fanout = match self.protocol {
            ProtocolKind::Pbft => 1,
            ProtocolKind::Zyzzyva => (self.f + 1).min(peers.len()),
        };
        let targets: Vec<Sender> = (0..fanout)
            .map(|i| peers[(self.fetch_rr + i) % peers.len()])
            .collect();
        self.fetch_rr = self.fetch_rr.wrapping_add(1);
        let msg = Message::FetchRequest {
            seqs,
            replica: self.my_id(),
        };
        self.send_out(OutItem { targets, msg });
    }

    fn dispatch_execution(&mut self, item: ExecuteItem) {
        if !self.execute_inline {
            self.exec_queues.deposit(item);
            return;
        }
        // 0E configuration: integrated ordering and execution on the
        // worker, buffered so execution stays in sequence order.
        self.inline_exec_buf.insert(item.seq, item);
        while let Some(item) = self.inline_exec_buf.remove(&self.inline_next_exec) {
            let (state_digest, replies) = self.executor.execute(&item);
            for out in replies {
                self.send_out(out);
            }
            self.inline_next_exec = self.inline_next_exec.next();
            self.last_executed = self.last_executed.max(item.seq);
            let j = self.owner(item.seq);
            self.last_progress[j] = Instant::now();
            self.suspect_strikes[j] = 0;
            self.client_demand[j] = false;
            let actions = self.engine.on_executed(item.seq, state_digest);
            self.run_actions(actions);
            self.prune_to_stable();
        }
    }
}
