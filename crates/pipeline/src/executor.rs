//! Ordered batch execution (the execute stage's work).
//!
//! Executes each transaction's operations against a read view of the
//! state, buffers the writes, commits them in canonical order through
//! [`StateStore::apply`], appends a block to the ledger, and produces the
//! per-client reply messages. Under PBFT the block is certified by the
//! 2f+1 commit signatures; under Zyzzyva execution is speculative and
//! replies carry the rolling history digest.
//!
//! Execution is split into two halves so the conflict scheduler
//! ([`crate::scheduler`]) can run the first half on a worker pool:
//!
//! - [`execute_txn`] — pure transaction evaluation over a read closure,
//!   producing a [`TxnOutcome`] (reply bytes + buffered, pre-hashed
//!   writes). Safe to run concurrently for non-conflicting transactions.
//! - [`Executor::commit`] — the in-order half: apply writes, append the
//!   block, build replies, maintain counters.

use crate::durable::{commit_entry_bytes, Durability, WalEntry};
use crate::queues::ExecuteItem;
use parking_lot::Mutex;
use rdb_common::messages::{Message, Sender};
use rdb_common::{Digest, SeqNum, Snapshot};
use rdb_common::{Operation, ProtocolKind, ReplicaId, Transaction, TxnId};
use rdb_crypto::chain_digest;
use rdb_storage::{Blockchain, StateStore, WriteRecord};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An outgoing message with its destinations (all of one peer class, so
/// the output thread signs once).
#[derive(Debug, Clone, PartialEq)]
pub struct OutItem {
    /// Destinations (never empty).
    pub targets: Vec<Sender>,
    /// Unsigned message body.
    pub msg: Message,
}

impl OutItem {
    /// Single-destination item.
    pub fn to(dest: Sender, msg: Message) -> Self {
        OutItem {
            targets: vec![dest],
            msg,
        }
    }
}

/// The buffered result of evaluating one transaction: the reply bytes and
/// the final per-key writes (pre-hashed, in first-write order).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TxnOutcome {
    /// Reply payload: the last operation's echo, exactly as the serial
    /// executor produced it (write → key bytes, read → value truncated
    /// to 8 bytes).
    pub result: Vec<u8>,
    /// Final value per written key, hashed where produced.
    pub writes: Vec<WriteRecord>,
}

/// Evaluates `txn` against `read`, buffering writes instead of mutating.
///
/// Reads observe the transaction's own earlier writes first (read-your-own
/// -writes), then fall through to `read` — which the caller points at the
/// batch overlay plus the base store. Pure in the scheduling sense: no
/// shared state is touched, so non-conflicting transactions can be
/// evaluated concurrently and the outcome is a function of `(txn, read)`.
pub fn execute_txn<F>(txn: &Transaction, read: F) -> TxnOutcome
where
    F: Fn(u64) -> Option<Vec<u8>>,
{
    // Final value per key in first-write order; transactions carry few ops,
    // so a linear scan beats a per-txn hash map.
    let mut local: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut result = Vec::with_capacity(8);
    for op in &txn.ops {
        match op {
            Operation::Write { key, value } => {
                match local.iter_mut().find(|(k, _)| k == key) {
                    Some((_, v)) => v.clone_from(value),
                    None => local.push((*key, value.clone())),
                }
                result = key.to_le_bytes().to_vec();
            }
            Operation::Read { key } => {
                result = local
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v.clone())
                    .or_else(|| read(*key))
                    .unwrap_or_default();
                result.truncate(8);
            }
        }
    }
    TxnOutcome {
        result,
        writes: local
            .into_iter()
            .map(|(k, v)| WriteRecord::new(k, v))
            .collect(),
    }
}

/// What undoing one speculatively executed batch takes: the pre-batch
/// value of every key it touched (`None` = the key did not exist), plus
/// the bookkeeping deltas to reverse.
#[derive(Debug)]
struct UndoRecord {
    /// Pre-batch image per touched key (first-touch capture, so restoring
    /// all entries — in any order — rewinds the batch exactly).
    pre: Vec<(u64, Option<Vec<u8>>)>,
    /// Transaction ids this batch inserted into the dedup set.
    fresh_ids: Vec<TxnId>,
    /// Duplicates this batch counted.
    dups: u64,
}

/// The execution engine shared by the execute-thread (1E) or the worker
/// (0E: integrated ordering and execution).
pub struct Executor {
    id: ReplicaId,
    protocol: ProtocolKind,
    store: Arc<dyn StateStore>,
    chain: Arc<Mutex<Blockchain>>,
    executed_txns: AtomicU64,
    executed_batches: AtomicU64,
    /// Transaction ids already executed, for at-most-once accounting: a
    /// client retransmission ordered into a second batch (e.g. across a
    /// view change) is replied to again but not counted again. Its writes
    /// are content-identical, so re-applying them is state-idempotent and
    /// keeps serial and parallel execution digest-equal.
    seen: Mutex<HashSet<TxnId>>,
    deduped_txns: AtomicU64,
    /// Per-sequence undo records for the speculative (uncheckpointed)
    /// suffix. Only maintained under Zyzzyva — PBFT never rolls back.
    undo: Mutex<BTreeMap<SeqNum, UndoRecord>>,
    /// Capture a serving snapshot whenever `seq % interval == 0`
    /// (0 disables). Aligned with the checkpoint cadence so every replica
    /// captures identical state at identical sequences.
    snapshot_interval: AtomicU64,
    /// The most recent captured snapshot, served to rejoining peers.
    latest_snapshot: Mutex<Option<Arc<Snapshot>>>,
    /// The replica's write-ahead log, when it runs durable. Attached
    /// *after* restart replay (see [`crate::durable::recover_replica`]) so
    /// replayed batches do not re-log themselves.
    durability: Mutex<Option<Arc<Durability>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("id", &self.id)
            .field("protocol", &self.protocol)
            .field(
                "executed_batches",
                &self.executed_batches.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl Executor {
    /// Creates an executor over the replica's store and chain.
    pub fn new(
        id: ReplicaId,
        protocol: ProtocolKind,
        store: Arc<dyn StateStore>,
        chain: Arc<Mutex<Blockchain>>,
    ) -> Self {
        Executor {
            id,
            protocol,
            store,
            chain,
            executed_txns: AtomicU64::new(0),
            executed_batches: AtomicU64::new(0),
            seen: Mutex::new(HashSet::new()),
            deduped_txns: AtomicU64::new(0),
            undo: Mutex::new(BTreeMap::new()),
            snapshot_interval: AtomicU64::new(0),
            latest_snapshot: Mutex::new(None),
            durability: Mutex::new(None),
        }
    }

    /// Attaches the durable WAL: every commit, rollback and stable mark
    /// from here on is logged. Call after restart replay, never before.
    pub fn set_durability(&self, durability: Arc<Durability>) {
        *self.durability.lock() = Some(durability);
    }

    /// The attached durable state, if this executor runs durable.
    pub fn durability(&self) -> Option<Arc<Durability>> {
        self.durability.lock().clone()
    }

    /// Enables snapshot capture every `interval` sequences (0 disables).
    pub fn set_snapshot_interval(&self, interval: u64) {
        self.snapshot_interval.store(interval, Ordering::Relaxed);
    }

    /// The most recently captured serving snapshot, if any.
    pub fn latest_snapshot(&self) -> Option<Arc<Snapshot>> {
        self.latest_snapshot.lock().clone()
    }

    /// Total *distinct* transactions executed (duplicates excluded).
    pub fn executed_txns(&self) -> u64 {
        self.executed_txns.load(Ordering::Relaxed)
    }

    /// Duplicate transactions detected (re-ordered retransmissions).
    pub fn deduped_txns(&self) -> u64 {
        self.deduped_txns.load(Ordering::Relaxed)
    }

    /// Total batches executed.
    pub fn executed_batches(&self) -> u64 {
        self.executed_batches.load(Ordering::Relaxed)
    }

    /// The state store this executor commits into.
    pub fn store(&self) -> &Arc<dyn StateStore> {
        &self.store
    }

    /// Executes `item` serially: evaluates each transaction in batch order
    /// against the store overlaid with the batch's earlier writes, then
    /// commits. Returns the replica state digest after execution (fed back
    /// to the consensus engine for checkpointing) and the outgoing reply
    /// messages.
    pub fn execute(&self, item: &ExecuteItem) -> (Digest, Vec<OutItem>) {
        let mut overlay: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut results = Vec::with_capacity(item.batch.len());
        let mut writes: Vec<WriteRecord> = Vec::with_capacity(item.batch.len());
        for txn in &item.batch.txns {
            let out = execute_txn(txn, |k| {
                overlay.get(&k).cloned().or_else(|| self.store.get(k))
            });
            for w in &out.writes {
                overlay.insert(w.key, w.value.clone());
            }
            results.push(out.result);
            writes.extend(out.writes);
        }
        self.commit(item, results, &writes)
    }

    /// The in-order half of execution: applies the buffered writes in
    /// canonical order, appends the block, builds the client replies and
    /// bumps the executed counters. `results` holds one reply payload per
    /// transaction, in batch order.
    ///
    /// Callers (the serial path above and the parallel scheduler) must
    /// invoke this in sequence order — the ledger append asserts it.
    pub fn commit(
        &self,
        item: &ExecuteItem,
        results: Vec<Vec<u8>>,
        writes: &[WriteRecord],
    ) -> (Digest, Vec<OutItem>) {
        debug_assert_eq!(results.len(), item.batch.len());
        // Zyzzyva executes speculatively: capture the pre-batch image of
        // every touched key so a mis-speculation can be rewound exactly.
        let pre_images = if self.protocol == ProtocolKind::Zyzzyva {
            let mut captured: Vec<(u64, Option<Vec<u8>>)> = Vec::with_capacity(writes.len());
            for w in writes {
                if !captured.iter().any(|(k, _)| *k == w.key) {
                    captured.push((w.key, self.store.get(w.key)));
                }
            }
            Some(captured)
        } else {
            None
        };
        self.store.apply(writes);
        let mut replies = Vec::with_capacity(item.batch.len());
        for (txn, result) in item.batch.txns.iter().zip(results) {
            let msg = match item.history {
                // Zyzzyva: speculative response with the history digest.
                Some(history) => Message::SpecResponse {
                    view: item.view,
                    seq: item.seq,
                    digest: item.digest,
                    history,
                    txn_id: txn.id,
                    replica: self.id,
                    result,
                },
                // PBFT: committed reply.
                None => Message::ClientReply {
                    view: item.view,
                    txn_id: txn.id,
                    replica: self.id,
                    result,
                },
            };
            replies.push(OutItem::to(Sender::Client(txn.id.client), msg));
        }
        // Append the block. The result digest covers the store state so
        // replicas can cross-check execution.
        let store_digest = self.store.state_digest();
        {
            let mut chain = self.chain.lock();
            chain
                .append(
                    item.seq,
                    item.digest,
                    item.view,
                    item.certificate.clone(),
                    item.batch.len() as u32,
                    store_digest,
                )
                .expect("execution is sequential, append cannot gap");
        }
        // The checkpoint state digest must be identical across replicas, so
        // it covers the ordered batch digest and the store contents — NOT
        // the block certificate (each replica legitimately collects a
        // different 2f+1 commit-signature set).
        let state_digest = chain_digest(&item.digest, &store_digest);
        let fresh_ids: Vec<TxnId> = {
            let mut seen = self.seen.lock();
            item.batch
                .txns
                .iter()
                .filter(|t| seen.insert(t.id))
                .map(|t| t.id)
                .collect()
        };
        let fresh = fresh_ids.len() as u64;
        self.executed_txns.fetch_add(fresh, Ordering::Relaxed);
        self.deduped_txns
            .fetch_add(item.batch.len() as u64 - fresh, Ordering::Relaxed);
        self.executed_batches.fetch_add(1, Ordering::Relaxed);
        if let Some(pre) = pre_images {
            self.undo.lock().insert(
                item.seq,
                UndoRecord {
                    pre,
                    fresh_ids,
                    dups: item.batch.len() as u64 - fresh,
                },
            );
        }
        let interval = self.snapshot_interval.load(Ordering::Relaxed);
        if interval > 0 && item.seq.0.is_multiple_of(interval) {
            self.capture_snapshot(item.seq, item.history);
        }
        // Make the batch durable before its replies leave the replica.
        if let Some(durability) = self.durability.lock().clone() {
            durability.log_raw(&commit_entry_bytes(item));
        }
        (state_digest, replies)
    }

    /// Captures the serving snapshot at `seq`: the full store contents
    /// plus the chain block just appended there. Runs on the execute path
    /// at checkpoint cadence, so every replica captures identical state
    /// at identical sequences (the f+1 agreement a receiver requires).
    fn capture_snapshot(&self, seq: SeqNum, history: Option<Digest>) {
        let Some(block) = self
            .chain
            .lock()
            .blocks_between(SeqNum(seq.0 - 1), seq)
            .pop()
        else {
            return;
        };
        let snapshot = Snapshot {
            base_seq: seq,
            block,
            history: history.unwrap_or(Digest::ZERO),
            records: self.store.export_records(),
        };
        *self.latest_snapshot.lock() = Some(Arc::new(snapshot));
    }

    /// Rolls speculative execution back so the last executed sequence is
    /// `to`: restores pre-batch images newest-first, truncates the ledger,
    /// and reverses the dedup/counter bookkeeping. Returns the number of
    /// batches undone. The rewound state is bit-identical to a replica
    /// that never executed the suffix — the store's Merkle commitment is
    /// content-only, so restoring every touched record restores the root.
    pub fn rollback_to(&self, to: SeqNum) -> usize {
        let suffix: BTreeMap<SeqNum, UndoRecord> = self.undo.lock().split_off(&SeqNum(to.0 + 1));
        let undone = suffix.len();
        let mut seen = self.seen.lock();
        for (_, rec) in suffix.into_iter().rev() {
            for (key, pre) in &rec.pre {
                match pre {
                    Some(value) => self.store.put(*key, value),
                    None => {
                        self.store.remove(*key);
                    }
                }
            }
            for id in &rec.fresh_ids {
                seen.remove(id);
            }
            self.executed_txns
                .fetch_sub(rec.fresh_ids.len() as u64, Ordering::Relaxed);
            self.deduped_txns.fetch_sub(rec.dups, Ordering::Relaxed);
            self.executed_batches.fetch_sub(1, Ordering::Relaxed);
        }
        drop(seen);
        if undone > 0 {
            let mut chain = self.chain.lock();
            let target = SeqNum(to.0.min(chain.head_seq().0));
            chain.truncate_to(target);
            if let Some(durability) = self.durability.lock().clone() {
                durability.log(&WalEntry::Rollback { to });
            }
        }
        undone
    }

    /// Drops undo records at or below a stable checkpoint: nothing below
    /// it can ever be rolled back.
    pub fn prune_undo(&self, through: SeqNum) {
        self.undo.lock().retain(|seq, _| *seq > through);
    }

    /// Records that the checkpoint at `seq` became 2f+1-stable: prunes the
    /// undo log, and — when running durable — logs a `Stable` marker and
    /// persists the serving snapshot to disk (compacting the WAL down to
    /// the suffix above it) once the captured snapshot's base is covered
    /// by the stable floor.
    pub fn note_stable(&self, seq: SeqNum) {
        self.prune_undo(seq);
        let Some(durability) = self.durability.lock().clone() else {
            return;
        };
        durability.log(&WalEntry::Stable { seq });
        let snapshot = self.latest_snapshot.lock().clone();
        if let Some(snapshot) = snapshot {
            if snapshot.base_seq <= seq {
                durability.persist_stable(&snapshot);
            }
        }
    }

    /// Replaces the replica state with a verified snapshot: the store
    /// contents, the ledger re-based at the snapshot block, and a cleared
    /// undo log. Executed-counter totals (`executed_txns`,
    /// `executed_batches`, `deduped_txns`) are deliberately *not*
    /// advanced — the point of state transfer is that the receiver skips
    /// re-executing the transferred history, so the counters keep meaning
    /// "work this process actually performed" (restart replay and the
    /// smoke scripts rely on that reading).
    pub fn install_snapshot(&self, snapshot: &Snapshot) {
        self.store.install_records(&snapshot.records);
        self.chain
            .lock()
            .install_snapshot_block(snapshot.block.clone());
        self.undo.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::block::BlockCertificate;
    use rdb_common::{Batch, ClientId, SeqNum, SignatureBytes, Transaction, ViewNum};
    use rdb_storage::blockchain::ChainMode;
    use rdb_storage::MemStore;

    fn exec_item(seq: u64, history: Option<Digest>) -> ExecuteItem {
        let batch: Batch = (0..3u64)
            .map(|i| {
                Transaction::new(
                    ClientId(i),
                    0,
                    vec![Operation::Write {
                        key: 10 + i,
                        value: vec![i as u8; 4],
                    }],
                )
            })
            .collect();
        ExecuteItem {
            seq: SeqNum(seq),
            view: ViewNum(0),
            digest: Digest([seq as u8; 32]),
            batch: batch.into(),
            certificate: BlockCertificate::new(vec![
                (ReplicaId(0), SignatureBytes(vec![1])),
                (ReplicaId(1), SignatureBytes(vec![2])),
                (ReplicaId(2), SignatureBytes(vec![3])),
            ]),
            history,
        }
    }

    fn executor(protocol: ProtocolKind, mode: ChainMode) -> Executor {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let chain = Arc::new(Mutex::new(Blockchain::new(Digest::ZERO, 3, mode)));
        Executor::new(ReplicaId(1), protocol, store, chain)
    }

    #[test]
    fn pbft_execution_writes_and_replies() {
        let ex = executor(ProtocolKind::Pbft, ChainMode::Certificate);
        let (digest, replies) = ex.execute(&exec_item(1, None));
        assert_ne!(digest, Digest::ZERO);
        assert_eq!(replies.len(), 3);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.targets, vec![Sender::Client(ClientId(i as u64))]);
            assert!(matches!(&r.msg, Message::ClientReply { .. }));
        }
        assert_eq!(ex.executed_txns(), 3);
        assert_eq!(ex.executed_batches(), 1);
    }

    #[test]
    fn zyzzyva_execution_sends_spec_responses() {
        let ex = zyz_executor();
        let h = Digest([9; 32]);
        let (_, replies) = ex.execute(&exec_item(1, Some(h)));
        for r in &replies {
            match &r.msg {
                Message::SpecResponse { history, .. } => assert_eq!(*history, h),
                other => panic!("expected SpecResponse, got {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_across_replicas() {
        let a = executor(ProtocolKind::Pbft, ChainMode::Certificate);
        let b = executor(ProtocolKind::Pbft, ChainMode::Certificate);
        let (da, ra) = a.execute(&exec_item(1, None));
        let (db, rb) = b.execute(&exec_item(1, None));
        assert_eq!(da, db, "state digests must match across replicas");
        let result = |o: &OutItem| match &o.msg {
            Message::ClientReply { result, .. } => result.clone(),
            _ => panic!(),
        };
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert_eq!(result(x), result(y));
        }
    }

    #[test]
    fn chain_grows_per_batch() {
        let ex = executor(ProtocolKind::Pbft, ChainMode::Certificate);
        ex.execute(&exec_item(1, None));
        ex.execute(&exec_item(2, None));
        assert_eq!(ex.chain.lock().head_seq(), SeqNum(2));
        assert!(ex.chain.lock().verify().is_ok());
    }

    #[test]
    fn retransmitted_txns_replied_but_counted_once() {
        let ex = executor(ProtocolKind::Pbft, ChainMode::Certificate);
        let (_, r1) = ex.execute(&exec_item(1, None));
        // The same transactions ordered again at a later sequence (a
        // retransmission that crossed a view change).
        let (_, r2) = ex.execute(&exec_item(2, None));
        assert_eq!(r1.len(), 3);
        assert_eq!(r2.len(), 3, "duplicates still get replies");
        assert_eq!(ex.executed_txns(), 3, "but are not counted again");
        assert_eq!(ex.deduped_txns(), 3);
        assert_eq!(ex.executed_batches(), 2);
    }

    /// A Zyzzyva executor: speculative chains carry no certificates, so
    /// the ledger's certificate quorum is zero (as in `spawn_replica`).
    fn zyz_executor() -> Executor {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let chain = Arc::new(Mutex::new(Blockchain::new(
            Digest::ZERO,
            0,
            ChainMode::PrevHash,
        )));
        Executor::new(ReplicaId(1), ProtocolKind::Zyzzyva, store, chain)
    }

    /// An exec item whose transactions write distinct values derived from
    /// `tag`, so different speculative suffixes produce different state.
    fn tagged_item(seq: u64, tag: u8) -> ExecuteItem {
        let batch: Batch = (0..3u64)
            .map(|i| {
                Transaction::new(
                    ClientId(seq * 100 + i),
                    tag as u64,
                    vec![Operation::Write {
                        key: 10 + i,
                        value: vec![tag, seq as u8, i as u8],
                    }],
                )
            })
            .collect();
        ExecuteItem {
            seq: SeqNum(seq),
            view: ViewNum(0),
            digest: Digest([tag ^ seq as u8; 32]),
            batch: batch.into(),
            certificate: BlockCertificate::default(),
            history: Some(Digest([seq as u8; 32])),
        }
    }

    #[test]
    fn rollback_restores_state_counters_and_chain() {
        let ex = zyz_executor();
        ex.execute(&tagged_item(1, 1));
        let state_at_1 = ex.store.state_digest();
        let head_at_1 = ex.chain.lock().head_digest();
        // A divergent speculative suffix.
        ex.execute(&tagged_item(2, 66));
        ex.execute(&tagged_item(3, 66));
        assert_eq!(ex.executed_batches(), 3);
        assert_eq!(ex.rollback_to(SeqNum(1)), 2);
        assert_eq!(ex.store.state_digest(), state_at_1);
        assert_eq!(ex.chain.lock().head_digest(), head_at_1);
        assert_eq!(ex.executed_batches(), 1);
        assert_eq!(ex.executed_txns(), 3);
        // Re-executing the reconciled history converges with a replica
        // that never speculated.
        ex.execute(&tagged_item(2, 2));
        ex.execute(&tagged_item(3, 2));
        let clean = zyz_executor();
        clean.execute(&tagged_item(1, 1));
        clean.execute(&tagged_item(2, 2));
        clean.execute(&tagged_item(3, 2));
        assert_eq!(ex.store.state_digest(), clean.store.state_digest());
        assert_eq!(ex.executed_txns(), clean.executed_txns());
    }

    #[test]
    fn rollback_removes_rewound_txns_from_dedup_set() {
        let ex = zyz_executor();
        ex.execute(&tagged_item(1, 1));
        ex.execute(&tagged_item(2, 9));
        ex.rollback_to(SeqNum(1));
        // The same transactions re-ordered after reconciliation must count
        // as fresh, not as retransmissions.
        ex.execute(&tagged_item(2, 9));
        assert_eq!(ex.executed_txns(), 6);
        assert_eq!(ex.deduped_txns(), 0);
    }

    #[test]
    fn snapshot_capture_and_install_round_trip() {
        let ex = executor(ProtocolKind::Pbft, ChainMode::Certificate);
        ex.set_snapshot_interval(2);
        ex.execute(&exec_item(1, None));
        assert!(ex.latest_snapshot().is_none(), "seq 1 is off-cadence");
        ex.execute(&exec_item(2, None));
        let snap = ex.latest_snapshot().expect("captured at seq 2");
        assert_eq!(snap.base_seq, SeqNum(2));
        assert_eq!(snap.block.result_digest, ex.store.state_digest());

        // A fresh replica installs the snapshot instead of replaying.
        let fresh = executor(ProtocolKind::Pbft, ChainMode::Certificate);
        fresh.install_snapshot(&snap);
        assert_eq!(fresh.store.state_digest(), ex.store.state_digest());
        assert_eq!(fresh.chain.lock().head_seq(), SeqNum(2));
        assert_eq!(
            fresh.executed_txns(),
            0,
            "transferred history is not re-counted"
        );
        // Execution resumes at base + 1 and both replicas stay in step.
        let (da, _) = ex.execute(&exec_item(3, None));
        let (db, _) = fresh.execute(&exec_item(3, None));
        assert_eq!(da, db);
    }

    /// The documented `install_snapshot` invariant: transferred history is
    /// installed, never counted as executed work. Restart replay and the
    /// fault-matrix smoke script both read the counters as "work this
    /// process performed", so advancing them here would break that math.
    #[test]
    fn install_snapshot_does_not_advance_executed_counters() {
        let source = executor(ProtocolKind::Pbft, ChainMode::Certificate);
        source.set_snapshot_interval(2);
        source.execute(&exec_item(1, None));
        source.execute(&exec_item(2, None));
        let snap = source.latest_snapshot().expect("captured at seq 2");

        let receiver = executor(ProtocolKind::Pbft, ChainMode::Certificate);
        receiver.execute(&exec_item(1, None)); // some pre-transfer work
        let (txns, batches, dups) = (
            receiver.executed_txns(),
            receiver.executed_batches(),
            receiver.deduped_txns(),
        );
        receiver.install_snapshot(&snap);
        assert_eq!(receiver.executed_txns(), txns);
        assert_eq!(receiver.executed_batches(), batches);
        assert_eq!(receiver.deduped_txns(), dups);
        // The state itself did move to the snapshot.
        assert_eq!(receiver.store.state_digest(), source.store.state_digest());
    }

    #[test]
    fn prune_undo_caps_rollback_depth() {
        let ex = zyz_executor();
        ex.execute(&tagged_item(1, 1));
        ex.execute(&tagged_item(2, 2));
        ex.prune_undo(SeqNum(2));
        assert_eq!(
            ex.rollback_to(SeqNum(0)),
            0,
            "checkpointed prefix cannot rewind"
        );
    }

    #[test]
    fn read_operations_return_stored_values() {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        store.put(42, &[7, 7, 7]);
        let chain = Arc::new(Mutex::new(Blockchain::new(
            Digest::ZERO,
            0,
            ChainMode::Certificate,
        )));
        let ex = Executor::new(ReplicaId(0), ProtocolKind::Pbft, store, chain);
        let batch: Batch = vec![Transaction::new(
            ClientId(0),
            0,
            vec![Operation::Read { key: 42 }],
        )]
        .into_iter()
        .collect();
        let item = ExecuteItem {
            seq: SeqNum(1),
            view: ViewNum(0),
            digest: Digest::ZERO,
            batch: batch.into(),
            certificate: BlockCertificate::default(),
            history: None,
        };
        let (_, replies) = ex.execute(&item);
        match &replies[0].msg {
            Message::ClientReply { result, .. } => assert_eq!(result, &vec![7, 7, 7]),
            other => panic!("unexpected {other:?}"),
        }
    }
}
