//! Per-thread saturation metrics (Figure 9).
//!
//! Every stage thread records the time it spends *processing* (as opposed
//! to waiting for input). Saturation = busy-time / wall-time; 100% means
//! the thread never waits — it is the pipeline bottleneck.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which pipeline stage a thread belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Receives client requests / replica messages off the network.
    Input,
    /// Assembles and digests batches (primary only).
    Batch,
    /// Runs the consensus state machine.
    Worker,
    /// Executes committed batches (serial execute-thread, or the pool
    /// workers under parallel execution).
    Execute,
    /// Schedules conflict waves and commits in order (parallel execution
    /// only, `execute_threads ≥ 2`).
    ExecuteCoord,
    /// Collects checkpoint messages.
    Checkpoint,
    /// Signs and transmits outgoing messages.
    Output,
}

impl Stage {
    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Input => "input",
            Stage::Batch => "batch",
            Stage::Worker => "worker",
            Stage::Execute => "execute",
            Stage::ExecuteCoord => "execute-coord",
            Stage::Checkpoint => "checkpoint",
            Stage::Output => "output",
        }
    }
}

#[derive(Debug, Default)]
struct ThreadCounters {
    busy_ns: AtomicU64,
    items: AtomicU64,
}

/// Keyed per-thread counters: `(stage, thread index) → counters`.
type CounterMap = HashMap<(Stage, usize), Arc<ThreadCounters>>;

/// Shared registry of per-thread busy counters for one replica.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<CounterMap>>,
    started: Arc<Mutex<Option<Instant>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the beginning of the measurement window.
    pub fn start_window(&self) {
        *self.started.lock() = Some(Instant::now());
    }

    /// Obtains (creating if needed) the recorder for thread `index` of
    /// `stage`.
    pub fn recorder(&self, stage: Stage, index: usize) -> StageRecorder {
        let counters = Arc::clone(
            self.inner
                .lock()
                .entry((stage, index))
                .or_insert_with(|| Arc::new(ThreadCounters::default())),
        );
        StageRecorder { counters }
    }

    /// Saturation per thread since `start_window`, in percent.
    pub fn report(&self) -> SaturationReport {
        let wall = self
            .started
            .lock()
            .map(|s| s.elapsed())
            .unwrap_or(Duration::from_secs(1));
        let wall_ns = wall.as_nanos().max(1) as f64;
        let threads = self
            .inner
            .lock()
            .iter()
            .map(|((stage, idx), c)| ThreadSaturation {
                stage: *stage,
                index: *idx,
                saturation_pct: 100.0 * c.busy_ns.load(Ordering::Relaxed) as f64 / wall_ns,
                items: c.items.load(Ordering::Relaxed),
            })
            .collect();
        SaturationReport { wall, threads }
    }
}

/// A stage thread's handle for recording busy time.
#[derive(Debug, Clone)]
pub struct StageRecorder {
    counters: Arc<ThreadCounters>,
}

impl StageRecorder {
    /// Times `f`, attributing its duration to this thread's busy counter.
    pub fn record<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.counters
            .busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.counters.items.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// Adds raw busy nanoseconds (for code that measures itself).
    pub fn add_busy_ns(&self, ns: u64) {
        self.counters.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.counters.items.fetch_add(1, Ordering::Relaxed);
    }
}

/// One thread's saturation.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSaturation {
    /// The stage the thread serves.
    pub stage: Stage,
    /// Thread index within the stage.
    pub index: usize,
    /// Busy time / wall time, in percent (100 = fully saturated).
    pub saturation_pct: f64,
    /// Work items processed.
    pub items: u64,
}

/// A replica's saturation snapshot.
#[derive(Debug, Clone)]
pub struct SaturationReport {
    /// Measurement window length.
    pub wall: Duration,
    /// Per-thread saturations.
    pub threads: Vec<ThreadSaturation>,
}

impl SaturationReport {
    /// Sum of all thread saturations ("cumulative saturation" in Fig. 9).
    pub fn cumulative_pct(&self) -> f64 {
        self.threads.iter().map(|t| t.saturation_pct).sum()
    }

    /// Saturation of a specific thread, if present.
    pub fn thread(&self, stage: Stage, index: usize) -> Option<&ThreadSaturation> {
        self.threads
            .iter()
            .find(|t| t.stage == stage && t.index == index)
    }

    /// Mean saturation across the threads of `stage`.
    pub fn stage_mean(&self, stage: Stage) -> f64 {
        let of_stage: Vec<&ThreadSaturation> =
            self.threads.iter().filter(|t| t.stage == stage).collect();
        if of_stage.is_empty() {
            return 0.0;
        }
        of_stage.iter().map(|t| t.saturation_pct).sum::<f64>() / of_stage.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_busy_time() {
        let reg = MetricsRegistry::new();
        reg.start_window();
        let rec = reg.recorder(Stage::Worker, 0);
        rec.record(|| std::thread::sleep(Duration::from_millis(20)));
        std::thread::sleep(Duration::from_millis(20));
        let report = reg.report();
        let worker = report.thread(Stage::Worker, 0).unwrap();
        // Busy ~20ms of ~40ms wall → roughly 50%, definitely between 20-90%.
        assert!(
            worker.saturation_pct > 20.0 && worker.saturation_pct < 90.0,
            "saturation {}",
            worker.saturation_pct
        );
        assert_eq!(worker.items, 1);
    }

    #[test]
    fn idle_thread_near_zero() {
        let reg = MetricsRegistry::new();
        reg.start_window();
        let _rec = reg.recorder(Stage::Execute, 0);
        std::thread::sleep(Duration::from_millis(10));
        let report = reg.report();
        assert!(report.thread(Stage::Execute, 0).unwrap().saturation_pct < 5.0);
    }

    #[test]
    fn cumulative_sums_threads() {
        let reg = MetricsRegistry::new();
        reg.start_window();
        reg.recorder(Stage::Batch, 0).add_busy_ns(10_000_000);
        reg.recorder(Stage::Batch, 1).add_busy_ns(10_000_000);
        std::thread::sleep(Duration::from_millis(20));
        let report = reg.report();
        let cum = report.cumulative_pct();
        let mean = report.stage_mean(Stage::Batch);
        assert!(cum > 0.0);
        assert!((mean - cum / 2.0).abs() < 1e-6);
    }

    #[test]
    fn same_recorder_shared_across_clones() {
        let reg = MetricsRegistry::new();
        reg.start_window();
        let a = reg.recorder(Stage::Output, 3);
        let b = reg.recorder(Stage::Output, 3);
        a.add_busy_ns(5);
        b.add_busy_ns(7);
        let report = reg.report();
        assert_eq!(report.thread(Stage::Output, 3).unwrap().items, 2);
    }
}
