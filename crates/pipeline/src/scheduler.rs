//! Deterministic parallel execution via read/write-set conflict scheduling.
//!
//! The Fabric lesson (Androulaki et al.) applied to the paper's ordered
//! pipeline: each transaction declares the keys it reads and writes, so
//! the executor can fan *non-conflicting* transactions out to a pool of
//! execute workers while keeping the committed result bit-identical to
//! serial execution.
//!
//! The scheme, for one in-order window of committed sequences:
//!
//! 1. [`conflict_waves`] partitions the window's transactions (in canonical
//!    order) into *waves*: transaction `j` lands one level above the
//!    deepest earlier transaction `i < j` it conflicts with (write-write,
//!    write-read or read-write key overlap). Same-wave transactions are
//!    pairwise conflict-free by construction.
//! 2. Each wave is chunked across the [`ExecPool`] workers. A worker
//!    evaluates its transactions with [`execute_txn`] against a frozen
//!    read view: the overlay of all *completed* waves' writes, falling
//!    through to the base store. Any key a transaction reads is, by the
//!    wave invariant, last written either in an earlier wave (visible in
//!    the overlay) or by itself (read-your-own-writes) — exactly what
//!    serial execution would observe.
//! 3. After the last wave, the coordinator commits each sequence in order
//!    through [`Executor::commit`]: buffered writes are applied to the
//!    store in canonical order, the block is appended, and `on_executed`
//!    fires with a `state_digest` identical to serial execution's.
//!
//! The base store is never touched between waves — writes live in the
//! overlay until the in-order commit — so workers read a consistent
//! snapshot without any versioning machinery in the store itself.

use crate::executor::{execute_txn, Executor, OutItem, TxnOutcome};
use crate::metrics::StageRecorder;
use crate::queues::ExecuteItem;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Mutex, RwLock};
use rdb_common::{Digest, Transaction};
use rdb_storage::StateStore;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Partitions `txns` (in canonical serial order) into conflict-free waves.
///
/// Returns wave buckets of indices into `txns`, each bucket ascending.
/// Wave `w+1` transactions conflict only with waves `≤ w`; transactions
/// within one wave are pairwise non-conflicting, so they may execute in
/// any interleaving without changing the serial-order outcome.
pub fn conflict_waves(txns: &[&Transaction]) -> Vec<Vec<usize>> {
    /// Per-key scheduling state: the last writer and the readers since.
    #[derive(Default)]
    struct KeyState {
        last_writer: Option<usize>,
        readers: Vec<usize>,
    }

    let mut level = vec![0usize; txns.len()];
    let mut keys: HashMap<u64, KeyState> = HashMap::new();
    let mut max_level = 0;
    for (i, txn) in txns.iter().enumerate() {
        let rw = txn.rw_set();
        let mut lvl = 0;
        for k in &rw.reads {
            // A read must follow the latest earlier write of the key.
            if let Some(state) = keys.get(k) {
                if let Some(w) = state.last_writer {
                    lvl = lvl.max(level[w] + 1);
                }
            }
        }
        for k in &rw.writes {
            // A write must follow the latest earlier write *and* every
            // read of that version (write-read anti-dependency).
            if let Some(state) = keys.get(k) {
                if let Some(w) = state.last_writer {
                    lvl = lvl.max(level[w] + 1);
                }
                for &r in &state.readers {
                    lvl = lvl.max(level[r] + 1);
                }
            }
        }
        level[i] = lvl;
        max_level = max_level.max(lvl);
        for k in &rw.writes {
            let state = keys.entry(*k).or_default();
            state.last_writer = Some(i);
            state.readers.clear();
        }
        for k in &rw.reads {
            // A key both read and written is covered by last_writer.
            if !rw.writes.contains(k) {
                keys.entry(*k).or_default().readers.push(i);
            }
        }
    }
    let mut waves = vec![Vec::new(); max_level + 1];
    for (i, lvl) in level.iter().enumerate() {
        waves[*lvl].push(i);
    }
    waves
}

/// One unit of pool work: evaluate the flat-index range `[lo, hi)` of
/// `wave` within the shared window context.
struct Task {
    ctx: Arc<WindowCtx>,
    wave: usize,
    lo: usize,
    hi: usize,
}

/// Shared state for one scheduling window, read by every worker.
struct WindowCtx {
    /// The window's batches, in sequence order (`Arc` bumps of the batches
    /// already shared with consensus — nothing else from the items is
    /// needed by the workers, so the certificates are never copied).
    batches: Vec<Arc<rdb_common::Batch>>,
    /// Flat transaction index → `(item index, txn index within batch)`.
    flat: Vec<(usize, usize)>,
    /// Conflict waves over flat indices.
    waves: Vec<Vec<usize>>,
    /// Writes of all *completed* waves (frozen while a wave runs).
    overlay: RwLock<HashMap<u64, Vec<u8>>>,
    /// Per-flat-index outcome slots, filled by the workers.
    outcomes: Vec<Mutex<Option<TxnOutcome>>>,
    /// The base store, read through when the overlay misses.
    store: Arc<dyn StateStore>,
    /// Completion signalling back to the coordinator (task count).
    done_tx: Sender<usize>,
}

impl WindowCtx {
    fn run_task(&self, wave: usize, lo: usize, hi: usize) {
        for &fi in &self.waves[wave][lo..hi] {
            let (ii, ti) = self.flat[fi];
            let txn = &self.batches[ii].txns[ti];
            let overlay = self.overlay.read();
            let out = execute_txn(txn, |k| {
                overlay.get(&k).cloned().or_else(|| self.store.get(k))
            });
            drop(overlay);
            *self.outcomes[fi].lock() = Some(out);
        }
    }
}

/// A pool of execute workers fed wave chunks over a channel.
///
/// Dropping the pool closes the channel; workers drain and exit, and the
/// drop joins them.
pub struct ExecPool {
    task_tx: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ExecPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl ExecPool {
    /// Spawns `workers` pool threads. `recorders` (one per worker, padded
    /// by reuse of the last if short) attribute busy time to the execute
    /// stage's saturation metrics.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(name: &str, workers: usize, recorders: Vec<StageRecorder>) -> Self {
        assert!(workers > 0, "need at least one execute worker");
        let (task_tx, task_rx): (Sender<Task>, Receiver<Task>) = channel::unbounded();
        let handles = (0..workers)
            .map(|w| {
                let rx = task_rx.clone();
                let rec = recorders
                    .get(w.min(recorders.len().saturating_sub(1)))
                    .cloned();
                std::thread::Builder::new()
                    .name(format!("{name}-exec-pool-{w}"))
                    .spawn(move || {
                        while let Ok(task) = rx.recv() {
                            // Catch panics so the coordinator's wave
                            // barrier never hangs on a dead worker: the
                            // count is reported either way, and a missing
                            // outcome turns into a loud coordinator panic
                            // instead of a silent execute-stage stall.
                            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                                || match &rec {
                                    Some(rec) => rec
                                        .record(|| task.ctx.run_task(task.wave, task.lo, task.hi)),
                                    None => task.ctx.run_task(task.wave, task.lo, task.hi),
                                },
                            ));
                            let _ = task.ctx.done_tx.send(task.hi - task.lo);
                            if let Err(panic) = outcome {
                                std::panic::resume_unwind(panic);
                            }
                        }
                    })
                    .expect("spawn execute pool worker")
            })
            .collect();
        ExecPool {
            task_tx: Some(task_tx),
            workers: handles,
        }
    }

    /// Number of pool workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    fn sender(&self) -> &Sender<Task> {
        self.task_tx.as_ref().expect("pool is live")
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        // Close the channel so workers fall out of their recv loop.
        self.task_tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The deterministic parallel executor: schedules an in-order window of
/// committed sequences across the pool and commits in sequence order.
pub struct ParallelExecutor {
    executor: Arc<Executor>,
    pool: ExecPool,
}

impl std::fmt::Debug for ParallelExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelExecutor")
            .field("pool", &self.pool)
            .finish()
    }
}

impl ParallelExecutor {
    /// Creates a parallel executor committing through `executor`.
    pub fn new(executor: Arc<Executor>, pool: ExecPool) -> Self {
        ParallelExecutor { executor, pool }
    }

    /// The underlying serial executor (counters, store, chain).
    pub fn executor(&self) -> &Arc<Executor> {
        &self.executor
    }

    /// Executes `items` — a contiguous in-order window of committed
    /// sequences — and returns `(state_digest, replies)` per item, in
    /// order. The digests are bit-identical to executing each item with
    /// [`Executor::execute`] serially.
    pub fn execute_window(&self, items: &[ExecuteItem]) -> Vec<(Digest, Vec<OutItem>)> {
        if items.is_empty() {
            return Vec::new();
        }
        let flat: Vec<(usize, usize)> = items
            .iter()
            .enumerate()
            .flat_map(|(ii, item)| (0..item.batch.len()).map(move |ti| (ii, ti)))
            .collect();
        let txns: Vec<&Transaction> = flat
            .iter()
            .map(|&(ii, ti)| &items[ii].batch.txns[ti])
            .collect();
        let waves = conflict_waves(&txns);
        let (done_tx, done_rx) = channel::unbounded();
        let ctx = Arc::new(WindowCtx {
            batches: items.iter().map(|i| Arc::clone(&i.batch)).collect(),
            flat,
            waves,
            overlay: RwLock::new(HashMap::new()),
            outcomes: (0..txns.len()).map(|_| Mutex::new(None)).collect(),
            store: Arc::clone(self.executor.store()),
            done_tx,
        });

        let last_wave = ctx.waves.len() - 1;
        for (w, wave) in ctx.waves.iter().enumerate() {
            if wave.is_empty() {
                continue;
            }
            // Chunk the wave so each dispatch amortizes channel overhead;
            // 2× workers keeps the pool busy despite uneven chunks.
            let chunks = (self.pool.worker_count() * 2).min(wave.len());
            let per = wave.len().div_ceil(chunks);
            let mut sent = 0usize;
            let mut lo = 0;
            while lo < wave.len() {
                let hi = (lo + per).min(wave.len());
                let sent_ok = self
                    .pool
                    .sender()
                    .send(Task {
                        ctx: Arc::clone(&ctx),
                        wave: w,
                        lo,
                        hi,
                    })
                    .is_ok();
                assert!(sent_ok, "pool is live");
                sent += 1;
                lo = hi;
            }
            // Wave barrier: every chunk reports its transaction count.
            let mut finished = 0usize;
            for _ in 0..sent {
                finished += done_rx.recv().expect("pool worker alive");
            }
            debug_assert_eq!(finished, wave.len());
            // Publish the wave's writes for the following waves. The last
            // wave skips this — nothing executes after it; its writes reach
            // the store through the in-order commit below.
            if w < last_wave {
                let mut overlay = ctx.overlay.write();
                for &fi in wave {
                    let outcome = ctx.outcomes[fi].lock();
                    for wr in &outcome.as_ref().expect("outcome filled").writes {
                        overlay.insert(wr.key, wr.value.clone());
                    }
                }
            }
        }

        // In-order merge: commit each sequence with its transactions'
        // buffered results and writes in canonical order.
        let mut out = Vec::with_capacity(items.len());
        let mut fi = 0usize;
        for item in items {
            let mut results = Vec::with_capacity(item.batch.len());
            let mut writes = Vec::new();
            for _ in 0..item.batch.len() {
                let outcome = ctx.outcomes[fi]
                    .lock()
                    .take()
                    .expect("every transaction executed");
                results.push(outcome.result);
                writes.extend(outcome.writes);
                fi += 1;
            }
            out.push(self.executor.commit(item, results, &writes));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::block::BlockCertificate;
    use rdb_common::{Batch, ClientId, Operation, ProtocolKind, ReplicaId, SeqNum, ViewNum};
    use rdb_storage::blockchain::ChainMode;
    use rdb_storage::{Blockchain, MemStore};

    fn txn(client: u64, counter: u64, ops: Vec<Operation>) -> Transaction {
        Transaction::new(ClientId(client), counter, ops)
    }

    fn write(key: u64, v: u8) -> Operation {
        Operation::Write {
            key,
            value: vec![v; 8],
        }
    }

    fn read(key: u64) -> Operation {
        Operation::Read { key }
    }

    #[test]
    fn independent_txns_share_one_wave() {
        let a = txn(0, 0, vec![write(1, 1)]);
        let b = txn(1, 0, vec![write(2, 2)]);
        let c = txn(2, 0, vec![read(3)]);
        let waves = conflict_waves(&[&a, &b, &c]);
        assert_eq!(waves, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn write_write_conflicts_serialize() {
        let a = txn(0, 0, vec![write(1, 1)]);
        let b = txn(1, 0, vec![write(1, 2)]);
        let c = txn(2, 0, vec![write(1, 3)]);
        let waves = conflict_waves(&[&a, &b, &c]);
        assert_eq!(waves, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn read_write_dependencies_level_correctly() {
        // a writes k1; b reads k1 (after a); c writes k1 (after b's read —
        // the anti-dependency); d touches an unrelated key.
        let a = txn(0, 0, vec![write(1, 1)]);
        let b = txn(1, 0, vec![read(1)]);
        let c = txn(2, 0, vec![write(1, 9)]);
        let d = txn(3, 0, vec![write(7, 7)]);
        let waves = conflict_waves(&[&a, &b, &c, &d]);
        assert_eq!(waves, vec![vec![0, 3], vec![1], vec![2]]);
    }

    #[test]
    fn readers_of_same_version_share_a_wave() {
        let a = txn(0, 0, vec![write(1, 1)]);
        let b = txn(1, 0, vec![read(1)]);
        let c = txn(2, 0, vec![read(1)]);
        let waves = conflict_waves(&[&a, &b, &c]);
        assert_eq!(waves, vec![vec![0], vec![1, 2]]);
    }

    #[test]
    fn waves_agree_with_the_declared_conflict_predicate() {
        // `conflict_waves` levels with per-key last-writer/reader tables;
        // `ReadWriteSet::conflicts_with` states the same rule as a pairwise
        // predicate. Cross-check them on a conflict-dense pseudo-random
        // batch so the two encodings cannot drift apart silently.
        let mut seed = 0x2545_F491_4F6C_DD1Du64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let txns: Vec<Transaction> = (0..60)
            .map(|i| {
                let ops = (0..1 + next() % 4)
                    .map(|_| {
                        let key = next() % 12;
                        if next() % 4 == 0 {
                            read(key)
                        } else {
                            write(key, (next() & 0xff) as u8)
                        }
                    })
                    .collect();
                txn(i % 5, i, ops)
            })
            .collect();
        let refs: Vec<&Transaction> = txns.iter().collect();
        let waves = conflict_waves(&refs);
        let sets: Vec<_> = txns.iter().map(|t| t.rw_set()).collect();

        for wave in &waves {
            // Same-wave transactions are pairwise non-conflicting.
            for (a, &i) in wave.iter().enumerate() {
                for &j in &wave[a + 1..] {
                    assert!(
                        !sets[i].conflicts_with(&sets[j]),
                        "txns {i} and {j} share a wave but conflict"
                    );
                }
            }
        }
        // A transaction above wave 0 conflicts with some earlier-wave
        // transaction that precedes it in serial order (levels are tight).
        for (w, wave) in waves.iter().enumerate().skip(1) {
            for &j in wave {
                let justified = waves[w - 1]
                    .iter()
                    .any(|&i| i < j && sets[i].conflicts_with(&sets[j]));
                assert!(justified, "txn {j} in wave {w} has no wave-{} dep", w - 1);
            }
        }
    }

    fn exec_item(seq: u64, txns: Vec<Transaction>) -> ExecuteItem {
        let batch: Batch = txns.into_iter().collect();
        ExecuteItem {
            seq: SeqNum(seq),
            view: ViewNum(0),
            digest: Digest([seq as u8; 32]),
            batch: batch.into(),
            certificate: BlockCertificate::default(),
            history: None,
        }
    }

    fn fresh_executor() -> Arc<Executor> {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::with_table(64, 8));
        let chain = Arc::new(Mutex::new(Blockchain::new(
            Digest::ZERO,
            0,
            ChainMode::Certificate,
        )));
        Arc::new(Executor::new(
            ReplicaId(1),
            ProtocolKind::Pbft,
            store,
            chain,
        ))
    }

    /// The window used by the equivalence tests: chained writes/reads over
    /// a hot key plus independent traffic, across two sequences.
    fn window() -> Vec<ExecuteItem> {
        vec![
            exec_item(
                1,
                vec![
                    txn(0, 0, vec![write(1, 1), read(2)]),
                    txn(1, 0, vec![read(1), write(2, 2)]),
                    txn(2, 0, vec![write(30, 3)]),
                ],
            ),
            exec_item(
                2,
                vec![
                    txn(0, 1, vec![read(2), write(1, 4)]),
                    txn(3, 0, vec![write(40, 5), read(40)]),
                ],
            ),
        ]
    }

    #[test]
    fn parallel_window_matches_serial_execution() {
        for workers in [1, 2, 4] {
            let serial = fresh_executor();
            let serial_out: Vec<(Digest, Vec<OutItem>)> =
                window().iter().map(|i| serial.execute(i)).collect();

            let par_exec = fresh_executor();
            let pool = ExecPool::new("t", workers, Vec::new());
            let par = ParallelExecutor::new(Arc::clone(&par_exec), pool);
            let par_out = par.execute_window(&window());

            assert_eq!(serial_out, par_out, "workers={workers}");
            assert_eq!(
                serial.store().state_digest(),
                par_exec.store().state_digest()
            );
            assert_eq!(serial.executed_txns(), par_exec.executed_txns());
        }
    }

    #[test]
    fn empty_window_is_a_no_op() {
        let pool = ExecPool::new("t", 2, Vec::new());
        let par = ParallelExecutor::new(fresh_executor(), pool);
        assert!(par.execute_window(&[]).is_empty());
    }

    #[test]
    fn empty_batch_commits() {
        let pool = ExecPool::new("t", 2, Vec::new());
        let par = ParallelExecutor::new(fresh_executor(), pool);
        let out = par.execute_window(&[exec_item(1, vec![])]);
        assert_eq!(out.len(), 1);
        assert!(out[0].1.is_empty());
        assert_eq!(par.executor().executed_batches(), 1);
    }
}
