//! Inter-stage queues.
//!
//! Two special-purpose structures from the paper's design:
//!
//! - [`ClientRequestQueue`] — the lock-free common queue between the
//!   input-thread and the batch-threads (Section 4.3: "to prevent
//!   contention among the batch-threads, we design the common queue as
//!   lock-free... any enqueued request is consumed as soon as any
//!   batch-thread is available").
//! - [`ExecutionQueues`] — the array of `QC` logical queues in front of the
//!   execute-thread (Section 4.6): the worker deposits the batch for
//!   sequence `k` into queue `k mod QC`, and the execute-thread *waits on
//!   exactly the queue of the next sequence in order*, never scanning or
//!   re-queuing out-of-order arrivals.

use crossbeam::queue::SegQueue;
use parking_lot::{Condvar, Mutex};
use rdb_common::block::BlockCertificate;
use rdb_common::messages::SignedMessage;
use rdb_common::{Batch, Digest, SeqNum, ViewNum};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Lock-free multi-producer multi-consumer queue of client requests.
#[derive(Debug, Default)]
pub struct ClientRequestQueue {
    queue: SegQueue<SignedMessage>,
    enqueued: AtomicU64,
    dequeued: AtomicU64,
}

impl ClientRequestQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a client request (input-thread side).
    pub fn push(&self, msg: SignedMessage) {
        self.queue.push(msg);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// Dequeues a request if one is available (batch-thread side).
    pub fn pop(&self) -> Option<SignedMessage> {
        let m = self.queue.pop();
        if m.is_some() {
            self.dequeued.fetch_add(1, Ordering::Relaxed);
        }
        m
    }

    /// Requests currently waiting.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Total requests ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }
}

/// A batch ready for ordered execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecuteItem {
    /// Sequence number of the batch.
    pub seq: SeqNum,
    /// View in which it was ordered.
    pub view: ViewNum,
    /// Batch digest.
    pub digest: Digest,
    /// The transactions, shared with the consensus instance and the
    /// original `PrePrepare` (committing never copies the batch).
    pub batch: Arc<Batch>,
    /// PBFT: the 2f+1 commit signatures. Empty for speculative execution.
    pub certificate: BlockCertificate,
    /// Zyzzyva: the rolling history digest (`None` for PBFT).
    pub history: Option<Digest>,
}

/// The `QC`-slot logical queue array in front of the execute-thread.
///
/// Slot `k mod QC` holds the item for sequence `k`. Because at most `QC`
/// sequences can be in flight (bounded by clients × outstanding requests),
/// no two live sequences collide in a slot.
///
/// Recovery additions: the next-to-execute *cursor* lives here (shared
/// between the execute stage and the worker) together with an execution
/// *gate* and an *epoch* counter. The execute stage holds the gate while
/// executing and advances the cursor under it; the worker takes the gate
/// to roll the cursor back (Zyzzyva mis-speculation) or jump it forward
/// (snapshot install), bumping the epoch so in-flight `Executed`
/// notifications from the displaced timeline are recognizably stale.
#[derive(Debug)]
pub struct ExecutionQueues {
    slots: Vec<Mutex<Vec<ExecuteItem>>>,
    ready: Vec<Condvar>,
    cursor: AtomicU64,
    epoch: AtomicU64,
    gate: Mutex<()>,
}

impl ExecutionQueues {
    /// Creates `qc` logical queues.
    ///
    /// # Panics
    /// Panics if `qc` is zero.
    pub fn new(qc: usize) -> Self {
        assert!(qc > 0, "need at least one execution queue");
        ExecutionQueues {
            slots: (0..qc).map(|_| Mutex::new(Vec::new())).collect(),
            ready: (0..qc).map(|_| Condvar::new()).collect(),
            cursor: AtomicU64::new(1),
            epoch: AtomicU64::new(0),
            gate: Mutex::new(()),
        }
    }

    /// The next sequence the execute stage should run.
    pub fn cursor(&self) -> SeqNum {
        SeqNum(self.cursor.load(Ordering::Acquire))
    }

    /// Advances the cursor (execute stage, under the gate).
    pub fn set_cursor(&self, next: SeqNum) {
        self.cursor.store(next.0, Ordering::Release);
    }

    /// The current execution epoch. Bumped by [`Self::repoint`]; an
    /// `Executed` notification carrying an older epoch refers to a
    /// rolled-back or superseded timeline and must be ignored.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Locks out the execute stage while the worker mutates execution
    /// state (rollback or snapshot install).
    pub fn gate(&self) -> parking_lot::MutexGuard<'_, ()> {
        self.gate.lock()
    }

    /// Moves the cursor to `next` and starts a new epoch. Caller must hold
    /// the [`Self::gate`].
    pub fn repoint(&self, next: SeqNum) {
        self.cursor.store(next.0, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Discards every parked item with `seq > above` (rolled-back
    /// speculative suffix — the engine re-emits the reconciled history).
    pub fn purge_above(&self, above: SeqNum) -> usize {
        let mut purged = 0;
        for slot in &self.slots {
            let mut s = slot.lock();
            let before = s.len();
            s.retain(|i| i.seq <= above);
            purged += before - s.len();
        }
        purged
    }

    /// Discards every parked item with `seq <= through` (history a
    /// freshly installed snapshot already covers).
    pub fn purge_through(&self, through: SeqNum) -> usize {
        let mut purged = 0;
        for slot in &self.slots {
            let mut s = slot.lock();
            let before = s.len();
            s.retain(|i| i.seq > through);
            purged += before - s.len();
        }
        purged
    }

    /// Number of logical queues (`QC`).
    pub fn qc(&self) -> usize {
        self.slots.len()
    }

    fn index(&self, seq: SeqNum) -> usize {
        (seq.0 % self.slots.len() as u64) as usize
    }

    /// Deposits the item for its sequence's slot (worker-thread side).
    ///
    /// `notify_one` suffices: the execute-thread design gives each slot at
    /// most one waiter (the thread blocked on exactly the next sequence in
    /// order), so waking "all" waiters was only ever waking that one — at
    /// the cost of a broadcast syscall per deposit.
    pub fn deposit(&self, item: ExecuteItem) {
        let idx = self.index(item.seq);
        self.slots[idx].lock().push(item);
        self.ready[idx].notify_one();
    }

    /// Waits up to `timeout` for the item of exactly `seq` (execute-thread
    /// side). This is the paper's trick: the execute-thread blocks on the
    /// one queue that will hold the next batch in order.
    pub fn take(&self, seq: SeqNum, timeout: Duration) -> Option<ExecuteItem> {
        let idx = self.index(seq);
        let mut slot = self.slots[idx].lock();
        loop {
            if let Some(pos) = slot.iter().position(|i| i.seq == seq) {
                return Some(slot.swap_remove(pos));
            }
            if self.ready[idx].wait_for(&mut slot, timeout).timed_out() {
                return None;
            }
        }
    }

    /// Non-blocking take: the item for exactly `seq`, if already deposited
    /// (the parallel coordinator uses this to widen its in-order window
    /// opportunistically).
    pub fn try_take(&self, seq: SeqNum) -> Option<ExecuteItem> {
        let idx = self.index(seq);
        let mut slot = self.slots[idx].lock();
        let pos = slot.iter().position(|i| i.seq == seq)?;
        Some(slot.swap_remove(pos))
    }

    /// Items waiting across all slots (for saturation metrics).
    pub fn depth(&self) -> usize {
        self.slots.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::messages::{Message, Sender};
    use rdb_common::{ClientId, SignatureBytes};
    use std::sync::Arc;

    fn item(seq: u64) -> ExecuteItem {
        ExecuteItem {
            seq: SeqNum(seq),
            view: ViewNum(0),
            digest: Digest::ZERO,
            batch: Arc::new(Batch::default()),
            certificate: BlockCertificate::default(),
            history: None,
        }
    }

    #[test]
    fn client_queue_fifo_and_counts() {
        let q = ClientRequestQueue::new();
        for i in 0..5u64 {
            q.push(SignedMessage::new(
                Message::ClientRequest { txns: vec![] },
                Sender::Client(ClientId(i)),
                SignatureBytes::empty(),
            ));
        }
        assert_eq!(q.depth(), 5);
        assert_eq!(q.total_enqueued(), 5);
        let first = q.pop().unwrap();
        assert_eq!(first.sender(), Sender::Client(ClientId(0)));
        assert_eq!(q.depth(), 4);
    }

    #[test]
    fn execution_take_exact_sequence() {
        let eq = ExecutionQueues::new(8);
        eq.deposit(item(2));
        eq.deposit(item(1));
        // Taking seq 1 ignores the parked seq 2.
        let got = eq.take(SeqNum(1), Duration::from_millis(100)).unwrap();
        assert_eq!(got.seq, SeqNum(1));
        let got = eq.take(SeqNum(2), Duration::from_millis(100)).unwrap();
        assert_eq!(got.seq, SeqNum(2));
        assert_eq!(eq.depth(), 0);
    }

    #[test]
    fn try_take_is_non_blocking_and_exact() {
        let eq = ExecutionQueues::new(8);
        assert!(eq.try_take(SeqNum(1)).is_none());
        eq.deposit(item(2));
        eq.deposit(item(1));
        assert_eq!(eq.try_take(SeqNum(1)).unwrap().seq, SeqNum(1));
        assert!(eq.try_take(SeqNum(1)).is_none());
        assert_eq!(eq.try_take(SeqNum(2)).unwrap().seq, SeqNum(2));
        assert_eq!(eq.depth(), 0);
    }

    #[test]
    fn take_times_out_when_absent() {
        let eq = ExecutionQueues::new(8);
        eq.deposit(item(5));
        assert!(eq.take(SeqNum(1), Duration::from_millis(20)).is_none());
        assert_eq!(eq.depth(), 1, "wrong-seq item stays parked");
    }

    #[test]
    fn colliding_slots_distinguished_by_seq() {
        // QC=4: seq 1 and seq 5 share slot 1.
        let eq = ExecutionQueues::new(4);
        eq.deposit(item(5));
        eq.deposit(item(1));
        assert_eq!(
            eq.take(SeqNum(1), Duration::from_millis(50)).unwrap().seq,
            SeqNum(1)
        );
        assert_eq!(
            eq.take(SeqNum(5), Duration::from_millis(50)).unwrap().seq,
            SeqNum(5)
        );
    }

    #[test]
    fn cross_thread_handoff() {
        let eq = Arc::new(ExecutionQueues::new(16));
        let eq2 = Arc::clone(&eq);
        let producer = std::thread::spawn(move || {
            for seq in (1..=50u64).rev() {
                eq2.deposit(item(seq));
            }
        });
        // Consume strictly in order despite reversed production.
        for seq in 1..=50u64 {
            let got = eq
                .take(SeqNum(seq), Duration::from_secs(2))
                .expect("item arrives");
            assert_eq!(got.seq, SeqNum(seq));
        }
        producer.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_queues_panics() {
        let _ = ExecutionQueues::new(0);
    }

    #[test]
    fn repoint_moves_cursor_and_bumps_epoch() {
        let eq = ExecutionQueues::new(8);
        assert_eq!(eq.cursor(), SeqNum(1));
        assert_eq!(eq.epoch(), 0);
        eq.set_cursor(SeqNum(5));
        assert_eq!(eq.cursor(), SeqNum(5));
        assert_eq!(eq.epoch(), 0, "normal advance keeps the epoch");
        let g = eq.gate();
        eq.repoint(SeqNum(3));
        drop(g);
        assert_eq!(eq.cursor(), SeqNum(3));
        assert_eq!(eq.epoch(), 1, "repoint starts a new epoch");
    }

    #[test]
    fn purge_drops_exactly_the_requested_range() {
        let eq = ExecutionQueues::new(4);
        for seq in 1..=6u64 {
            eq.deposit(item(seq));
        }
        assert_eq!(eq.purge_above(SeqNum(4)), 2, "5 and 6 dropped");
        assert_eq!(eq.depth(), 4);
        assert_eq!(eq.purge_through(SeqNum(2)), 2, "1 and 2 dropped");
        assert_eq!(eq.depth(), 2);
        assert!(eq.try_take(SeqNum(3)).is_some());
        assert!(eq.try_take(SeqNum(4)).is_some());
    }

    #[test]
    fn multi_deposit_into_one_slot_wakes_the_waiter_every_time() {
        // Regression for the notify_all → notify_one change: with QC=1
        // every deposit lands in the same slot, and the single waiter must
        // be woken for each of a rapid burst of deposits — a lost wakeup
        // would stall the take-loop until its timeout.
        let eq = Arc::new(ExecutionQueues::new(1));
        let eq2 = Arc::clone(&eq);
        let producer = std::thread::spawn(move || {
            // Burst several items into the slot, out of order, with no
            // pacing: the waiter is mid-wait for seq 1 while later seqs
            // pile into the same slot vector.
            for seq in [3u64, 1, 2, 5, 4] {
                eq2.deposit(item(seq));
            }
        });
        for seq in 1..=5u64 {
            let got = eq
                .take(SeqNum(seq), Duration::from_secs(5))
                .unwrap_or_else(|| panic!("waiter missed wakeup for seq {seq}"));
            assert_eq!(got.seq, SeqNum(seq));
        }
        producer.join().unwrap();
        assert_eq!(eq.depth(), 0);
    }
}
