//! Durable recovery: the typed write-ahead log and restart-from-disk
//! replay.
//!
//! `rdb_storage::wal` stores opaque checksummed byte records; this module
//! gives them meaning. Every committed batch appends a [`WalEntry::Commit`]
//! carrying the full [`ExecuteItem`] in the canonical `Wire` encoding (the
//! same codec every message crosses the network in, so the log format
//! needs no second serializer). Zyzzyva's speculative rewinds append
//! [`WalEntry::Rollback`] markers, and stable checkpoints append
//! [`WalEntry::Stable`] — together the log is a faithful transcript of the
//! execute-stage's state transitions.
//!
//! On restart, [`recover_replica`] rebuilds the replica from its data
//! directory alone: load the newest checkpoint snapshot that passes the
//! Merkle commitment check ([`crate::recovery::verify_snapshot`] — a
//! corrupt file degrades to replaying more WAL, or to the network path),
//! then re-execute the WAL suffix above the snapshot base through the
//! ordinary [`Executor`] so counters, dedup state, the undo log and the
//! ledger all regenerate exactly as they would have live. Under Zyzzyva
//! the replayed speculative tail above the last stable mark is rolled
//! back — it was never committed, and the reconciled history will be
//! re-learned from peers.
//!
//! Log compaction piggybacks on checkpoint stability: once a snapshot at
//! `base` is persisted, every entry at or below `base` is dead weight and
//! [`Durability::persist_stable`] rewrites the log without them. A crash
//! between the snapshot write and the compaction is safe — replay skips
//! entries the snapshot already covers.

use crate::executor::Executor;
use crate::queues::ExecuteItem;
use crate::recovery::verify_snapshot;
use rdb_common::block::BlockCertificate;
use rdb_common::codec::{Wire, WireReader, WireWriter};
use rdb_common::error::{CommonError, Result};
use rdb_common::{Batch, Digest, DurabilityConfig, FsyncMode, SeqNum, Snapshot, ViewNum};
use rdb_storage::wal::{FsyncPolicy, Wal};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One durable state transition of the execute stage.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEntry {
    /// A batch committed at `seq` — everything needed to re-execute it.
    Commit {
        /// Global sequence number.
        seq: SeqNum,
        /// View it was ordered in.
        view: ViewNum,
        /// Batch digest.
        digest: Digest,
        /// The ordered transactions.
        batch: Batch,
        /// PBFT's 2f+1 commit signatures (empty under Zyzzyva).
        certificate: BlockCertificate,
        /// Zyzzyva's rolling history digest after `seq` (`None` for PBFT).
        history: Option<Digest>,
    },
    /// Speculative execution was rewound so `to` is the last executed
    /// sequence (Zyzzyva view change / reconciliation).
    Rollback {
        /// The sequence execution rewound to.
        to: SeqNum,
    },
    /// The checkpoint at `seq` became 2f+1-stable: nothing at or below it
    /// can ever roll back.
    Stable {
        /// The stable checkpoint sequence.
        seq: SeqNum,
    },
}

const TAG_COMMIT: u8 = 1;
const TAG_ROLLBACK: u8 = 2;
const TAG_STABLE: u8 = 3;

impl WalEntry {
    /// The sequence this entry is about — compaction keeps entries whose
    /// sequence is above the persisted snapshot base.
    pub fn seq(&self) -> SeqNum {
        match self {
            WalEntry::Commit { seq, .. } | WalEntry::Stable { seq } => *seq,
            WalEntry::Rollback { to } => *to,
        }
    }
}

impl Wire for WalEntry {
    fn write(&self, w: &mut WireWriter) {
        match self {
            WalEntry::Commit {
                seq,
                view,
                digest,
                batch,
                certificate,
                history,
            } => {
                w.put_u8(TAG_COMMIT);
                w.put_u64(seq.0);
                w.put_u64(view.0);
                w.put_bytes(digest.as_bytes());
                match history {
                    Some(h) => {
                        w.put_u8(1);
                        w.put_bytes(h.as_bytes());
                    }
                    None => w.put_u8(0),
                }
                batch.write(w);
                certificate.write(w);
            }
            WalEntry::Rollback { to } => {
                w.put_u8(TAG_ROLLBACK);
                w.put_u64(to.0);
            }
            WalEntry::Stable { seq } => {
                w.put_u8(TAG_STABLE);
                w.put_u64(seq.0);
            }
        }
    }

    fn read(r: &mut WireReader<'_>) -> Result<Self> {
        match r.get_u8()? {
            TAG_COMMIT => {
                let seq = SeqNum(r.get_u64()?);
                let view = ViewNum(r.get_u64()?);
                let digest = Digest(r.get_array32()?);
                let history = match r.get_u8()? {
                    0 => None,
                    1 => Some(Digest(r.get_array32()?)),
                    other => {
                        return Err(CommonError::Codec(format!(
                            "bad history flag {other} in wal commit"
                        )))
                    }
                };
                let batch = Batch::read(r)?;
                let certificate = BlockCertificate::read(r)?;
                Ok(WalEntry::Commit {
                    seq,
                    view,
                    digest,
                    batch,
                    certificate,
                    history,
                })
            }
            TAG_ROLLBACK => Ok(WalEntry::Rollback {
                to: SeqNum(r.get_u64()?),
            }),
            TAG_STABLE => Ok(WalEntry::Stable {
                seq: SeqNum(r.get_u64()?),
            }),
            other => Err(CommonError::Codec(format!("unknown wal entry tag {other}"))),
        }
    }

    fn encoded_len(&self) -> usize {
        match self {
            WalEntry::Commit {
                batch,
                certificate,
                history,
                ..
            } => {
                1 + 8
                    + 8
                    + 32
                    + 1
                    + if history.is_some() { 32 } else { 0 }
                    + batch.encoded_len()
                    + certificate.encoded_len()
            }
            WalEntry::Rollback { .. } | WalEntry::Stable { .. } => 1 + 8,
        }
    }
}

/// Encodes a [`WalEntry::Commit`] for `item` without cloning the batch
/// out of its `Arc` — the commit path calls this once per batch, so the
/// copy matters. Byte-identical to encoding the owned entry (pinned by a
/// test below).
pub fn commit_entry_bytes(item: &ExecuteItem) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(
        1 + 8
            + 8
            + 32
            + 1
            + if item.history.is_some() { 32 } else { 0 }
            + item.batch.encoded_len()
            + item.certificate.encoded_len(),
    );
    w.put_u8(TAG_COMMIT);
    w.put_u64(item.seq.0);
    w.put_u64(item.view.0);
    w.put_bytes(item.digest.as_bytes());
    match &item.history {
        Some(h) => {
            w.put_u8(1);
            w.put_bytes(h.as_bytes());
        }
        None => w.put_u8(0),
    }
    item.batch.write(&mut w);
    item.certificate.write(&mut w);
    w.into_bytes()
}

/// Maps the config-level fsync mode onto the storage-level WAL policy.
fn policy_of(config: &DurabilityConfig) -> FsyncPolicy {
    match config.fsync {
        FsyncMode::Always => FsyncPolicy::Always,
        FsyncMode::Group => FsyncPolicy::Group(config.group_commit_window()),
        FsyncMode::Never => FsyncPolicy::Never,
    }
}

/// A replica's handle on its durable state: the open WAL plus the
/// directory its checkpoint snapshots persist into. Attached to the
/// [`Executor`] *after* replay so re-execution does not re-log itself.
pub struct Durability {
    wal: Wal,
    dir: PathBuf,
    /// Base sequence of the newest snapshot on disk (0 = none yet);
    /// guards against redundant persists of the same checkpoint.
    persisted_base: AtomicU64,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("dir", &self.dir)
            .field(
                "persisted_base",
                &self.persisted_base.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// What a replica found on disk at startup, before any of it is trusted.
#[derive(Debug)]
pub struct LocalState {
    /// The newest snapshot that loaded *and decoded* cleanly (Merkle
    /// verification happens in [`recover_replica`], not here).
    pub snapshot: Option<Snapshot>,
    /// Every decodable WAL entry, in log order; the scan already dropped
    /// any torn or checksum-corrupt tail.
    pub entries: Vec<WalEntry>,
}

impl Durability {
    /// Opens (or creates) the replica's durable state under `dir` and
    /// returns the handle plus whatever previous state survived on disk.
    ///
    /// # Errors
    /// Any I/O error creating the directory or opening the log. A corrupt
    /// snapshot or WAL tail is *not* an error — recovery degrades.
    pub fn open(dir: &Path, config: &DurabilityConfig) -> io::Result<(Self, LocalState)> {
        std::fs::create_dir_all(dir)?;
        let snapshot = newest_snapshot(dir);
        let (wal, recovered) = Wal::open(dir.join("wal.log"), policy_of(config))?;
        let mut entries = Vec::with_capacity(recovered.records.len());
        for record in &recovered.records {
            match WalEntry::decode(record) {
                Ok(entry) => entries.push(entry),
                // An undecodable record means the suffix was written by a
                // different version or corrupted in place (the checksum
                // only guards torn writes): everything after it is
                // unreliable, stop — exactly like a torn tail.
                Err(_) => break,
            }
        }
        let durability = Durability {
            wal,
            dir: dir.to_path_buf(),
            persisted_base: AtomicU64::new(snapshot.as_ref().map_or(0, |s| s.base_seq.0)),
        };
        Ok((durability, LocalState { snapshot, entries }))
    }

    /// Appends one entry to the log. Durability failure is a replica
    /// failure — a half-logged replica would lie to itself on restart.
    pub fn log(&self, entry: &WalEntry) {
        self.log_raw(&entry.encode());
    }

    /// Appends pre-encoded entry bytes (the commit hot path uses
    /// [`commit_entry_bytes`] to skip cloning the batch).
    pub fn log_raw(&self, bytes: &[u8]) {
        self.wal
            .append(bytes)
            .expect("wal append failed: durable state is unrecoverable");
    }

    /// Persists `snapshot` as the replica's newest stable checkpoint and
    /// compacts the WAL down to the suffix above its base. Skips silently
    /// if an equal-or-newer snapshot is already on disk.
    pub fn persist_stable(&self, snapshot: &Snapshot) {
        let base = snapshot.base_seq.0;
        if self.persisted_base.fetch_max(base, Ordering::Relaxed) >= base {
            return;
        }
        let path = self.dir.join(format!("snapshot-{base}.snap"));
        snapshot
            .save_to(&path)
            .expect("snapshot persist failed: durable state is unrecoverable");
        // Older snapshots are now superseded; best-effort cleanup.
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for f in dir.flatten() {
                if let Some(seq) = snapshot_seq_of(&f.path()) {
                    if seq < base {
                        let _ = std::fs::remove_file(f.path());
                    }
                }
            }
        }
        self.wal
            .rewrite_retain(|payload| match WalEntry::decode(payload) {
                Ok(entry) => entry.seq().0 > base,
                Err(_) => false,
            })
            .expect("wal compaction failed: durable state is unrecoverable");
    }

    /// Total WAL appends since open (bench/diagnostics).
    pub fn wal_appends(&self) -> u64 {
        self.wal.appends()
    }

    /// Total fsyncs the WAL issued since open (bench/diagnostics).
    pub fn wal_syncs(&self) -> u64 {
        self.wal.syncs()
    }
}

/// Parses `snapshot-<seq>.snap` file names.
fn snapshot_seq_of(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("snapshot-")?
        .strip_suffix(".snap")?
        .parse()
        .ok()
}

/// Loads the newest snapshot in `dir` that decodes cleanly, trying
/// candidates newest-first so one corrupt file falls back to its
/// predecessor instead of the network.
fn newest_snapshot(dir: &Path) -> Option<Snapshot> {
    let mut seqs: Vec<u64> = std::fs::read_dir(dir)
        .ok()?
        .flatten()
        .filter_map(|f| snapshot_seq_of(&f.path()))
        .collect();
    seqs.sort_unstable();
    while let Some(seq) = seqs.pop() {
        if let Ok(snap) = Snapshot::load_from(&dir.join(format!("snapshot-{seq}.snap"))) {
            return Some(snap);
        }
    }
    None
}

/// Where a restarted replica's state came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// Rebuilt from the local data directory (snapshot and/or WAL).
    Local,
    /// Nothing usable on disk — the replica starts from genesis and the
    /// existing network state-transfer path fills the gap.
    None,
}

impl RecoverySource {
    /// Stable lowercase name for log lines.
    pub fn name(self) -> &'static str {
        match self {
            RecoverySource::Local => "local",
            RecoverySource::None => "none",
        }
    }
}

/// What [`recover_replica`] rebuilt, for the caller's log line and the
/// consensus engine's re-basing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Where the state came from.
    pub source: RecoverySource,
    /// Base sequence of the installed snapshot (0 = none).
    pub snapshot_seq: SeqNum,
    /// Batches re-executed from the WAL suffix (net of rollbacks).
    pub replayed_batches: u64,
    /// Distinct transactions re-executed from the WAL suffix.
    pub replayed_txns: u64,
    /// Last executed sequence after recovery — consensus resumes at
    /// `head + 1`.
    pub head: SeqNum,
    /// Zyzzyva's rolling history digest at `head` ([`Digest::ZERO`] under
    /// PBFT).
    pub history: Digest,
    /// The stable-checkpoint floor recovery proved (snapshot base or a
    /// later `Stable` marker).
    pub stable: SeqNum,
}

/// Rebuilds `executor` from the data directory and attaches durability to
/// it, so every later commit extends the same log.
///
/// The sequence is: install the newest Merkle-verified snapshot, replay
/// the WAL suffix above its base through the ordinary execute path
/// (stopping at the first sequence gap — a compacted log whose snapshot
/// was lost cannot replay and degrades to the network), honor `Rollback`
/// and `Stable` markers in log order, and finally rewind any speculative
/// tail above the stable floor (a no-op under PBFT, which never keeps
/// undo records). Only then is the WAL handed to the executor.
///
/// # Errors
/// Any I/O error opening the directory or log; corruption is degraded
/// around, not returned.
pub fn recover_replica(
    executor: &Executor,
    dir: &Path,
    config: &DurabilityConfig,
) -> io::Result<(Arc<Durability>, RecoveryReport)> {
    let (durability, state) = Durability::open(dir, config)?;
    let txns_before = executor.executed_txns();
    let batches_before = executor.executed_batches();

    let mut base = SeqNum(0);
    let mut history_at: BTreeMap<SeqNum, Digest> = BTreeMap::new();
    let mut source = RecoverySource::None;
    if let Some(snapshot) = &state.snapshot {
        // The same gate a network snapshot passes: records must hash back
        // to the block's Merkle commitment.
        if verify_snapshot(snapshot) {
            executor.install_snapshot(snapshot);
            base = snapshot.base_seq;
            history_at.insert(base, snapshot.history);
            source = RecoverySource::Local;
        }
    }

    let mut last = base;
    let mut stable = base;
    for entry in state.entries {
        match entry {
            WalEntry::Commit {
                seq,
                view,
                digest,
                batch,
                certificate,
                history,
            } => {
                if seq.0 <= base.0 {
                    // Covered by the snapshot (crash between snapshot
                    // persist and log compaction).
                    continue;
                }
                if seq.0 != last.0 + 1 {
                    // A gap means the prefix this suffix builds on is
                    // gone; nothing after it can be trusted either.
                    break;
                }
                let item = ExecuteItem {
                    seq,
                    view,
                    digest,
                    batch: Arc::new(batch),
                    certificate,
                    history,
                };
                executor.execute(&item);
                history_at.insert(seq, history.unwrap_or(Digest::ZERO));
                last = seq;
                source = RecoverySource::Local;
            }
            WalEntry::Rollback { to } => {
                if to.0 < last.0 {
                    executor.rollback_to(to);
                    history_at.split_off(&SeqNum(to.0 + 1));
                    last = to;
                }
            }
            WalEntry::Stable { seq } => {
                if seq.0 > stable.0 {
                    stable = seq;
                    executor.prune_undo(seq);
                }
            }
        }
    }

    // A speculative suffix above the stable floor was never committed;
    // the live run may have rewound it after our last log record. Replay
    // conservatively forgets it (PBFT keeps no undo records, so this
    // rewinds nothing there).
    if executor.rollback_to(stable) > 0 {
        history_at.split_off(&SeqNum(stable.0 + 1));
        last = stable;
    }

    let history = history_at
        .range(..=last)
        .next_back()
        .map_or(Digest::ZERO, |(_, h)| *h);
    let report = RecoveryReport {
        source,
        snapshot_seq: base,
        replayed_batches: executor.executed_batches() - batches_before,
        replayed_txns: executor.executed_txns() - txns_before,
        head: last,
        history,
        stable,
    };
    let durability = Arc::new(durability);
    executor.set_durability(Arc::clone(&durability));
    Ok((durability, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use rdb_common::{Batch, ClientId, Operation, ProtocolKind, ReplicaId, Transaction};
    use rdb_storage::blockchain::ChainMode;
    use rdb_storage::{Blockchain, MemStore, StateStore};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rdb-durable-test-{}-{name}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock")
                .subsec_nanos()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn item(seq: u64, tag: u8, zyzzyva: bool) -> ExecuteItem {
        let batch: Batch = (0..3u64)
            .map(|i| {
                Transaction::new(
                    ClientId(seq * 100 + i),
                    tag as u64,
                    vec![Operation::Write {
                        key: 10 + i,
                        value: vec![tag, seq as u8, i as u8],
                    }],
                )
            })
            .collect();
        ExecuteItem {
            seq: SeqNum(seq),
            view: ViewNum(0),
            digest: Digest([tag ^ seq as u8; 32]),
            batch: Arc::new(batch),
            certificate: BlockCertificate::default(),
            history: zyzzyva.then_some(Digest([seq as u8 | 0x40; 32])),
        }
    }

    fn fresh_executor(protocol: ProtocolKind) -> Executor {
        let store: Arc<dyn StateStore> = Arc::new(MemStore::new());
        let mode = match protocol {
            ProtocolKind::Pbft => ChainMode::Certificate,
            ProtocolKind::Zyzzyva => ChainMode::PrevHash,
        };
        let chain = Arc::new(Mutex::new(Blockchain::new(Digest::ZERO, 0, mode)));
        Executor::new(ReplicaId(1), protocol, store, chain)
    }

    fn config() -> DurabilityConfig {
        DurabilityConfig {
            fsync: FsyncMode::Never, // tests survive process exit, not power loss
            ..DurabilityConfig::default()
        }
    }

    #[test]
    fn wal_entries_round_trip_and_match_the_hot_path_encoder() {
        let it = item(7, 3, true);
        let commit = WalEntry::Commit {
            seq: it.seq,
            view: it.view,
            digest: it.digest,
            batch: (*it.batch).clone(),
            certificate: it.certificate.clone(),
            history: it.history,
        };
        for entry in [
            commit.clone(),
            WalEntry::Rollback { to: SeqNum(4) },
            WalEntry::Stable { seq: SeqNum(8) },
        ] {
            let bytes = entry.encode();
            assert_eq!(bytes.len(), entry.encoded_len());
            assert_eq!(WalEntry::decode(&bytes).unwrap(), entry);
        }
        assert_eq!(
            commit_entry_bytes(&it),
            commit.encode(),
            "zero-clone encoder must stay byte-identical"
        );
        // PBFT commits (no history) take the other flag branch.
        let it = item(2, 1, false);
        let decoded = WalEntry::decode(&commit_entry_bytes(&it)).unwrap();
        assert!(matches!(decoded, WalEntry::Commit { history: None, .. }));
    }

    #[test]
    fn pbft_restart_replays_the_wal_suffix() {
        let dir = tmp("pbft-replay");
        let live = fresh_executor(ProtocolKind::Pbft);
        let (_, report) = recover_replica(&live, &dir, &config()).expect("first boot");
        assert_eq!(report.source, RecoverySource::None, "empty data dir");
        assert_eq!(report.head, SeqNum(0));
        for seq in 1..=4 {
            live.execute(&item(seq, seq as u8, false));
        }
        let digest = live.store().state_digest();
        let (txns, batches) = (live.executed_txns(), live.executed_batches());
        drop(live); // process death; the WAL handle closes

        let reborn = fresh_executor(ProtocolKind::Pbft);
        let (_, report) = recover_replica(&reborn, &dir, &config()).expect("restart");
        assert_eq!(report.source, RecoverySource::Local);
        assert_eq!(report.snapshot_seq, SeqNum(0), "no checkpoint yet: all WAL");
        assert_eq!(report.head, SeqNum(4));
        assert_eq!(report.replayed_batches, 4);
        assert_eq!(report.replayed_txns, txns);
        assert_eq!(reborn.store().state_digest(), digest);
        assert_eq!(reborn.executed_batches(), batches);
        // Execution continues seamlessly and stays digest-equal with a
        // replica that never died.
        let survivor = fresh_executor(ProtocolKind::Pbft);
        for seq in 1..=5 {
            survivor.execute(&item(seq, seq as u8, false));
        }
        reborn.execute(&item(5, 5, false));
        assert_eq!(
            reborn.store().state_digest(),
            survivor.store().state_digest()
        );
    }

    #[test]
    fn stable_checkpoint_persists_a_snapshot_and_compacts_the_wal() {
        let dir = tmp("checkpoint");
        let live = fresh_executor(ProtocolKind::Pbft);
        let (durability, _) = recover_replica(&live, &dir, &config()).expect("boot");
        live.set_snapshot_interval(2);
        for seq in 1..=5 {
            live.execute(&item(seq, seq as u8, false));
        }
        assert_eq!(durability.wal_appends(), 5);
        live.note_stable(SeqNum(4));
        assert!(
            dir.join("snapshot-4.snap").exists(),
            "latest captured snapshot (base 4) persisted"
        );
        let digest = live.store().state_digest();
        drop(live);

        let reborn = fresh_executor(ProtocolKind::Pbft);
        let (_, report) = recover_replica(&reborn, &dir, &config()).expect("restart");
        assert_eq!(report.source, RecoverySource::Local);
        assert_eq!(report.snapshot_seq, SeqNum(4));
        assert_eq!(report.replayed_batches, 1, "only seq 5 is above the base");
        assert_eq!(report.head, SeqNum(5));
        assert_eq!(report.stable, SeqNum(4));
        assert_eq!(reborn.store().state_digest(), digest);
        assert_eq!(
            reborn.executed_batches(),
            1,
            "transferred history is installed, not re-executed"
        );
    }

    #[test]
    fn zyzzyva_discards_the_unstable_speculative_tail() {
        let dir = tmp("zyz-tail");
        let live = fresh_executor(ProtocolKind::Zyzzyva);
        let (_, _) = recover_replica(&live, &dir, &config()).expect("boot");
        live.execute(&item(1, 1, true));
        live.note_stable(SeqNum(1));
        let stable_digest = live.store().state_digest();
        // A speculative suffix that never reached a stable checkpoint.
        live.execute(&item(2, 66, true));
        live.execute(&item(3, 66, true));
        drop(live);

        let reborn = fresh_executor(ProtocolKind::Zyzzyva);
        let (_, report) = recover_replica(&reborn, &dir, &config()).expect("restart");
        assert_eq!(
            report.head,
            SeqNum(1),
            "tail above the stable floor rewound"
        );
        assert_eq!(report.stable, SeqNum(1));
        assert_eq!(
            report.history,
            Digest([1 | 0x40; 32]),
            "history at the floor"
        );
        assert_eq!(reborn.store().state_digest(), stable_digest);
        assert_eq!(reborn.executed_batches(), 1, "net of the rewind");
    }

    #[test]
    fn logged_rollbacks_replay_in_order() {
        let dir = tmp("rollback");
        let live = fresh_executor(ProtocolKind::Zyzzyva);
        let (_, _) = recover_replica(&live, &dir, &config()).expect("boot");
        live.execute(&item(1, 1, true));
        live.execute(&item(2, 66, true)); // mis-speculation
        live.rollback_to(SeqNum(1)); // logs a Rollback marker
        live.execute(&item(2, 2, true)); // reconciled history
        live.note_stable(SeqNum(2));
        let digest = live.store().state_digest();
        drop(live);

        let reborn = fresh_executor(ProtocolKind::Zyzzyva);
        let (_, report) = recover_replica(&reborn, &dir, &config()).expect("restart");
        assert_eq!(report.head, SeqNum(2));
        assert_eq!(
            reborn.store().state_digest(),
            digest,
            "rewind replayed exactly"
        );
    }

    #[test]
    fn corrupt_snapshot_degrades_to_the_network_path() {
        let dir = tmp("corrupt");
        let live = fresh_executor(ProtocolKind::Pbft);
        let (_, _) = recover_replica(&live, &dir, &config()).expect("boot");
        live.set_snapshot_interval(2);
        for seq in 1..=3 {
            live.execute(&item(seq, seq as u8, false));
        }
        live.note_stable(SeqNum(2)); // snapshot-2 persisted, WAL keeps only seq 3
        drop(live);
        // Bit rot takes the snapshot out; the compacted WAL alone cannot
        // rebuild (its suffix starts above genesis).
        let snap_path = dir.join("snapshot-2.snap");
        let mut bytes = std::fs::read(&snap_path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&snap_path, &bytes).expect("write");

        let reborn = fresh_executor(ProtocolKind::Pbft);
        let (_, report) = recover_replica(&reborn, &dir, &config()).expect("restart");
        assert_eq!(report.source, RecoverySource::None, "nothing trustworthy");
        assert_eq!(report.head, SeqNum(0));
        assert_eq!(reborn.executed_batches(), 0, "no partial state installed");
    }

    #[test]
    fn snapshot_files_rotate() {
        let dir = tmp("rotate");
        let live = fresh_executor(ProtocolKind::Pbft);
        let (_, _) = recover_replica(&live, &dir, &config()).expect("boot");
        live.set_snapshot_interval(2);
        for seq in 1..=2 {
            live.execute(&item(seq, seq as u8, false));
        }
        live.note_stable(SeqNum(2));
        for seq in 3..=4 {
            live.execute(&item(seq, seq as u8, false));
        }
        live.note_stable(SeqNum(4));
        assert!(dir.join("snapshot-4.snap").exists());
        assert!(
            !dir.join("snapshot-2.snap").exists(),
            "superseded snapshot removed"
        );
    }
}
