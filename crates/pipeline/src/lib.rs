//! The threaded replica runtime: ResilientDB's multi-threaded deep
//! pipeline (Section 4 of the paper) over real OS threads.
//!
//! Each replica runs dedicated stage threads — input, batch (primary),
//! worker, execute, checkpoint, output — connected by queues:
//!
//! - [`queues::ClientRequestQueue`] — the lock-free common queue feeding
//!   the batch-threads.
//! - [`queues::ExecutionQueues`] — the `QC`-slot logical queue array that
//!   lets the execute-thread wait on *exactly* the next sequence number.
//! - [`metrics`] — per-thread busy-time tracking, producing the saturation
//!   percentages of Figure 9.
//! - [`executor`] — ordered execution, block creation, client replies.
//! - [`durable`] — the typed write-ahead log and restart-from-disk
//!   replay behind the recovery path.
//! - [`replica`] — [`spawn_replica`] wires it all together.
//!
//! Thread counts are configuration (`ThreadConfig`), so the paper's
//! `0E 0B` → `1E 2B` progression (Figure 8) is a parameter sweep, not a
//! code change.

pub mod durable;
pub mod executor;
pub mod metrics;
pub mod queues;
pub mod recovery;
pub mod replica;
pub mod scheduler;

pub use durable::{recover_replica, Durability, RecoveryReport, RecoverySource, WalEntry};
pub use executor::{execute_txn, Executor, OutItem, TxnOutcome};
pub use metrics::{MetricsRegistry, SaturationReport, Stage, StageRecorder, ThreadSaturation};
pub use queues::{ClientRequestQueue, ExecuteItem, ExecutionQueues};
pub use replica::{spawn_replica, ReplicaHandle, ReplicaShared};
pub use scheduler::{conflict_waves, ExecPool, ParallelExecutor};
