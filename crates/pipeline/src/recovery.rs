//! Requester-side validation for the fetch/state-transfer protocol.
//!
//! A `FetchResponse` is only as trustworthy as the ordering proof it
//! carries: under PBFT that is the responder's 2f+1 commit-signature
//! certificate, re-verified here signature by signature before the batch
//! is installed. Under Zyzzyva (and for certificates whose votes span a
//! view change) the certificate cannot be checked offline, so the worker
//! falls back to demanding f+1 *distinct* peers return byte-identical
//! responses — at least one of them is honest. Snapshots are
//! self-committing: the transferred records must hash back (via the same
//! sparse Merkle commitment the store maintains incrementally) to the
//! state commitment in the snapshot's chain block, and the worker
//! additionally requires f+1 peers to agree on that commitment before
//! installing. The Merkle root replaced PR 9's XOR fold here: a Byzantine
//! responder can assemble record sets that cancel under XOR, but not ones
//! that collide a SHA-256 tree.

use rdb_common::block::BlockCertificate;
use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::{Digest, ReplicaId, SeqNum, Snapshot, ViewNum};
use rdb_crypto::CryptoProvider;
use rdb_storage::merkle::commitment_of;
use std::collections::HashSet;

/// Re-verifies a fetched commit certificate: counts distinct replicas
/// whose signature checks out over the exact bytes they would have signed
/// broadcasting `Commit { view, seq, digest }`, and accepts when at least
/// `quorum` (= 2f+1) did. The responder's own empty-signature placeholder
/// counts — its vote is vouched for by the (already verified) envelope
/// signature on the `FetchResponse` itself.
pub fn verify_fetch_certificate(
    provider: &CryptoProvider,
    quorum: usize,
    responder: ReplicaId,
    view: ViewNum,
    seq: SeqNum,
    digest: Digest,
    certificate: &BlockCertificate,
) -> bool {
    if certificate.signer_count() < quorum {
        return false;
    }
    let commit = Message::Commit { view, seq, digest };
    let mut valid: HashSet<ReplicaId> = HashSet::new();
    for (rid, sig) in &certificate.commits {
        if valid.contains(rid) {
            continue;
        }
        if *rid == responder && sig.as_ref().is_empty() {
            valid.insert(*rid);
            continue;
        }
        let bytes = SignedMessage::signing_bytes_for(Sender::Replica(*rid), &commit);
        if provider.verify(Sender::Replica(*rid), &bytes, sig) {
            valid.insert(*rid);
        }
    }
    valid.len() >= quorum
}

/// Checks a snapshot's internal consistency: the transferred records must
/// rebuild to exactly the Merkle state commitment recorded in its chain
/// block, and the block must sit at the claimed base sequence. Peer
/// agreement (f+1 matching [`Snapshot::agreement_key`]s) is the caller's
/// job — this only proves the payload matches what the responder committed
/// to. The same check gates snapshots loaded from local disk on restart,
/// so a corrupt or stale data directory degrades to the network path
/// instead of installing bad state.
pub fn verify_snapshot(snapshot: &Snapshot) -> bool {
    if snapshot.block.seq != snapshot.base_seq {
        return false;
    }
    let rebuilt = commitment_of(snapshot.records.iter().map(|(k, v)| (*k, v.as_slice())));
    rebuilt == snapshot.block.result_digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::block::{Block, BlockLink};
    use rdb_common::CryptoScheme;
    use rdb_common::SignatureBytes;
    use rdb_crypto::{KeyRegistry, PeerClass};
    use rdb_storage::{MemStore, StateStore};

    fn commit_sig(
        registry: &KeyRegistry,
        rid: ReplicaId,
        view: ViewNum,
        seq: SeqNum,
        digest: Digest,
    ) -> (ReplicaId, SignatureBytes) {
        let commit = Message::Commit { view, seq, digest };
        let bytes = SignedMessage::signing_bytes_for(Sender::Replica(rid), &commit);
        let sig = registry
            .provider_for_replica(rid)
            .sign(PeerClass::Replica, &bytes);
        (rid, sig)
    }

    fn setup() -> (KeyRegistry, CryptoProvider) {
        let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 1, 7);
        let requester = registry.provider_for_replica(ReplicaId(3));
        (registry, requester)
    }

    const VIEW: ViewNum = ViewNum(0);
    const SEQ: SeqNum = SeqNum(5);
    const D: Digest = Digest([9; 32]);

    #[test]
    fn accepts_a_genuine_quorum_certificate() {
        let (registry, requester) = setup();
        let cert = BlockCertificate::new(
            (0..3)
                .map(|r| commit_sig(&registry, ReplicaId(r), VIEW, SEQ, D))
                .collect(),
        );
        assert!(verify_fetch_certificate(
            &requester,
            3,
            ReplicaId(0),
            VIEW,
            SEQ,
            D,
            &cert
        ));
    }

    #[test]
    fn counts_the_responders_vouched_placeholder() {
        let (registry, requester) = setup();
        let mut commits = vec![(ReplicaId(0), SignatureBytes::empty())];
        commits.extend((1..3).map(|r| commit_sig(&registry, ReplicaId(r), VIEW, SEQ, D)));
        let cert = BlockCertificate::new(commits);
        assert!(verify_fetch_certificate(
            &requester,
            3,
            ReplicaId(0),
            VIEW,
            SEQ,
            D,
            &cert
        ));
        // The same empty signature attributed to a replica that is NOT the
        // responder is just a missing vote.
        assert!(!verify_fetch_certificate(
            &requester,
            3,
            ReplicaId(2),
            VIEW,
            SEQ,
            D,
            &cert
        ));
    }

    #[test]
    fn rejects_forged_signatures() {
        let (registry, requester) = setup();
        let mut commits: Vec<(ReplicaId, SignatureBytes)> = (0..3)
            .map(|r| commit_sig(&registry, ReplicaId(r), VIEW, SEQ, D))
            .collect();
        // A byzantine server flips a byte in one vote: the quorum no
        // longer holds.
        commits[2].1 .0[0] ^= 0xff;
        let cert = BlockCertificate::new(commits);
        assert!(!verify_fetch_certificate(
            &requester,
            3,
            ReplicaId(0),
            VIEW,
            SEQ,
            D,
            &cert
        ));
    }

    #[test]
    fn rejects_signatures_over_a_different_decision() {
        let (registry, requester) = setup();
        // Votes for a different digest cannot certify this one.
        let cert = BlockCertificate::new(
            (0..3)
                .map(|r| commit_sig(&registry, ReplicaId(r), VIEW, SEQ, Digest([1; 32])))
                .collect(),
        );
        assert!(!verify_fetch_certificate(
            &requester,
            3,
            ReplicaId(0),
            VIEW,
            SEQ,
            D,
            &cert
        ));
    }

    #[test]
    fn rejects_insufficient_and_duplicated_signers() {
        let (registry, requester) = setup();
        let two: Vec<_> = (0..2)
            .map(|r| commit_sig(&registry, ReplicaId(r), VIEW, SEQ, D))
            .collect();
        assert!(!verify_fetch_certificate(
            &requester,
            3,
            ReplicaId(0),
            VIEW,
            SEQ,
            D,
            &BlockCertificate::new(two.clone())
        ));
        // Padding with a duplicate of an existing signer must not reach
        // quorum either.
        let mut padded = two;
        padded.push(padded[0].clone());
        assert!(!verify_fetch_certificate(
            &requester,
            3,
            ReplicaId(0),
            VIEW,
            SEQ,
            D,
            &BlockCertificate::new(padded)
        ));
    }

    fn snapshot_over(records: Vec<(u64, Vec<u8>)>) -> Snapshot {
        let store = MemStore::new();
        for (k, v) in &records {
            store.put(*k, v);
        }
        Snapshot {
            base_seq: SeqNum(8),
            block: Block {
                seq: SeqNum(8),
                digest: Digest([1; 32]),
                view: ViewNum(0),
                link: BlockLink::Hash(Digest([2; 32])),
                txn_count: 3,
                result_digest: store.state_digest(),
            },
            history: Digest::ZERO,
            records,
        }
    }

    #[test]
    fn snapshot_records_must_hash_to_the_block_commitment() {
        let snap = snapshot_over(vec![(1, vec![7; 8]), (2, vec![5; 4])]);
        assert!(verify_snapshot(&snap));

        let mut tampered = snap.clone();
        tampered.records[0].1[0] ^= 1;
        assert!(!verify_snapshot(&tampered), "altered value detected");

        let mut truncated = snap.clone();
        truncated.records.pop();
        assert!(!verify_snapshot(&truncated), "missing record detected");

        let mut relocated = snap;
        relocated.base_seq = SeqNum(9);
        assert!(!verify_snapshot(&relocated), "block/base mismatch detected");
    }
}
