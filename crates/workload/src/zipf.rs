//! Zipfian key-selection (the YCSB generator of Gray et al., "Quickly
//! generating billion-record synthetic databases").

use rand::Rng;

/// Zipfian distribution over `0..n` with skew parameter θ.
///
/// θ = 0 degenerates to uniform; YCSB's default is 0.99; the paper's setup
/// describes a "uniform Zipfian" workload which we model with a moderate
/// θ = 0.9 default in [`crate::WorkloadConfig`].
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
}

impl Zipfian {
    /// Creates a generator over `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0` or θ is not in `[0, 1)` ∪ `(1, ∞)` (θ = 1 makes
    /// the normalization singular).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "domain must be non-empty");
        assert!(
            theta >= 0.0 && (theta - 1.0).abs() > 1e-9,
            "theta must be >= 0 and != 1"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For large n, the sum converges slowly; cap the exact sum and
        // approximate the tail with the integral — adequate for key
        // selection skew (YCSB itself caches the constant).
        const EXACT: u64 = 100_000;
        let exact_n = n.min(EXACT);
        let mut sum = 0.0;
        for i in 1..=exact_n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > EXACT && theta < 1.0 {
            // ∫ x^-θ dx from EXACT to n
            sum +=
                ((n as f64).powf(1.0 - theta) - (EXACT as f64).powf(1.0 - theta)) / (1.0 - theta);
        }
        sum
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Draws the next key.
    pub fn next(&self, rng: &mut impl Rng) -> u64 {
        if self.theta == 0.0 {
            return rng.gen_range(0..self.n);
        }
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.n as f64 - 1.0) * spread) as u64 % self.n
    }

    /// The precomputed ζ(2, θ), exposed for testing the cached constants.
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_keys_in_domain() {
        let z = Zipfian::new(1000, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipfian::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[z.next(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts={counts:?}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_keys() {
        let z = Zipfian::new(10_000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut hot = 0;
        const DRAWS: u32 = 100_000;
        for _ in 0..DRAWS {
            if z.next(&mut rng) < 100 {
                hot += 1;
            }
        }
        // Under uniform, 1% of draws hit the first 100 keys; Zipf(0.99)
        // sends a large share there.
        assert!(hot > DRAWS / 4, "hot={hot}");
    }

    #[test]
    fn higher_theta_more_skew() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits_at = |theta: f64, rng: &mut StdRng| {
            let z = Zipfian::new(10_000, theta);
            (0..50_000).filter(|_| z.next(rng) == 0).count()
        };
        let mild = hits_at(0.5, &mut rng);
        let strong = hits_at(0.99, &mut rng);
        assert!(strong > mild, "strong={strong} mild={mild}");
    }

    #[test]
    fn large_domain_constructs_quickly() {
        // 600K records like the paper's table: must not take noticeable time.
        let z = Zipfian::new(600_000, 0.9);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            assert!(z.next(&mut rng) < 600_000);
        }
        assert!(z.zeta2() > 0.0);
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn zero_domain_panics() {
        let _ = Zipfian::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta must be")]
    fn theta_one_panics() {
        let _ = Zipfian::new(10, 1.0);
    }
}
