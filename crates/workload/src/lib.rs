//! YCSB-style workload generation (Cooper et al., SoCC'10), as used in the
//! paper's evaluation: a 600K-record table indexed with Zipfian-distributed
//! keys, write-only transactions (most blockchain requests are updates),
//! configurable operations per transaction (Figure 11) and payload bytes
//! per transaction (Figure 12).
//!
//! # Example
//!
//! ```
//! use rdb_workload::{WorkloadConfig, WorkloadGenerator};
//! use rdb_common::ClientId;
//!
//! let mut gen = WorkloadGenerator::new(WorkloadConfig::default(), 42);
//! let txn = gen.next_transaction(ClientId(0));
//! assert_eq!(txn.ops.len(), 1);
//! ```

pub mod zipf;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rdb_common::{Batch, ClientId, Operation, Transaction};
use std::collections::HashMap;
use zipf::Zipfian;

/// Parameters of the YCSB-style workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// Records in the table (paper: 600K active records).
    pub table_size: u64,
    /// Operations per transaction (Figure 11 sweeps 1..50).
    pub ops_per_txn: usize,
    /// Fraction of operations that are writes (paper: 1.0 — all updates).
    pub write_ratio: f64,
    /// Value bytes written by each write operation.
    pub value_size: usize,
    /// Extra opaque payload bytes per transaction (Figure 12).
    pub payload_bytes: usize,
    /// Zipfian skew parameter θ (0 = uniform).
    pub zipf_theta: f64,
    /// Fraction of operations redirected to the hot-key set. `0.0`
    /// (the default) leaves key choice purely Zipfian; `1.0` sends every
    /// operation to one of [`WorkloadConfig::hot_keys`] keys, forcing the
    /// conflict scheduler to serialize almost everything. The knob lets
    /// benchmarks sweep contention independently of the Zipf skew.
    pub conflict_ratio: f64,
    /// Size of the hot-key set targeted by conflicting operations.
    pub hot_keys: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            table_size: 600_000,
            ops_per_txn: 1,
            write_ratio: 1.0,
            value_size: 8,
            payload_bytes: 0,
            zipf_theta: 0.9,
            conflict_ratio: 0.0,
            hot_keys: 16,
        }
    }
}

/// Deterministic transaction generator for a population of clients.
///
/// Each client has its own request counter so transaction ids are unique;
/// key selection shares one Zipfian stream, like a YCSB driver process.
#[derive(Debug)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: StdRng,
    zipf: Zipfian,
    counters: HashMap<ClientId, u64>,
}

impl WorkloadGenerator {
    /// Creates a generator with the given config and seed.
    pub fn new(config: WorkloadConfig, seed: u64) -> Self {
        let zipf = Zipfian::new(config.table_size, config.zipf_theta);
        WorkloadGenerator {
            config,
            rng: StdRng::seed_from_u64(seed),
            zipf,
            counters: HashMap::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Generates the next transaction for `client`.
    pub fn next_transaction(&mut self, client: ClientId) -> Transaction {
        let counter = self.counters.entry(client).or_insert(0);
        let this_counter = *counter;
        *counter += 1;
        let mut ops = Vec::with_capacity(self.config.ops_per_txn);
        for _ in 0..self.config.ops_per_txn {
            // The contention knob short-circuits the Zipfian stream only
            // when active, so `conflict_ratio: 0.0` consumes exactly the
            // randomness the pre-knob generator did.
            let key = if self.config.conflict_ratio > 0.0
                && self.rng.gen_bool(self.config.conflict_ratio.min(1.0))
            {
                self.rng
                    .gen_range(0..self.config.hot_keys.clamp(1, self.config.table_size))
            } else {
                self.zipf.next(&mut self.rng)
            };
            if self.rng.gen_bool(self.config.write_ratio) {
                let mut value = vec![0u8; self.config.value_size];
                self.rng.fill(&mut value[..]);
                ops.push(Operation::Write { key, value });
            } else {
                ops.push(Operation::Read { key });
            }
        }
        let mut txn = Transaction::new(client, this_counter, ops);
        if self.config.payload_bytes > 0 {
            // The paper pads Pre-prepare messages with 8-byte integers; the
            // content is irrelevant, only the size matters.
            let mut payload = vec![0u8; self.config.payload_bytes];
            self.rng.fill(&mut payload[..]);
            txn = txn.with_payload(payload);
        }
        txn
    }

    /// Generates a client-side batch of `n` transactions from one client
    /// (stock-trading style bursts, Section 4.2).
    pub fn next_client_batch(&mut self, client: ClientId, n: usize) -> Vec<Transaction> {
        (0..n).map(|_| self.next_transaction(client)).collect()
    }

    /// Generates a full consensus batch drawing one transaction from each
    /// of `batch_size` round-robin clients, mirroring the primary's
    /// batch-threads pulling from the shared queue.
    pub fn next_batch(&mut self, clients: &[ClientId], batch_size: usize) -> Batch {
        assert!(!clients.is_empty(), "need at least one client");
        (0..batch_size)
            .map(|i| self.next_transaction(clients[i % clients.len()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transactions_have_unique_increasing_ids() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default(), 1);
        let t0 = g.next_transaction(ClientId(5));
        let t1 = g.next_transaction(ClientId(5));
        let t2 = g.next_transaction(ClientId(6));
        assert_eq!(t0.id.counter, 0);
        assert_eq!(t1.id.counter, 1);
        assert_eq!(t2.id.counter, 0);
        assert_ne!(t0.id, t1.id);
    }

    #[test]
    fn ops_per_txn_respected() {
        let cfg = WorkloadConfig {
            ops_per_txn: 10,
            ..Default::default()
        };
        let mut g = WorkloadGenerator::new(cfg, 1);
        let t = g.next_transaction(ClientId(0));
        assert_eq!(t.op_count(), 10);
    }

    #[test]
    fn write_only_by_default() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default(), 1);
        for _ in 0..100 {
            let t = g.next_transaction(ClientId(0));
            assert!(t.ops.iter().all(Operation::is_write));
        }
    }

    #[test]
    fn read_ratio_respected() {
        let cfg = WorkloadConfig {
            write_ratio: 0.0,
            ..Default::default()
        };
        let mut g = WorkloadGenerator::new(cfg, 1);
        let t = g.next_transaction(ClientId(0));
        assert!(t.ops.iter().all(|o| !o.is_write()));
    }

    #[test]
    fn keys_within_table() {
        let cfg = WorkloadConfig {
            table_size: 100,
            ops_per_txn: 5,
            ..Default::default()
        };
        let mut g = WorkloadGenerator::new(cfg, 1);
        for _ in 0..200 {
            let t = g.next_transaction(ClientId(0));
            for op in &t.ops {
                assert!(op.key() < 100);
            }
        }
    }

    #[test]
    fn payload_size_respected() {
        let cfg = WorkloadConfig {
            payload_bytes: 4096,
            ..Default::default()
        };
        let mut g = WorkloadGenerator::new(cfg, 1);
        let t = g.next_transaction(ClientId(0));
        assert_eq!(t.payload.len(), 4096);
        assert!(t.wire_size() > 4096);
    }

    #[test]
    fn conflict_ratio_one_stays_in_hot_set() {
        let cfg = WorkloadConfig {
            conflict_ratio: 1.0,
            hot_keys: 8,
            ops_per_txn: 4,
            ..Default::default()
        };
        let mut g = WorkloadGenerator::new(cfg, 3);
        for _ in 0..100 {
            let t = g.next_transaction(ClientId(0));
            for op in &t.ops {
                assert!(op.key() < 8, "hot-set key expected, got {}", op.key());
            }
        }
    }

    #[test]
    fn conflict_ratio_zero_matches_pre_knob_stream() {
        // The knob must be a pure extension: disabled, the generator
        // produces the exact transactions it did before the knob existed.
        let mut plain = WorkloadGenerator::new(WorkloadConfig::default(), 11);
        let mut knobbed = WorkloadGenerator::new(
            WorkloadConfig {
                conflict_ratio: 0.0,
                hot_keys: 4,
                ..Default::default()
            },
            11,
        );
        for _ in 0..50 {
            assert_eq!(
                plain.next_transaction(ClientId(2)),
                knobbed.next_transaction(ClientId(2))
            );
        }
    }

    #[test]
    fn partial_conflict_ratio_mixes_hot_and_cold() {
        let cfg = WorkloadConfig {
            conflict_ratio: 0.5,
            hot_keys: 4,
            zipf_theta: 0.0,
            ..Default::default()
        };
        let mut g = WorkloadGenerator::new(cfg, 5);
        let mut hot = 0usize;
        let mut total = 0usize;
        for _ in 0..400 {
            let t = g.next_transaction(ClientId(0));
            for op in &t.ops {
                total += 1;
                if op.key() < 4 {
                    hot += 1;
                }
            }
        }
        // ~50% hot (plus a sliver of cold traffic landing there by chance).
        let frac = hot as f64 / total as f64;
        assert!((0.35..0.75).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = WorkloadGenerator::new(WorkloadConfig::default(), 9);
        let mut b = WorkloadGenerator::new(WorkloadConfig::default(), 9);
        for _ in 0..50 {
            assert_eq!(
                a.next_transaction(ClientId(1)),
                b.next_transaction(ClientId(1))
            );
        }
    }

    #[test]
    fn batch_round_robins_clients() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default(), 1);
        let clients = [ClientId(0), ClientId(1), ClientId(2)];
        let batch = g.next_batch(&clients, 7);
        assert_eq!(batch.len(), 7);
        let from_c0 = batch
            .txns
            .iter()
            .filter(|t| t.id.client == ClientId(0))
            .count();
        assert_eq!(from_c0, 3); // positions 0, 3, 6
    }

    #[test]
    fn client_batch_single_origin() {
        let mut g = WorkloadGenerator::new(WorkloadConfig::default(), 1);
        let txns = g.next_client_batch(ClientId(4), 5);
        assert_eq!(txns.len(), 5);
        assert!(txns.iter().all(|t| t.id.client == ClientId(4)));
        let counters: Vec<u64> = txns.iter().map(|t| t.id.counter).collect();
        assert_eq!(counters, vec![0, 1, 2, 3, 4]);
    }
}
