//! Message-path microbenchmarks for the encode-once envelope.
//!
//! Measures the hot path the tentpole refactor targets: broadcasting a
//! batch-carrying `PrePrepare` to n peers, the sign+verify round trip over
//! memoized canonical bytes, and batch-digest memoization. Alongside the
//! criterion output it emits `BENCH_message_path.json` at the workspace
//! root so the perf trajectory is recorded, not asserted — CI runs this
//! bench with a short window and uploads the file.
//!
//! The `clone_baseline` numbers reproduce the pre-envelope message path:
//! one deep copy of the batch per destination plus a from-scratch
//! serialization on every sign and every verify.

use criterion::{criterion_group, Criterion};
use rdb_common::codec::{Wire, WireWriter};
use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::{
    Batch, ClientId, CryptoScheme, Digest, Operation, ReplicaId, SeqNum, SignatureBytes,
    Transaction, ViewNum,
};
use rdb_crypto::{digest, KeyRegistry, PeerClass};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const TXNS: usize = 100;

fn batch(n: usize) -> Batch {
    (0..n as u64)
        .map(|i| {
            Transaction::new(
                ClientId(i % 8),
                i,
                vec![Operation::Write {
                    key: i,
                    value: vec![(i & 0xff) as u8; 8],
                }],
            )
        })
        .collect()
}

fn pre_prepare(b: Arc<Batch>) -> Message {
    Message::PrePrepare {
        view: ViewNum(0),
        seq: SeqNum(1),
        digest: Digest([7; 32]),
        batch: b,
    }
}

/// Pre-envelope behavior: encode `sender ‖ body` with a fresh writer.
fn fresh_signing_bytes(msg: &Message, from: Sender) -> Vec<u8> {
    let mut w = WireWriter::new();
    from.write(&mut w);
    msg.write(&mut w);
    w.into_bytes()
}

/// Times `op` and returns mean ns/iter over `iters` runs.
fn time_ns(iters: u32, mut op: impl FnMut()) -> f64 {
    // Warm-up pass so allocator and cache state are comparable.
    op();
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// One broadcast on the encode-once path: sign once (structural cost only
/// — the signer is a constant, crypto is measured separately), then one
/// cheap clone per destination, each of which could verify against the
/// shared buffer.
fn broadcast_encode_once(body: &Arc<Batch>, peers: usize) -> usize {
    let sm = SignedMessage::sign_with(
        pre_prepare(Arc::clone(body)),
        Sender::Replica(ReplicaId(0)),
        |_| SignatureBytes(vec![9; 16]),
    );
    let mut delivered = 0;
    for _ in 0..peers {
        let clone = sm.clone();
        delivered += black_box(clone.signing_bytes().len());
    }
    delivered
}

/// One broadcast on the pre-refactor path: per destination, deep-clone the
/// batch into a fresh message and re-serialize it for verification.
fn broadcast_clone_baseline(body: &Arc<Batch>, peers: usize) -> usize {
    let from = Sender::Replica(ReplicaId(0));
    let sign_bytes = fresh_signing_bytes(&pre_prepare(Arc::clone(body)), from);
    let mut delivered = black_box(sign_bytes.len());
    for _ in 0..peers {
        // Deep copy: what `msg.clone()` cost before the batch was shared.
        let copy = Arc::new((**body).clone());
        let msg = pre_prepare(copy);
        // What each receiver's verify cost: a from-scratch serialization.
        delivered += black_box(fresh_signing_bytes(&msg, from).len());
    }
    delivered
}

struct Sample {
    name: String,
    ns_per_op: f64,
}

fn record(samples: &mut Vec<Sample>, name: impl Into<String>, value: f64) -> f64 {
    let name = name.into();
    samples.push(Sample {
        name: name.clone(),
        ns_per_op: value,
    });
    if name.contains("speedup") {
        println!("{name:<48} {value:>12.1} x");
    } else {
        println!("{name:<48} {value:>12.0} ns/iter");
    }
    value
}

fn run_suite() -> Vec<Sample> {
    let mut samples = Vec::new();
    let body = Arc::new(batch(TXNS));
    let iters: u32 = std::env::var("RDB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);

    // --- broadcast fan-out at n ∈ {4, 16, 32} ---------------------------
    for peers in [4usize, 16, 32] {
        let b = Arc::clone(&body);
        let ns_new = time_ns(iters, || {
            black_box(broadcast_encode_once(&b, peers));
        });
        record(
            &mut samples,
            format!("broadcast/encode_once/{peers}"),
            ns_new,
        );
        let b = Arc::clone(&body);
        let ns_old = time_ns(iters, || {
            black_box(broadcast_clone_baseline(&b, peers));
        });
        record(
            &mut samples,
            format!("broadcast/clone_baseline/{peers}"),
            ns_old,
        );
        record(
            &mut samples,
            format!("broadcast/speedup/{peers}"),
            ns_old / ns_new,
        );
    }

    // --- sign + verify round trip (real CMAC) ---------------------------
    let registry = KeyRegistry::generate(CryptoScheme::CmacEd25519, 4, 4, 42);
    let signer = registry.provider_for_replica(ReplicaId(0));
    let verifier = registry.provider_for_replica(ReplicaId(1));
    let b = Arc::clone(&body);
    let ns = time_ns(iters, || {
        let sm = SignedMessage::sign_with(
            pre_prepare(Arc::clone(&b)),
            Sender::Replica(ReplicaId(0)),
            |bytes| signer.sign(PeerClass::Replica, bytes),
        );
        // The receiver's verify consumes the memoized bytes.
        black_box(verifier.verify(sm.sender(), sm.signing_bytes(), sm.sig()));
    });
    record(&mut samples, "sign_verify/memoized_roundtrip", ns);
    let b = Arc::clone(&body);
    let ns = time_ns(iters, || {
        let from = Sender::Replica(ReplicaId(0));
        let msg = pre_prepare(Arc::clone(&b));
        let sig = signer.sign(PeerClass::Replica, &fresh_signing_bytes(&msg, from));
        // Pre-refactor: the receiver re-serialized before verifying.
        black_box(verifier.verify(from, &fresh_signing_bytes(&msg, from), &sig));
    });
    record(&mut samples, "sign_verify/reencode_roundtrip", ns);

    // --- digest memoization ---------------------------------------------
    let sm = SignedMessage::new(
        pre_prepare(Arc::clone(&body)),
        Sender::Replica(ReplicaId(0)),
        SignatureBytes::empty(),
    );
    let ns = time_ns(iters, || {
        black_box(sm.digest_with(digest));
    });
    record(&mut samples, "digest/memoized", ns);
    let ns = time_ns(iters, || {
        let msg = pre_prepare(Arc::clone(&body));
        black_box(digest(&fresh_signing_bytes(
            &msg,
            Sender::Replica(ReplicaId(0)),
        )));
    });
    record(&mut samples, "digest/recompute", ns);

    samples
}

fn emit_json(samples: &[Sample]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_message_path.json");
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"message_path\",\n");
    out.push_str(&format!("  \"txns_per_batch\": {TXNS},\n"));
    out.push_str("  \"unit\": \"ns_per_op (speedup entries are ratios)\",\n");
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.1}}}{}\n",
            s.name, s.ns_per_op, comma
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_message_path.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_message_path(_c: &mut Criterion) {
    let samples = run_suite();
    emit_json(&samples);
}

criterion_group!(benches, bench_message_path);

fn main() {
    // `cargo test` runs bench targets with `--test`: compile/run parity
    // only, skip the measurement suite.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
}
