//! Network-path benchmarks: the in-memory switchboard vs real TCP
//! loopback sockets, measured through the same [`Transport`] trait the
//! replica pipeline uses.
//!
//! Two measurements per backend:
//!
//! - **PrePrepare broadcast throughput** — one sender fans a 100-txn
//!   batch proposal out to 3 peers (the 4-replica primary's hot path);
//!   reported as ns/broadcast and MB/s of wire bytes.
//! - **Request/response RTT** — a small PrePrepare ping answered by a
//!   Commit pong, sequentially; reported as p50/p99 microseconds.
//!
//! Alongside the criterion-compatible output it emits `BENCH_net.json`
//! at the workspace root; CI runs this with a short `RDB_BENCH_ITERS`
//! window and uploads the file.

use criterion::{criterion_group, Criterion};
use rdb_common::codec::Wire;
use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::{
    Batch, ClientId, Digest, Operation, ReplicaId, SeqNum, SignatureBytes, Transaction, ViewNum,
};
use rdb_net::{Endpoint, NetHandle, Network, NetworkConfig, TcpConfig, TcpTransport};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PEERS: usize = 4;
const BROADCAST_TXNS: usize = 100;
const PING_TXNS: usize = 10;

fn iters() -> u32 {
    std::env::var("RDB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

fn r(i: u32) -> Sender {
    Sender::Replica(ReplicaId(i))
}

fn batch(n: usize) -> Arc<Batch> {
    Arc::new(
        (0..n as u64)
            .map(|i| {
                Transaction::new(
                    ClientId(i % 8),
                    i,
                    vec![Operation::Write {
                        key: i,
                        value: vec![(i & 0xff) as u8; 8],
                    }],
                )
            })
            .collect(),
    )
}

fn pre_prepare(seq: u64, b: Arc<Batch>) -> SignedMessage {
    SignedMessage::new(
        Message::PrePrepare {
            view: ViewNum(0),
            seq: SeqNum(seq),
            digest: Digest([7; 32]),
            batch: b,
        },
        r(0),
        SignatureBytes(vec![9; 32]),
    )
}

/// A 4-node cluster over one backend: per-node handles plus registered
/// replica endpoints.
struct Cluster {
    name: &'static str,
    nets: Vec<NetHandle>,
    eps: Vec<Endpoint>,
}

impl Cluster {
    fn memory() -> Cluster {
        let net = Network::new(NetworkConfig::default()).handle();
        let eps = (0..PEERS as u32).map(|i| net.register(r(i))).collect();
        Cluster {
            name: "in_memory",
            nets: vec![net],
            eps,
        }
    }

    fn tcp() -> Cluster {
        let (peers, listeners) =
            TcpTransport::bind_loopback_cluster(PEERS).expect("bind loopback cluster");
        let nets: Vec<NetHandle> = listeners
            .into_iter()
            .map(|listener| {
                TcpTransport::with_listener(
                    TcpConfig {
                        listen: listener.local_addr().ok(),
                        peers: peers.clone(),
                        ..TcpConfig::default()
                    },
                    Some(listener),
                )
                .handle()
            })
            .collect();
        let eps = nets
            .iter()
            .enumerate()
            .map(|(i, net)| net.register(r(i as u32)))
            .collect();
        Cluster {
            name: "tcp_loopback",
            nets,
            eps,
        }
    }

    fn shutdown(self) {
        for net in &self.nets {
            net.shutdown();
        }
    }
}

struct Sample {
    name: String,
    value: f64,
}

fn record(samples: &mut Vec<Sample>, name: impl Into<String>, value: f64) {
    let name = name.into();
    println!("{name:<52} {value:>14.1}");
    samples.push(Sample { name, value });
}

/// Broadcast `count` PrePrepares to every peer and wait until each peer
/// has drained all of them. Returns elapsed wall time.
fn run_broadcast(cluster: &mut Cluster, count: u32) -> Duration {
    let all: Vec<Sender> = (0..PEERS as u32).map(r).collect();
    let receivers: Vec<_> = cluster.eps.drain(1..).collect();
    let (done_tx, done_rx) = std::sync::mpsc::channel::<Endpoint>();
    let mut drains = Vec::new();
    for ep in receivers {
        let done_tx = done_tx.clone();
        drains.push(std::thread::spawn(move || {
            let mut got = 0u32;
            while got < count {
                if ep.recv_timeout(Duration::from_secs(30)).is_ok() {
                    got += 1;
                } else {
                    break;
                }
            }
            let _ = done_tx.send(ep);
            got
        }));
    }
    let body = batch(BROADCAST_TXNS);
    let start = Instant::now();
    for i in 0..count {
        let sm = pre_prepare(u64::from(i), Arc::clone(&body));
        cluster.eps[0].broadcast(&all, &sm).expect("broadcast");
    }
    for d in drains {
        let received = d.join().expect("drain thread");
        assert_eq!(received, count, "receiver lost broadcast messages");
    }
    let elapsed = start.elapsed();
    // Re-adopt the endpoints (the drain threads hand them back in
    // completion order) and restore id order for the next measurement.
    for _ in 0..PEERS - 1 {
        cluster.eps.push(done_rx.recv().expect("endpoint returned"));
    }
    cluster.eps.sort_by_key(|ep| match ep.addr() {
        Sender::Replica(id) => id.0,
        Sender::Client(_) => u32::MAX,
    });
    elapsed
}

/// Sequential ping/pong: returns sorted per-round-trip times.
fn run_rtt(cluster: &mut Cluster, count: u32) -> Vec<Duration> {
    let echo_ep = cluster.eps.remove(1);
    let echo = std::thread::spawn(move || {
        let mut answered = 0u32;
        while answered < count {
            let Ok(sm) = echo_ep.recv_timeout(Duration::from_secs(30)) else {
                break;
            };
            let pong = SignedMessage::new(
                Message::Commit {
                    view: ViewNum(0),
                    seq: sm.msg().seq().unwrap_or(SeqNum(0)),
                    digest: Digest([1; 32]),
                },
                r(1),
                SignatureBytes(vec![2; 32]),
            );
            echo_ep.send(r(0), pong).expect("pong");
            answered += 1;
        }
        echo_ep
    });
    let body = batch(PING_TXNS);
    let mut samples = Vec::with_capacity(count as usize);
    for i in 0..count {
        let start = Instant::now();
        cluster.eps[0]
            .send(r(1), pre_prepare(u64::from(i), Arc::clone(&body)))
            .expect("ping");
        cluster.eps[0]
            .recv_timeout(Duration::from_secs(30))
            .expect("pong lost");
        samples.push(start.elapsed());
    }
    cluster.eps.insert(1, echo.join().expect("echo thread"));
    samples.sort();
    samples
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * pct / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn run_backend(cluster: &mut Cluster, iters: u32, samples: &mut Vec<Sample>) {
    let name = cluster.name;
    // Warm-up: establish TCP connections and fault-free fast paths so the
    // measurement starts from a steady state on both backends.
    let _ = run_broadcast(cluster, 8.min(iters));

    let wire_bytes = pre_prepare(0, batch(BROADCAST_TXNS)).encoded_len() as f64;
    let elapsed = run_broadcast(cluster, iters);
    let ns_per = elapsed.as_nanos() as f64 / f64::from(iters);
    record(
        samples,
        format!("broadcast/{name}/ns_per_broadcast"),
        ns_per,
    );
    let mb_per_s = (wire_bytes * (PEERS - 1) as f64 * f64::from(iters))
        / elapsed.as_secs_f64()
        / (1024.0 * 1024.0);
    record(samples, format!("broadcast/{name}/wire_mb_per_s"), mb_per_s);
    record(
        samples,
        format!("broadcast/{name}/broadcasts_per_s"),
        1e9 / ns_per,
    );

    let rtts = run_rtt(cluster, iters);
    record(
        samples,
        format!("rtt/{name}/p50_us"),
        percentile(&rtts, 50.0).as_nanos() as f64 / 1_000.0,
    );
    record(
        samples,
        format!("rtt/{name}/p99_us"),
        percentile(&rtts, 99.0).as_nanos() as f64 / 1_000.0,
    );
}

fn run_suite() -> Vec<Sample> {
    let iters = iters();
    let mut samples = Vec::new();
    let mut mem = Cluster::memory();
    run_backend(&mut mem, iters, &mut samples);
    mem.shutdown();
    let mut tcp = Cluster::tcp();
    run_backend(&mut tcp, iters, &mut samples);
    tcp.shutdown();
    // The headline ratio: what the real socket costs over the switchboard.
    let get = |n: &str| {
        samples
            .iter()
            .find(|s| s.name == n)
            .map(|s| s.value)
            .unwrap_or(f64::NAN)
    };
    let slowdown = get("broadcast/tcp_loopback/ns_per_broadcast")
        / get("broadcast/in_memory/ns_per_broadcast");
    record(&mut samples, "broadcast/tcp_over_memory_ratio", slowdown);
    samples
}

fn emit_json(samples: &[Sample]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_net.json");
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"net_path\",\n");
    out.push_str(&format!("  \"peers\": {PEERS},\n"));
    out.push_str(&format!("  \"broadcast_txns\": {BROADCAST_TXNS},\n"));
    out.push_str(&format!("  \"ping_txns\": {PING_TXNS},\n"));
    out.push_str(
        "  \"unit\": \"per-name suffix: ns_per_broadcast | wire_mb_per_s | broadcasts_per_s | p50_us | p99_us | ratio\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.1}}}{}\n",
            s.name, s.value, comma
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_net.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_net_path(_c: &mut Criterion) {
    let samples = run_suite();
    emit_json(&samples);
}

criterion_group!(benches, bench_net_path);

fn main() {
    // `cargo test` runs bench targets with `--test`: compile/run parity
    // only, skip the measurement suite.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
}
