//! Multi-primary ordering bench: k parallel PBFT instances vs the
//! single-primary baseline, k ∈ {1, 2, 4}.
//!
//! Two kinds of rows go into `BENCH_multi_primary.json`:
//!
//! - **Model rows** — the calibrated discrete-event simulator's k = 1
//!   run plus the [`rdb_sim::multi`] prediction for each k. This is the
//!   in-memory cluster model (8-core replicas, the paper's testbed
//!   shape) and carries the headline result: spreading leadership
//!   across k instances relieves the leader-only batch stage, the k = 1
//!   bottleneck.
//! - **Threaded rows** — a real 4-replica deployment under closed-loop
//!   load, per transport (in-memory switchboard and TCP loopback) and
//!   per k. These are honest wall-clock numbers for whatever hardware
//!   runs the bench: on a single-core CI container all k values share
//!   one core, so the threaded sweep is expected to be flat there — the
//!   rows exist to show k > 1 costs nothing and to exercise the path,
//!   not to reproduce the cluster speedup.

use criterion::{criterion_group, Criterion};
use rdb_common::TransportMode;
use resilientdb::{run_closed_loop, SystemBuilder};
use std::time::Duration;

const KS: [usize; 3] = [1, 2, 4];

fn window_ms() -> u64 {
    std::env::var("RDB_BENCH_WINDOW_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_500)
}

struct ThreadedRow {
    transport: &'static str,
    k: usize,
    throughput_tps: f64,
    avg_latency_ms: f64,
    completed: u64,
}

fn run_threaded(transport: TransportMode, k: usize, window: Duration) -> ThreadedRow {
    let db = SystemBuilder::new(4)
        .batch_size(20)
        .consensus_instances(k)
        .client_keys(8)
        // Large table + hashed closed-loop keys: low contention, the
        // regime the issue's acceptance row is defined over.
        .table_size(16_384)
        .transport(transport)
        .seed(42)
        .build()
        .expect("valid config");
    let m = run_closed_loop(&db, 4, 20, window);
    db.shutdown();
    ThreadedRow {
        transport: match transport {
            TransportMode::InMemory => "memory",
            TransportMode::Tcp => "tcp",
        },
        k,
        throughput_tps: m.throughput_tps,
        avg_latency_ms: m.avg_latency_ms,
        completed: m.completed,
    }
}

fn run_suite() -> String {
    // Model sweep: one calibrated k = 1 DES run, predictions per k.
    let cfg = rdb_bench::sim_base(4);
    let (base, model) = rdb_sim::multi::sweep(&cfg, &KS);
    println!(
        "model base: {:.0} txn/s, binding stage at primary = batch ({:.1}%)",
        base.throughput_tps,
        base.primary_saturation
            .values()
            .cloned()
            .fold(0.0_f64, f64::max)
    );
    for row in &model {
        println!(
            "model k={}: {:.0} txn/s ({:.2}x), bottleneck {}",
            row.k,
            row.predicted_tps,
            row.speedup,
            row.bottleneck.0.label()
        );
    }
    let k2_speedup = model
        .iter()
        .find(|r| r.k == 2)
        .map(|r| r.speedup)
        .unwrap_or(f64::NAN);
    assert!(
        k2_speedup >= 1.5,
        "k=2 model speedup {k2_speedup:.3} below the 1.5x acceptance bar"
    );

    // Threaded sweep over both transports.
    let window = Duration::from_millis(window_ms());
    let mut threaded = Vec::new();
    for transport in [TransportMode::InMemory, TransportMode::Tcp] {
        for k in KS {
            let row = run_threaded(transport, k, window);
            println!(
                "threaded {}/k={}: {:.0} txn/s, {:.2} ms, {} txns",
                row.transport, row.k, row.throughput_tps, row.avg_latency_ms, row.completed
            );
            threaded.push(row);
        }
    }

    let model_rows: Vec<String> = model
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let threaded_rows: Vec<String> = threaded
        .iter()
        .map(|r| {
            format!(
                "    {{\"transport\": \"{}\", \"k\": {}, \"throughput_tps\": {:.1}, \
                 \"avg_latency_ms\": {:.3}, \"completed\": {}}}",
                r.transport, r.k, r.throughput_tps, r.avg_latency_ms, r.completed
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"multi_primary\",\n  \"replicas\": 4,\n  \
         \"model_base_tps\": {:.1},\n  \"model_k2_speedup\": {:.3},\n  \
         \"model\": [\n{}\n  ],\n  \"threaded\": [\n{}\n  ]\n}}\n",
        base.throughput_tps,
        k2_speedup,
        model_rows.join(",\n"),
        threaded_rows.join(",\n")
    )
}

fn bench_multi_primary(_c: &mut Criterion) {
    let json = run_suite();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_multi_primary.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write BENCH_multi_primary.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

criterion_group!(benches, bench_multi_primary);

fn main() {
    // `cargo test` runs bench targets with `--test`: compile/run parity
    // only, skip the measurement suite.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
}
