//! Execution-path benchmark: deterministic parallel execution vs the
//! serial execute-thread, across the contention spectrum.
//!
//! Sweeps `execute_threads ∈ {1, 2, 4, 8}` × {low, high} contention over
//! identical committed workloads and reports executed-transaction
//! throughput. `threads = 1` is the paper's serial executor
//! (`Executor::execute` draining sequences in order); `threads ≥ 2` is the
//! conflict-wave scheduler fanning non-conflicting transactions across an
//! `ExecPool`. Low contention spreads keys uniformly over the table
//! (waves stay wide); high contention pins 95% of operations to 8 hot
//! keys, which chains most transactions into deep waves — the honest case
//! where parallel execution cannot beat serial by much and mostly pays
//! scheduling overhead.
//!
//! Two storage backends bound the story:
//!
//! - `mem` — the in-memory store: execution cost is pure CPU (record
//!   hashing), so the sweep scales with *physical cores*. On a
//!   single-core container it records scheduling overhead (< 1×); on a
//!   multicore machine (e.g. the CI runner) it shows the core-scaling win.
//! - `io` — the Figure 14 storage class: every record read pays a
//!   blocking ~20µs I/O latency (SQLite-style backend). Here the worker
//!   pool overlaps the waits, so the speedup is real even on one core —
//!   this is the execution/validation bottleneck case the parallel
//!   executor is built for.
//!
//! A third sweep (`execution/wal/…`) attaches the durable write-ahead
//! log to the serial executor and varies the fsync policy — `always`,
//! group-commit windows of 250µs/1ms/4ms, `never` — recording both
//! throughput and the number of fsyncs actually issued, so the JSON
//! captures how group commit amortizes the one-fsync-per-batch cost of
//! `always` down to roughly one per window.
//!
//! The detected CPU count is recorded in the emitted JSON so readers can
//! interpret the `mem` rows. Alongside the criterion output it emits
//! `BENCH_execution.json` at the workspace root so the perf trajectory is
//! recorded, not asserted — CI runs this bench with a short window and
//! uploads the file.

use criterion::{criterion_group, Criterion};
use rdb_common::block::BlockCertificate;
use rdb_common::{
    Batch, ClientId, Digest, DurabilityConfig, FsyncMode, ProtocolKind, ReplicaId, SeqNum, ViewNum,
};
use rdb_pipeline::queues::ExecuteItem;
use rdb_pipeline::scheduler::{ExecPool, ParallelExecutor};
use rdb_pipeline::{Durability, Executor};
use rdb_storage::blockchain::ChainMode;
use rdb_storage::{Blockchain, MemStore, StateStore, WriteRecord};
use rdb_workload::{WorkloadConfig, WorkloadGenerator};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TABLE_SIZE: u64 = 8_192;
const BATCH_TXNS: usize = 256;
const OPS_PER_TXN: usize = 4;
const VALUE_SIZE: usize = 128;
/// Window width for the parallel executor (matches the replica default).
const WINDOW: usize = 4;
/// Simulated per-read I/O latency of the `io` backend.
const IO_DELAY: Duration = Duration::from_micros(20);

/// A MemStore whose reads pay a blocking I/O latency — the SQLite-class
/// backend of Figure 14, where the execute stage stalls on the disk.
/// Writes stay fast: the deferred-commit path batches them through
/// `apply`, modeling a write-behind journal.
struct IoStore {
    inner: MemStore,
}

impl StateStore for IoStore {
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        std::thread::sleep(IO_DELAY);
        self.inner.get(key)
    }

    fn put(&self, key: u64, value: &[u8]) {
        self.inner.put(key, value);
    }

    fn apply(&self, writes: &[WriteRecord]) {
        self.inner.apply(writes);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn state_digest(&self) -> Digest {
        self.inner.state_digest()
    }
}

#[derive(Clone, Copy)]
enum Backend {
    Mem,
    Io,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Mem => "mem",
            Backend::Io => "io",
        }
    }

    fn fresh_executor(self) -> Arc<Executor> {
        let store: Arc<dyn StateStore> = match self {
            Backend::Mem => Arc::new(MemStore::with_table(TABLE_SIZE, VALUE_SIZE)),
            Backend::Io => Arc::new(IoStore {
                inner: MemStore::with_table(TABLE_SIZE, VALUE_SIZE),
            }),
        };
        let chain = Arc::new(parking_lot::Mutex::new(Blockchain::new(
            Digest::ZERO,
            0,
            ChainMode::Certificate,
        )));
        Arc::new(Executor::new(
            ReplicaId(0),
            ProtocolKind::Pbft,
            store,
            chain,
        ))
    }

    /// The `io` backend is read-latency-bound, so its workload carries a
    /// realistic read share; the `mem` workload is the paper's mostly-
    /// write YCSB profile. Fewer batches keep the sleeping sweep short.
    fn workload(self) -> (f64, usize) {
        match self {
            Backend::Mem => (0.9, 24),
            Backend::Io => (0.5, 12),
        }
    }
}

struct Scenario {
    name: &'static str,
    conflict_ratio: f64,
    hot_keys: u64,
}

const SCENARIOS: [Scenario; 2] = [
    Scenario {
        name: "low",
        conflict_ratio: 0.0,
        hot_keys: 16,
    },
    Scenario {
        name: "high",
        conflict_ratio: 0.95,
        hot_keys: 8,
    },
];

/// Builds the committed workload for one scenario: `batches` sequences of
/// `BATCH_TXNS` transactions each, identical across thread counts.
fn build_items(scenario: &Scenario, write_ratio: f64, batches: usize) -> Vec<ExecuteItem> {
    build_sized_items(scenario, write_ratio, batches, BATCH_TXNS)
}

/// As [`build_items`] but with an explicit batch size — the WAL sweep
/// uses small batches so the append stream is dense enough for group
/// commit windows to coalesce anything.
fn build_sized_items(
    scenario: &Scenario,
    write_ratio: f64,
    batches: usize,
    txns_per_batch: usize,
) -> Vec<ExecuteItem> {
    let mut gen = WorkloadGenerator::new(
        WorkloadConfig {
            table_size: TABLE_SIZE,
            ops_per_txn: OPS_PER_TXN,
            write_ratio,
            value_size: VALUE_SIZE,
            payload_bytes: 0,
            zipf_theta: 0.0,
            conflict_ratio: scenario.conflict_ratio,
            hot_keys: scenario.hot_keys,
        },
        42,
    );
    let clients: Vec<ClientId> = (0..64).map(ClientId).collect();
    (0..batches)
        .map(|i| {
            let batch: Batch = gen.next_batch(&clients, txns_per_batch);
            ExecuteItem {
                seq: SeqNum(i as u64 + 1),
                view: ViewNum(0),
                digest: Digest([i as u8; 32]),
                batch: batch.into(),
                certificate: BlockCertificate::default(),
                history: None,
            }
        })
        .collect()
}

/// Executes all items through the serial path with a write-ahead log
/// attached under the given fsync policy; returns (txns/sec, fsyncs
/// issued). One WAL append per committed batch — the group-commit rows
/// show the flusher amortizing many appends into few fsyncs, `always`
/// pays one fsync per batch, `none` bounds the pure append overhead.
fn run_durable(items: &[ExecuteItem], fsync: FsyncMode, window_us: u64, tag: &str) -> (f64, u64) {
    let dir = std::env::temp_dir().join(format!("rdb-walbench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = DurabilityConfig {
        data_dir: Some(dir.display().to_string()),
        fsync,
        group_commit_window_us: window_us.max(1),
    };
    let executor = Backend::Mem.fresh_executor();
    let (durability, _state) = Durability::open(&dir, &config).expect("open bench WAL");
    let durability = Arc::new(durability);
    executor.set_durability(Arc::clone(&durability));
    let total_txns: usize = items.iter().map(|i| i.batch.len()).sum();
    let start = Instant::now();
    for item in items {
        let (digest, replies) = executor.execute(item);
        std::hint::black_box((digest, replies.len()));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let syncs = durability.wal_syncs();
    drop(durability);
    drop(executor);
    let _ = std::fs::remove_dir_all(&dir);
    (total_txns as f64 / elapsed, syncs)
}

/// Executes all items with `threads` execute workers (1 = serial path)
/// against a fresh store; returns (txns/sec, final state digest).
fn run_once(items: &[ExecuteItem], threads: usize, backend: Backend) -> (f64, Digest) {
    let executor = backend.fresh_executor();
    let total_txns: usize = items.iter().map(|i| i.batch.len()).sum();
    let start;
    if threads == 1 {
        start = Instant::now();
        for item in items {
            let (digest, replies) = executor.execute(item);
            std::hint::black_box((digest, replies.len()));
        }
    } else {
        let pool = ExecPool::new("bench", threads, Vec::new());
        let par = ParallelExecutor::new(Arc::clone(&executor), pool);
        start = Instant::now();
        for window in items.chunks(WINDOW) {
            for out in par.execute_window(window) {
                std::hint::black_box((out.0, out.1.len()));
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    (total_txns as f64 / elapsed, executor.store().state_digest())
}

struct Sample {
    name: String,
    value: f64,
}

fn record(samples: &mut Vec<Sample>, name: impl Into<String>, value: f64, unit: &str) -> f64 {
    let name = name.into();
    println!("{name:<44} {value:>12.1} {unit}");
    samples.push(Sample { name, value });
    value
}

fn run_suite() -> Vec<Sample> {
    let mut samples = Vec::new();
    let repeats: usize = std::env::var("RDB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|iters| (iters / 10).clamp(1, 16))
        .unwrap_or(4);

    for backend in [Backend::Mem, Backend::Io] {
        let (write_ratio, batches) = backend.workload();
        for scenario in &SCENARIOS {
            let items = build_items(scenario, write_ratio, batches);
            // Determinism cross-check while we are here: every thread
            // count must land on the same final digest.
            let reference = run_once(&items, 1, backend).1;
            let mut serial_tput = 0.0;
            for threads in [1usize, 2, 4, 8] {
                // Warm-up pass, then best-of-N (throughput is noisy in CI).
                let _ = run_once(&items, threads, backend);
                let mut best = 0.0f64;
                for _ in 0..repeats {
                    let (tput, digest) = run_once(&items, threads, backend);
                    assert_eq!(
                        digest, reference,
                        "parallel execution diverged from serial at {threads} threads"
                    );
                    best = best.max(tput);
                }
                record(
                    &mut samples,
                    format!(
                        "execution/{}/{}/threads-{threads}",
                        backend.name(),
                        scenario.name
                    ),
                    best,
                    "txn/s",
                );
                if threads == 1 {
                    serial_tput = best;
                } else {
                    record(
                        &mut samples,
                        format!(
                            "execution/{}/{}/speedup-{threads}v1",
                            backend.name(),
                            scenario.name
                        ),
                        best / serial_tput,
                        "x",
                    );
                }
            }
        }
    }

    // --- durable-backend sweep: fsync policy × group-commit window ------
    // Serial execution over the low-contention mem workload with the WAL
    // attached. The interesting ratio is txn/s vs the wal/none row (pure
    // append cost) and the fsync counts: group commit collapses one-per-
    // batch fsyncs into one per window.
    let wal_policies: [(&'static str, FsyncMode, u64); 5] = [
        ("always", FsyncMode::Always, 0),
        ("group-250us", FsyncMode::Group, 250),
        ("group-1ms", FsyncMode::Group, 1_000),
        ("group-4ms", FsyncMode::Group, 4_000),
        ("none", FsyncMode::Never, 0),
    ];
    // Small batches (the smoke-test scale) commit fast enough that the
    // wider windows genuinely coalesce several appends per fsync; the
    // 256-txn bench batches would arrive slower than any window.
    let (write_ratio, _) = Backend::Mem.workload();
    let items = build_sized_items(&SCENARIOS[0], write_ratio, 192, 32);
    for (name, fsync, window_us) in wal_policies {
        let _ = run_durable(&items, fsync, window_us, name); // warm-up
        let mut best = 0.0f64;
        let mut syncs = 0u64;
        for _ in 0..repeats {
            let (tput, s) = run_durable(&items, fsync, window_us, name);
            if tput > best {
                best = tput;
                syncs = s;
            }
        }
        record(
            &mut samples,
            format!("execution/wal/{name}/threads-1"),
            best,
            "txn/s",
        );
        record(
            &mut samples,
            format!("execution/wal/{name}/fsyncs"),
            syncs as f64,
            "syncs",
        );
    }
    samples
}

fn emit_json(samples: &[Sample]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_execution.json");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"execution_path\",\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"workload\": \"{BATCH_TXNS} txns/batch x {OPS_PER_TXN} ops, {VALUE_SIZE}B values, \
         table {TABLE_SIZE}, window {WINDOW}; io backend reads pay {}us; \
         wal sweep runs 192 batches x 32 txns\",\n",
        IO_DELAY.as_micros()
    ));
    out.push_str(
        "  \"unit\": \"txn/s (speedup entries are ratios vs the serial execute-thread; \
         mem rows scale with physical cores, io rows with overlapped read latency; \
         wal rows are serial execution with the write-ahead log attached under the \
         named fsync policy, fsyncs rows count syncs for the whole run)\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.1}}}{}\n",
            s.name, s.value, comma
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_execution.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_execution_path(_c: &mut Criterion) {
    let samples = run_suite();
    emit_json(&samples);
}

criterion_group!(benches, bench_execution_path);

fn main() {
    // `cargo test` runs bench targets with `--test`: compile/run parity
    // only, skip the measurement suite.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
}
