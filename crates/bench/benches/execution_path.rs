//! Execution-path benchmark: deterministic parallel execution vs the
//! serial execute-thread, across the contention spectrum.
//!
//! Sweeps `execute_threads ∈ {1, 2, 4, 8}` × {low, high} contention over
//! identical committed workloads and reports executed-transaction
//! throughput. `threads = 1` is the paper's serial executor
//! (`Executor::execute` draining sequences in order); `threads ≥ 2` is the
//! conflict-wave scheduler fanning non-conflicting transactions across an
//! `ExecPool`. Low contention spreads keys uniformly over the table
//! (waves stay wide); high contention pins 95% of operations to 8 hot
//! keys, which chains most transactions into deep waves — the honest case
//! where parallel execution cannot beat serial by much and mostly pays
//! scheduling overhead.
//!
//! Two storage backends bound the story:
//!
//! - `mem` — the in-memory store: execution cost is pure CPU (record
//!   hashing), so the sweep scales with *physical cores*. On a
//!   single-core container it records scheduling overhead (< 1×); on a
//!   multicore machine (e.g. the CI runner) it shows the core-scaling win.
//! - `io` — the Figure 14 storage class: every record read pays a
//!   blocking ~20µs I/O latency (SQLite-style backend). Here the worker
//!   pool overlaps the waits, so the speedup is real even on one core —
//!   this is the execution/validation bottleneck case the parallel
//!   executor is built for.
//!
//! The detected CPU count is recorded in the emitted JSON so readers can
//! interpret the `mem` rows. Alongside the criterion output it emits
//! `BENCH_execution.json` at the workspace root so the perf trajectory is
//! recorded, not asserted — CI runs this bench with a short window and
//! uploads the file.

use criterion::{criterion_group, Criterion};
use rdb_common::block::BlockCertificate;
use rdb_common::{Batch, ClientId, Digest, ProtocolKind, ReplicaId, SeqNum, ViewNum};
use rdb_pipeline::queues::ExecuteItem;
use rdb_pipeline::scheduler::{ExecPool, ParallelExecutor};
use rdb_pipeline::Executor;
use rdb_storage::blockchain::ChainMode;
use rdb_storage::{Blockchain, MemStore, StateStore, WriteRecord};
use rdb_workload::{WorkloadConfig, WorkloadGenerator};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TABLE_SIZE: u64 = 8_192;
const BATCH_TXNS: usize = 256;
const OPS_PER_TXN: usize = 4;
const VALUE_SIZE: usize = 128;
/// Window width for the parallel executor (matches the replica default).
const WINDOW: usize = 4;
/// Simulated per-read I/O latency of the `io` backend.
const IO_DELAY: Duration = Duration::from_micros(20);

/// A MemStore whose reads pay a blocking I/O latency — the SQLite-class
/// backend of Figure 14, where the execute stage stalls on the disk.
/// Writes stay fast: the deferred-commit path batches them through
/// `apply`, modeling a write-behind journal.
struct IoStore {
    inner: MemStore,
}

impl StateStore for IoStore {
    fn get(&self, key: u64) -> Option<Vec<u8>> {
        std::thread::sleep(IO_DELAY);
        self.inner.get(key)
    }

    fn put(&self, key: u64, value: &[u8]) {
        self.inner.put(key, value);
    }

    fn apply(&self, writes: &[WriteRecord]) {
        self.inner.apply(writes);
    }

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn state_digest(&self) -> Digest {
        self.inner.state_digest()
    }
}

#[derive(Clone, Copy)]
enum Backend {
    Mem,
    Io,
}

impl Backend {
    fn name(self) -> &'static str {
        match self {
            Backend::Mem => "mem",
            Backend::Io => "io",
        }
    }

    fn fresh_executor(self) -> Arc<Executor> {
        let store: Arc<dyn StateStore> = match self {
            Backend::Mem => Arc::new(MemStore::with_table(TABLE_SIZE, VALUE_SIZE)),
            Backend::Io => Arc::new(IoStore {
                inner: MemStore::with_table(TABLE_SIZE, VALUE_SIZE),
            }),
        };
        let chain = Arc::new(parking_lot::Mutex::new(Blockchain::new(
            Digest::ZERO,
            0,
            ChainMode::Certificate,
        )));
        Arc::new(Executor::new(
            ReplicaId(0),
            ProtocolKind::Pbft,
            store,
            chain,
        ))
    }

    /// The `io` backend is read-latency-bound, so its workload carries a
    /// realistic read share; the `mem` workload is the paper's mostly-
    /// write YCSB profile. Fewer batches keep the sleeping sweep short.
    fn workload(self) -> (f64, usize) {
        match self {
            Backend::Mem => (0.9, 24),
            Backend::Io => (0.5, 12),
        }
    }
}

struct Scenario {
    name: &'static str,
    conflict_ratio: f64,
    hot_keys: u64,
}

const SCENARIOS: [Scenario; 2] = [
    Scenario {
        name: "low",
        conflict_ratio: 0.0,
        hot_keys: 16,
    },
    Scenario {
        name: "high",
        conflict_ratio: 0.95,
        hot_keys: 8,
    },
];

/// Builds the committed workload for one scenario: `batches` sequences of
/// `BATCH_TXNS` transactions each, identical across thread counts.
fn build_items(scenario: &Scenario, write_ratio: f64, batches: usize) -> Vec<ExecuteItem> {
    let mut gen = WorkloadGenerator::new(
        WorkloadConfig {
            table_size: TABLE_SIZE,
            ops_per_txn: OPS_PER_TXN,
            write_ratio,
            value_size: VALUE_SIZE,
            payload_bytes: 0,
            zipf_theta: 0.0,
            conflict_ratio: scenario.conflict_ratio,
            hot_keys: scenario.hot_keys,
        },
        42,
    );
    let clients: Vec<ClientId> = (0..64).map(ClientId).collect();
    (0..batches)
        .map(|i| {
            let batch: Batch = gen.next_batch(&clients, BATCH_TXNS);
            ExecuteItem {
                seq: SeqNum(i as u64 + 1),
                view: ViewNum(0),
                digest: Digest([i as u8; 32]),
                batch: batch.into(),
                certificate: BlockCertificate::default(),
                history: None,
            }
        })
        .collect()
}

/// Executes all items with `threads` execute workers (1 = serial path)
/// against a fresh store; returns (txns/sec, final state digest).
fn run_once(items: &[ExecuteItem], threads: usize, backend: Backend) -> (f64, Digest) {
    let executor = backend.fresh_executor();
    let total_txns: usize = items.iter().map(|i| i.batch.len()).sum();
    let start;
    if threads == 1 {
        start = Instant::now();
        for item in items {
            let (digest, replies) = executor.execute(item);
            std::hint::black_box((digest, replies.len()));
        }
    } else {
        let pool = ExecPool::new("bench", threads, Vec::new());
        let par = ParallelExecutor::new(Arc::clone(&executor), pool);
        start = Instant::now();
        for window in items.chunks(WINDOW) {
            for out in par.execute_window(window) {
                std::hint::black_box((out.0, out.1.len()));
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    (total_txns as f64 / elapsed, executor.store().state_digest())
}

struct Sample {
    name: String,
    value: f64,
}

fn record(samples: &mut Vec<Sample>, name: impl Into<String>, value: f64, unit: &str) -> f64 {
    let name = name.into();
    println!("{name:<44} {value:>12.1} {unit}");
    samples.push(Sample { name, value });
    value
}

fn run_suite() -> Vec<Sample> {
    let mut samples = Vec::new();
    let repeats: usize = std::env::var("RDB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|iters| (iters / 10).clamp(1, 16))
        .unwrap_or(4);

    for backend in [Backend::Mem, Backend::Io] {
        let (write_ratio, batches) = backend.workload();
        for scenario in &SCENARIOS {
            let items = build_items(scenario, write_ratio, batches);
            // Determinism cross-check while we are here: every thread
            // count must land on the same final digest.
            let reference = run_once(&items, 1, backend).1;
            let mut serial_tput = 0.0;
            for threads in [1usize, 2, 4, 8] {
                // Warm-up pass, then best-of-N (throughput is noisy in CI).
                let _ = run_once(&items, threads, backend);
                let mut best = 0.0f64;
                for _ in 0..repeats {
                    let (tput, digest) = run_once(&items, threads, backend);
                    assert_eq!(
                        digest, reference,
                        "parallel execution diverged from serial at {threads} threads"
                    );
                    best = best.max(tput);
                }
                record(
                    &mut samples,
                    format!(
                        "execution/{}/{}/threads-{threads}",
                        backend.name(),
                        scenario.name
                    ),
                    best,
                    "txn/s",
                );
                if threads == 1 {
                    serial_tput = best;
                } else {
                    record(
                        &mut samples,
                        format!(
                            "execution/{}/{}/speedup-{threads}v1",
                            backend.name(),
                            scenario.name
                        ),
                        best / serial_tput,
                        "x",
                    );
                }
            }
        }
    }
    samples
}

fn emit_json(samples: &[Sample]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_execution.json");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"execution_path\",\n");
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!(
        "  \"workload\": \"{BATCH_TXNS} txns/batch x {OPS_PER_TXN} ops, {VALUE_SIZE}B values, \
         table {TABLE_SIZE}, window {WINDOW}; io backend reads pay {}us\",\n",
        IO_DELAY.as_micros()
    ));
    out.push_str(
        "  \"unit\": \"txn/s (speedup entries are ratios vs the serial execute-thread; \
         mem rows scale with physical cores, io rows with overlapped read latency)\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.1}}}{}\n",
            s.name, s.value, comma
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_execution.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_execution_path(_c: &mut Criterion) {
    let samples = run_suite();
    emit_json(&samples);
}

criterion_group!(benches, bench_execution_path);

fn main() {
    // `cargo test` runs bench targets with `--test`: compile/run parity
    // only, skip the measurement suite.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
}
