//! Consensus state-machine step costs: how cheap is the pure protocol
//! logic once crypto and I/O are moved off it (the sans-io design's
//! premise).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::{
    Batch, ClientId, Digest, Operation, ReplicaId, SeqNum, SignatureBytes, Transaction, ViewNum,
};
use rdb_consensus::{ConsensusConfig, Pbft, Zyzzyva};
use std::hint::black_box;
use std::sync::Arc;

fn batch(n: usize) -> Batch {
    (0..n as u64)
        .map(|i| {
            Transaction::new(
                ClientId(i),
                i,
                vec![Operation::Write {
                    key: i,
                    value: vec![0; 8],
                }],
            )
        })
        .collect()
}

fn bench_pbft_round(c: &mut Criterion) {
    let cfg = ConsensusConfig::new(16, 1_000_000);
    c.bench_function("pbft/full_round_backup", |b| {
        b.iter_batched(
            || Pbft::new(ReplicaId(1), cfg),
            |mut r| {
                let d = Digest([7; 32]);
                let seq = SeqNum(1);
                let view = ViewNum(0);
                black_box(r.on_message(&SignedMessage::new(
                    Message::PrePrepare {
                        view,
                        seq,
                        digest: d,
                        batch: batch(100).into(),
                    },
                    Sender::Replica(ReplicaId(0)),
                    SignatureBytes::empty(),
                )));
                for i in 2..12u32 {
                    black_box(r.on_message(&SignedMessage::new(
                        Message::Prepare {
                            view,
                            seq,
                            digest: d,
                        },
                        Sender::Replica(ReplicaId(i)),
                        SignatureBytes::empty(),
                    )));
                }
                for i in 2..13u32 {
                    black_box(r.on_message(&SignedMessage::new(
                        Message::Commit {
                            view,
                            seq,
                            digest: d,
                        },
                        Sender::Replica(ReplicaId(i)),
                        SignatureBytes::empty(),
                    )));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_pbft_propose(c: &mut Criterion) {
    let cfg = ConsensusConfig::new(16, 1_000_000);
    let mut p = Pbft::new(ReplicaId(0), cfg);
    let b100 = batch(100);
    c.bench_function("pbft/propose_100txn", |b| {
        b.iter(|| black_box(p.propose(b100.clone(), Digest([1; 32]))))
    });
}

fn bench_zyzzyva_spec_execute(c: &mut Criterion) {
    let cfg = ConsensusConfig::new(16, 1_000_000);
    let mut z = Zyzzyva::new(ReplicaId(1), cfg);
    let b100 = Arc::new(batch(100));
    let mut seq = 0u64;
    c.bench_function("zyzzyva/order_and_spec_execute", |b| {
        b.iter(|| {
            seq += 1;
            black_box(z.on_message(&SignedMessage::new(
                Message::PrePrepare {
                    view: ViewNum(0),
                    seq: SeqNum(seq),
                    digest: Digest([seq as u8; 32]),
                    batch: Arc::clone(&b100),
                },
                Sender::Replica(ReplicaId(0)),
                SignatureBytes::empty(),
            )))
        })
    });
}

criterion_group!(
    benches,
    bench_pbft_round,
    bench_pbft_propose,
    bench_zyzzyva_spec_execute
);
criterion_main!(benches);
