//! End-to-end benches: a real 4-replica deployment under closed-loop load
//! (threaded runtime) and representative simulator sweeps (the figure
//! engine itself).

use criterion::{criterion_group, criterion_main, Criterion};
use rdb_common::ProtocolKind;
use resilientdb::{run_closed_loop, SystemBuilder};
use std::hint::black_box;
use std::time::Duration;

fn bench_threaded_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded_e2e");
    g.sample_size(10);
    for protocol in [ProtocolKind::Pbft, ProtocolKind::Zyzzyva] {
        g.bench_function(format!("{}/4replicas_burst50", protocol.name()), |b| {
            let db = SystemBuilder::new(4)
                .protocol(protocol)
                .batch_size(10)
                .table_size(1_024)
                .client_keys(2)
                .build()
                .expect("valid config");
            let mut client = db.client(0);
            b.iter(|| {
                let txns: Vec<_> = (0..50)
                    .map(|i| client.write_txn(i % 1_024, vec![i as u8; 8]))
                    .collect();
                let done = client.submit_and_wait(txns, Duration::from_secs(30));
                assert_eq!(done, 50);
                black_box(done)
            });
            db.shutdown();
        });
    }
    g.finish();
}

fn bench_closed_loop_measurement(c: &mut Criterion) {
    let mut g = c.benchmark_group("closed_loop");
    g.sample_size(10);
    g.bench_function("pbft/2clients_500ms", |b| {
        let db = SystemBuilder::new(4)
            .batch_size(10)
            .table_size(1_024)
            .client_keys(4)
            .build()
            .expect("valid config");
        b.iter(|| {
            let m = run_closed_loop(&db, 2, 20, Duration::from_millis(500));
            black_box(m.completed)
        });
        db.shutdown();
    });
    g.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.bench_function("pbft/n16_80k_clients", |b| {
        b.iter(|| {
            let mut cfg = rdb_bench::sim_base(16);
            cfg.warmup_ms = 100;
            cfg.measure_ms = 300;
            black_box(cfg.run().completed_txns)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_threaded_cluster,
    bench_closed_loop_measurement,
    bench_simulator
);
criterion_main!(benches);
