//! Storage microbenchmarks: the in-memory vs paged trade-off (Figure 14)
//! at the single-operation level, plus ledger append cost per chain mode.

use criterion::{criterion_group, criterion_main, Criterion};
use rdb_common::block::BlockCertificate;
use rdb_common::{Digest, ReplicaId, SeqNum, SignatureBytes, ViewNum};
use rdb_storage::blockchain::ChainMode;
use rdb_storage::pagedb::{PagedStore, PagedStoreConfig};
use rdb_storage::{Blockchain, MemStore, StateStore};
use std::hint::black_box;

fn bench_memstore(c: &mut Criterion) {
    let store = MemStore::with_table(10_000, 8);
    let mut g = c.benchmark_group("memstore");
    let mut k = 0u64;
    g.bench_function("put", |b| {
        b.iter(|| {
            k = (k + 37) % 10_000;
            store.put(black_box(k), &[1u8; 8]);
        })
    });
    g.bench_function("get", |b| {
        b.iter(|| {
            k = (k + 37) % 10_000;
            black_box(store.get(black_box(k)))
        })
    });
    g.finish();
}

fn bench_pagedstore(c: &mut Criterion) {
    let path = std::env::temp_dir().join(format!("rdb-bench-paged-{}", std::process::id()));
    let store = PagedStore::create(
        &path,
        PagedStoreConfig {
            record_size: 32,
            capacity: 10_000,
            cache_pages: 16,
            fsync_on_write: false,
        },
    )
    .unwrap();
    let mut g = c.benchmark_group("pagedstore");
    g.sample_size(20);
    let mut k = 0u64;
    g.bench_function("put", |b| {
        b.iter(|| {
            k = (k + 997) % 10_000; // stride defeats the 16-page cache
            store.put(black_box(k), &[1u8; 8]);
        })
    });
    g.bench_function("get", |b| {
        b.iter(|| {
            k = (k + 997) % 10_000;
            black_box(store.get(black_box(k)))
        })
    });
    g.finish();
    let _ = std::fs::remove_file(path);
}

fn bench_blockchain(c: &mut Criterion) {
    let cert = || {
        BlockCertificate::new(
            (0..11)
                .map(|i| (ReplicaId(i), SignatureBytes(vec![i as u8; 16])))
                .collect(),
        )
    };
    let mut g = c.benchmark_group("blockchain");
    // ResilientDB's certificate linkage vs traditional hash chaining — the
    // ablation Section 4.6 motivates.
    for (label, mode) in [
        ("certificate", ChainMode::Certificate),
        ("prev_hash", ChainMode::PrevHash),
    ] {
        g.bench_function(format!("append/{label}"), |b| {
            let mut chain = Blockchain::new(Digest::ZERO, 11, mode);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                chain
                    .append(
                        SeqNum(seq),
                        Digest([1; 32]),
                        ViewNum(0),
                        cert(),
                        100,
                        Digest::ZERO,
                    )
                    .unwrap();
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_memstore, bench_pagedstore, bench_blockchain);
criterion_main!(benches);
