//! Microbenchmarks of the crypto substrate — the calibration source for
//! the simulator's cost model (Figure 13's mechanism).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdb_crypto::cmac::CmacAes128;
use rdb_crypto::ed25519::Ed25519KeyPair;
use rdb_crypto::rsa::RsaKeyPair;
use rdb_crypto::sha2::sha256;
use rdb_crypto::sha3::sha3_256;
use std::hint::black_box;

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}"), |b| {
            b.iter(|| black_box(sha256(black_box(&data))))
        });
        g.bench_function(format!("sha3_256/{size}"), |b| {
            b.iter(|| black_box(sha3_256(black_box(&data))))
        });
    }
    g.finish();
}

fn bench_cmac(c: &mut Criterion) {
    let cmac = CmacAes128::new(&[7u8; 16]);
    let mut g = c.benchmark_group("cmac");
    for size in [64usize, 4096] {
        let data = vec![0xcdu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("tag/{size}"), |b| {
            b.iter(|| black_box(cmac.tag(black_box(&data))))
        });
    }
    let data = vec![0xcdu8; 64];
    let tag = cmac.tag(&data);
    g.bench_function("verify/64", |b| {
        b.iter(|| black_box(cmac.verify(&data, &tag)))
    });
    g.finish();
}

fn bench_ed25519(c: &mut Criterion) {
    let kp = Ed25519KeyPair::from_seed(&[3u8; 32]);
    let msg = vec![0xefu8; 100];
    let sig = kp.sign(&msg);
    let mut g = c.benchmark_group("ed25519");
    g.sample_size(20);
    g.bench_function("sign/100B", |b| {
        b.iter(|| black_box(kp.sign(black_box(&msg))))
    });
    g.bench_function("verify/100B", |b| {
        b.iter(|| black_box(kp.public_key().verify(black_box(&msg), &sig)))
    });
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let kp = RsaKeyPair::generate(1024, &mut rng);
    let msg = vec![0x42u8; 100];
    let sig = kp.sign(&msg);
    let mut g = c.benchmark_group("rsa1024");
    g.sample_size(10);
    g.bench_function("sign/100B", |b| {
        b.iter_batched(
            || msg.clone(),
            |m| black_box(kp.sign(&m)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("verify/100B", |b| {
        b.iter(|| black_box(kp.public_key().verify(black_box(&msg), &sig)))
    });
    g.finish();
}

criterion_group!(benches, bench_hashing, bench_cmac, bench_ed25519, bench_rsa);
criterion_main!(benches);
