//! Pipeline-plumbing microbenchmarks: the lock-free client queue, the
//! QC-slot execution queues (Section 4.6), buffer pools (Section 4.8) and
//! batch digesting (Section 4.3).

use criterion::{criterion_group, criterion_main, Criterion};
use rdb_common::block::BlockCertificate;
use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::Operation;
use rdb_common::Wire;
use rdb_common::{Batch, ClientId, Digest, SeqNum, SignatureBytes, Transaction, ViewNum};
use rdb_crypto::digest;
use rdb_pipeline::{ClientRequestQueue, ExecuteItem, ExecutionQueues};
use rdb_storage::BufferPool;
use std::hint::black_box;
use std::time::Duration;

fn sample_batch(n: usize) -> Batch {
    (0..n as u64)
        .map(|i| {
            Transaction::new(
                ClientId(i),
                i,
                vec![Operation::Write {
                    key: i,
                    value: vec![0; 8],
                }],
            )
        })
        .collect()
}

fn bench_client_queue(c: &mut Criterion) {
    let q = ClientRequestQueue::new();
    let msg = SignedMessage::new(
        Message::ClientRequest {
            txns: sample_batch(1).txns,
        },
        Sender::Client(ClientId(0)),
        SignatureBytes::empty(),
    );
    c.bench_function("client_queue/push_pop", |b| {
        b.iter(|| {
            q.push(msg.clone());
            black_box(q.pop())
        })
    });
}

fn bench_execution_queues(c: &mut Criterion) {
    let eq = ExecutionQueues::new(4096);
    let mut seq = 0u64;
    c.bench_function("execution_queues/deposit_take", |b| {
        b.iter(|| {
            seq += 1;
            eq.deposit(ExecuteItem {
                seq: SeqNum(seq),
                view: ViewNum(0),
                digest: Digest::ZERO,
                batch: Batch::default().into(),
                certificate: BlockCertificate::default(),
                history: None,
            });
            black_box(eq.take(SeqNum(seq), Duration::from_millis(10)))
        })
    });
}

fn bench_buffer_pool(c: &mut Criterion) {
    let pool: BufferPool<Vec<u8>> =
        BufferPool::new(64, 64, || Vec::with_capacity(4096), |v| v.clear());
    c.bench_function("buffer_pool/take_return", |b| {
        b.iter(|| {
            let mut buf = pool.take();
            buf.extend_from_slice(&[0u8; 128]);
            black_box(buf.len())
        })
    });
    // Baseline: raw allocation of the same buffer.
    c.bench_function("buffer_pool/raw_alloc_baseline", |b| {
        b.iter(|| {
            let mut buf: Vec<u8> = Vec::with_capacity(4096);
            buf.extend_from_slice(&[0u8; 128]);
            black_box(buf.len())
        })
    });
}

fn bench_batch_digest(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_digest");
    for size in [10usize, 100, 1000] {
        let batch = sample_batch(size);
        // Single digest over the batch (ResilientDB, Section 4.3) ...
        g.bench_function(format!("single_hash/{size}"), |b| {
            b.iter(|| black_box(digest(&batch.canonical_bytes())))
        });
        // ... versus hashing every transaction separately.
        g.bench_function(format!("per_txn_hash/{size}"), |b| {
            b.iter(|| {
                for t in &batch.txns {
                    black_box(digest(&t.encode()));
                }
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_client_queue,
    bench_execution_queues,
    bench_buffer_pool,
    bench_batch_digest
);
criterion_main!(benches);
