//! Crypto fast-path microbenchmarks — the measurement source for the
//! simulator's [`rdb_crypto::CostModel::reference`] constants and the
//! evidence for the batch-verify pipeline stage.
//!
//! Measures, with the same JSON-emitting harness as `message_path`:
//!
//! - fixed-base scalar multiplication: the naive double-and-add ladder the
//!   seed shipped with vs. the precomputed basepoint table;
//! - Ed25519 signing (windowed) and single verification (Straus);
//! - Ed25519 batch verification at window sizes {8, 32, 128}, reported as
//!   amortized ns *per signature*;
//! - the CMAC and RSA baselines that anchor the paper's MAC-vs-signature
//!   cost asymmetry (Section 6 / Figure 13).
//!
//! Emits `BENCH_crypto.json` at the workspace root; CI runs this bench
//! with a short window and uploads the file.

use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rdb_crypto::cmac::CmacAes128;
use rdb_crypto::ed25519::{
    basepoint_table, verify_batch, BatchEntry, Ed25519KeyPair, EdwardsPoint,
};
use rdb_crypto::rsa::RsaKeyPair;
use rdb_crypto::scheme::RSA_BITS;
use rdb_crypto::sha2::sha512;
use std::hint::black_box;
use std::time::Instant;

/// Message size for all signature operations: a typical signed client
/// request in this system.
const MSG_BYTES: usize = 100;

struct Sample {
    name: String,
    value: f64,
}

fn record(samples: &mut Vec<Sample>, name: impl Into<String>, value: f64) -> f64 {
    let name = name.into();
    samples.push(Sample {
        name: name.clone(),
        value,
    });
    if name.contains("speedup") {
        println!("{name:<48} {value:>12.2} x");
    } else {
        println!("{name:<48} {value:>12.0} ns/op");
    }
    value
}

/// Times `op` and returns mean ns/iter over `iters` runs (one warm-up).
fn time_ns(iters: u32, mut op: impl FnMut()) -> f64 {
    op();
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn run_suite() -> Vec<Sample> {
    let mut samples = Vec::new();
    let iters: u32 = std::env::var("RDB_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    // Heavier ops (RSA, large batches) get a scaled-down iteration count.
    let slow_iters = (iters / 10).max(3);

    let msg = vec![0xefu8; MSG_BYTES];
    let kp = Ed25519KeyPair::from_seed(&[3u8; 32]);
    let scalar = {
        // A canonical-size scalar derived from a fixed transcript.
        let mut s = [0u8; 32];
        s.copy_from_slice(&sha512(b"crypto_path scalar")[..32]);
        s[31] &= 0x0f;
        s
    };

    // --- fixed-base scalar multiplication --------------------------------
    let base = EdwardsPoint::basepoint();
    let table = basepoint_table(); // build cost paid before timing
    let ns_ladder = time_ns(iters.min(100), || {
        black_box(base.scalar_mul(black_box(&scalar)));
    });
    record(&mut samples, "scalar_mul/naive_ladder", ns_ladder);
    let ns_table = time_ns(iters, || {
        black_box(table.mul(black_box(&scalar)));
    });
    record(&mut samples, "scalar_mul/basepoint_table", ns_table);
    record(&mut samples, "scalar_mul/speedup", ns_ladder / ns_table);

    // --- Ed25519 sign / single verify ------------------------------------
    let ns_sign = time_ns(iters, || {
        black_box(kp.sign(black_box(&msg)));
    });
    record(&mut samples, "ed25519/sign/windowed", ns_sign);
    // The seed's sign cost is dominated by its naive ladder; reconstruct
    // it for the trajectory record: sign = ladder-mul + everything else.
    record(
        &mut samples,
        "ed25519/sign/naive_baseline",
        ns_sign - ns_table + ns_ladder,
    );
    let sig = kp.sign(&msg);
    let ns_verify = time_ns(iters, || {
        black_box(kp.public_key().verify(black_box(&msg), &sig));
    });
    record(&mut samples, "ed25519/verify/single", ns_verify);

    // --- Ed25519 batch verify at {8, 32, 128} ----------------------------
    // Distinct keys and messages per slot: the honest workload, not the
    // same-key shortcut.
    let keys: Vec<Ed25519KeyPair> = (0..128)
        .map(|i| Ed25519KeyPair::from_seed(&[i as u8 + 1; 32]))
        .collect();
    let msgs: Vec<Vec<u8>> = (0..128)
        .map(|i| {
            let mut m = vec![0xabu8; MSG_BYTES];
            m[0] = i as u8;
            m
        })
        .collect();
    let sigs: Vec<[u8; 64]> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
    for batch in [8usize, 32, 128] {
        let entries: Vec<BatchEntry> = (0..batch)
            .map(|i| BatchEntry {
                public: keys[i].public_key(),
                msg: &msgs[i],
                sig: &sigs[i],
            })
            .collect();
        let n = if batch >= 128 {
            slow_iters
        } else {
            iters.min(50)
        };
        let ns_total = time_ns(n, || {
            black_box(verify_batch(black_box(&entries)));
        });
        let per_sig = ns_total / batch as f64;
        record(
            &mut samples,
            format!("ed25519/verify/batch/{batch}"),
            per_sig,
        );
        record(
            &mut samples,
            format!("ed25519/verify/batch_speedup/{batch}"),
            ns_verify / per_sig,
        );
    }

    // --- CMAC baseline -----------------------------------------------------
    let cmac = CmacAes128::new(&[7u8; 16]);
    let ns_tag = time_ns(iters * 10, || {
        black_box(cmac.tag(black_box(&msg)));
    });
    record(&mut samples, "cmac/tag/100B", ns_tag);
    let tag = cmac.tag(&msg);
    let ns_mac_verify = time_ns(iters * 10, || {
        black_box(cmac.verify(black_box(&msg), &tag));
    });
    record(&mut samples, "cmac/verify/100B", ns_mac_verify);

    // --- RSA baseline ------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(11);
    let rsa = RsaKeyPair::generate(RSA_BITS, &mut rng);
    let ns_rsa_sign = time_ns(slow_iters, || {
        black_box(rsa.sign(black_box(&msg)));
    });
    record(&mut samples, "rsa1024/sign/100B", ns_rsa_sign);
    let rsig = rsa.sign(&msg);
    let ns_rsa_verify = time_ns(slow_iters * 4, || {
        black_box(rsa.public_key().verify(black_box(&msg), &rsig));
    });
    record(&mut samples, "rsa1024/verify/100B", ns_rsa_verify);

    samples
}

fn emit_json(samples: &[Sample]) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crypto.json");
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"crypto_path\",\n");
    out.push_str(&format!("  \"msg_bytes\": {MSG_BYTES},\n"));
    out.push_str(
        "  \"unit\": \"ns_per_op (batch entries are per-signature; speedup entries are ratios)\",\n",
    );
    out.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"value\": {:.1}}}{}\n",
            s.name, s.value, comma
        ));
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("could not write BENCH_crypto.json: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench_crypto_path(_c: &mut Criterion) {
    let samples = run_suite();
    emit_json(&samples);
}

criterion_group!(benches, bench_crypto_path);

fn main() {
    // `cargo test` runs bench targets with `--test`: compile/run parity
    // only, skip the measurement suite.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
}
