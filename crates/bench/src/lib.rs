//! Figure-regeneration harness.
//!
//! One function per paper figure; each runs the discrete-event simulator
//! over the figure's parameter sweep and returns rows ready to print. The
//! `figures` binary dispatches on the figure id; `EXPERIMENTS.md` records
//! the measured-vs-paper comparison.

use rdb_common::{CryptoScheme, ProtocolKind, StorageMode, SystemConfig, ThreadConfig};
use rdb_sim::{SimConfig, SimMode, SimReport, SimStage};

/// A single measured point of a figure.
#[derive(Debug, Clone)]
pub struct Point {
    /// Series name ("PBFT", "Zyzzyva", "ED25519", ...).
    pub series: String,
    /// X-axis value rendered as text (replica count, batch size, ...).
    pub x: String,
    /// Throughput in transactions per second.
    pub throughput_tps: f64,
    /// Mean latency in milliseconds.
    pub latency_ms: f64,
}

impl Point {
    fn from_report(series: impl Into<String>, x: impl ToString, r: &SimReport) -> Self {
        Point {
            series: series.into(),
            x: x.to_string(),
            throughput_tps: r.throughput_tps,
            latency_ms: r.avg_latency_ms,
        }
    }
}

/// Builds the simulator configuration used by every figure (paper-default
/// system, shortened warmup/measure windows so the whole suite runs in
/// minutes).
pub fn sim_base(n: usize) -> SimConfig {
    let system = SystemConfig::new(n).expect("valid n");
    let mut cfg = SimConfig::new(system);
    cfg.warmup_ms = 300;
    cfg.measure_ms = 900;
    cfg
}

fn run(mut cfg: SimConfig, mutate: impl FnOnce(&mut SimConfig)) -> SimReport {
    mutate(&mut cfg);
    cfg.run()
}

/// Figure 1: throughput vs replicas; ResilientDB-PBFT (standard pipeline)
/// against Zyzzyva on a protocol-centric (monolithic) design; 80K clients.
pub fn fig1() -> Vec<Point> {
    let mut out = Vec::new();
    for n in [4usize, 8, 16, 32] {
        let pbft = run(sim_base(n), |c| {
            c.system.protocol = ProtocolKind::Pbft;
            c.system.threads = ThreadConfig::standard();
        });
        out.push(Point::from_report("ResilientDB (PBFT)", n, &pbft));
        let zyz = run(sim_base(n), |c| {
            c.system.protocol = ProtocolKind::Zyzzyva;
            c.system.threads = ThreadConfig::monolithic();
        });
        out.push(Point::from_report("Zyzzyva (protocol-centric)", n, &zyz));
    }
    out
}

/// Figure 7: upper bound without consensus — the primary replies directly,
/// with and without execution, two independent threads.
pub fn fig7() -> Vec<Point> {
    let mut out = Vec::new();
    for clients in [10_000usize, 20_000, 40_000, 80_000] {
        for (label, execute) in [("No Execution", false), ("Execution", true)] {
            let r = run(sim_base(4), |c| {
                c.mode = SimMode::UpperBound { execute };
                c.system.crypto = CryptoScheme::NoCrypto;
                c.system.num_clients = clients;
                c.system.threads.worker_threads = 2;
            });
            out.push(Point::from_report(label, clients, &r));
        }
    }
    out
}

/// The four pipeline configurations of Figure 8, in the paper's `xE yB`
/// notation.
pub fn fig8_configs() -> Vec<(&'static str, ThreadConfig)> {
    vec![
        ("0E 0B", ThreadConfig::monolithic()),
        ("1E 0B", ThreadConfig::with_e_b(1, 0)),
        ("1E 1B", ThreadConfig::with_e_b(1, 1)),
        ("1E 2B", ThreadConfig::with_e_b(1, 2)),
    ]
}

/// Figure 8: throughput/latency vs replicas for each thread configuration
/// and both protocols.
pub fn fig8() -> Vec<Point> {
    let mut out = Vec::new();
    for n in [4usize, 8, 16, 32] {
        for protocol in [ProtocolKind::Pbft, ProtocolKind::Zyzzyva] {
            for (label, threads) in fig8_configs() {
                let r = run(sim_base(n), |c| {
                    c.system.protocol = protocol;
                    c.system.threads = threads;
                });
                out.push(Point::from_report(
                    format!("{} {label}", protocol.name()),
                    n,
                    &r,
                ));
            }
        }
    }
    out
}

/// One Figure 9 row: per-stage saturation at the primary and mean backup.
#[derive(Debug, Clone)]
pub struct SaturationRow {
    /// Configuration label, e.g. "PBFT 1E 2B".
    pub config: String,
    /// `(stage label, primary %, backup %)` triples.
    pub stages: Vec<(&'static str, f64, f64)>,
    /// Cumulative primary saturation.
    pub primary_cumulative: f64,
    /// Cumulative backup saturation.
    pub backup_cumulative: f64,
}

/// Figure 9: per-thread saturation levels for the eight configurations at
/// 16 replicas.
pub fn fig9() -> Vec<SaturationRow> {
    let mut out = Vec::new();
    for protocol in [ProtocolKind::Pbft, ProtocolKind::Zyzzyva] {
        for (label, threads) in fig8_configs() {
            let r = run(sim_base(16), |c| {
                c.system.protocol = protocol;
                c.system.threads = threads;
            });
            let stages = SimStage::CPU
                .iter()
                .map(|s| {
                    (
                        s.label(),
                        r.primary_saturation.get(s).copied().unwrap_or(0.0),
                        r.backup_saturation.get(s).copied().unwrap_or(0.0),
                    )
                })
                .collect();
            out.push(SaturationRow {
                config: format!("{} {label}", protocol.name()),
                stages,
                primary_cumulative: r.primary_cumulative(),
                backup_cumulative: r.backup_cumulative(),
            });
        }
    }
    out
}

/// Figure 10: throughput/latency vs batch size at 16 replicas.
pub fn fig10() -> Vec<Point> {
    [1usize, 10, 50, 100, 500, 1_000, 3_000, 5_000]
        .iter()
        .map(|&b| {
            let r = run(sim_base(16), |c| c.system.batch_size = b);
            Point::from_report("PBFT", b, &r)
        })
        .collect()
}

/// Figure 11: operations per transaction × batch-thread count.
pub fn fig11() -> Vec<Point> {
    let mut out = Vec::new();
    for batch_threads in [2usize, 3, 4, 5] {
        for ops in [1usize, 10, 30, 50] {
            let r = run(sim_base(16), |c| {
                c.system.ops_per_txn = ops;
                c.system.threads.batch_threads = batch_threads;
            });
            out.push(Point::from_report(format!("{batch_threads}B"), ops, &r));
        }
    }
    out
}

/// Figure 12: per-transaction payload size (message size) sweep.
pub fn fig12() -> Vec<Point> {
    [8_192usize, 16_384, 32_768, 65_536]
        .iter()
        .map(|&bytes| {
            let r = run(sim_base(16), |c| c.system.payload_bytes = bytes);
            Point::from_report("PBFT", format!("{}KB", bytes / 1024), &r)
        })
        .collect()
}

/// Figure 13: signature-scheme comparison.
pub fn fig13() -> Vec<Point> {
    [
        CryptoScheme::NoCrypto,
        CryptoScheme::Ed25519,
        CryptoScheme::Rsa,
        CryptoScheme::CmacEd25519,
    ]
    .iter()
    .map(|&scheme| {
        let r = run(sim_base(16), |c| c.system.crypto = scheme);
        Point::from_report(scheme.name(), scheme.name(), &r)
    })
    .collect()
}

/// Figure 14: in-memory vs paged (SQLite-like) state storage.
pub fn fig14() -> Vec<Point> {
    [StorageMode::InMemory, StorageMode::Paged]
        .iter()
        .map(|&storage| {
            let r = run(sim_base(16), |c| c.system.storage = storage);
            Point::from_report(storage.name(), storage.name(), &r)
        })
        .collect()
}

/// Figure 15: client-population sweep.
pub fn fig15() -> Vec<Point> {
    [4_000usize, 8_000, 16_000, 32_000, 64_000, 80_000]
        .iter()
        .map(|&clients| {
            let r = run(sim_base(16), |c| c.system.num_clients = clients);
            Point::from_report("PBFT", clients, &r)
        })
        .collect()
}

/// Figure 16: hardware cores per replica.
pub fn fig16() -> Vec<Point> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&cores| {
            let r = run(sim_base(16), |c| c.system.cores = cores);
            Point::from_report("PBFT", cores, &r)
        })
        .collect()
}

/// Figure 17: backup failures under both protocols (n = 16, f = 5).
pub fn fig17() -> Vec<Point> {
    let mut out = Vec::new();
    for protocol in [ProtocolKind::Pbft, ProtocolKind::Zyzzyva] {
        for failures in [0usize, 1, 5] {
            let r = run(sim_base(16), |c| {
                c.system.protocol = protocol;
                c.failures = failures;
            });
            out.push(Point::from_report(protocol.name(), failures, &r));
        }
    }
    out
}

/// The §1 headline multipliers, derived from the sweeps.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Throughput gain of optimal batching over batch size 1.
    pub batching_gain: f64,
    /// Throughput gain of CMAC+ED25519 over RSA.
    pub crypto_gain: f64,
    /// Latency multiplier of RSA over CMAC+ED25519.
    pub rsa_latency_multiplier: f64,
    /// Throughput gain of in-memory over paged storage.
    pub memory_gain: f64,
    /// Throughput gain of decoupling execution (1E 0B over 0E 0B), percent.
    pub decoupled_execution_gain_pct: f64,
    /// Throughput loss factor of Zyzzyva under one failure.
    pub zyzzyva_failure_loss: f64,
    /// ResilientDB-PBFT over protocol-centric Zyzzyva at 32 replicas (%).
    pub pbft_advantage_pct: f64,
    /// 8-core over 1-core throughput.
    pub cores_gain: f64,
}

/// Computes the summary from fresh runs.
pub fn summary() -> Summary {
    let tput = |r: &SimReport| r.throughput_tps;

    let b1 = run(sim_base(16), |c| c.system.batch_size = 1);
    let b_best = run(sim_base(16), |c| c.system.batch_size = 1_000);

    let rsa = run(sim_base(16), |c| c.system.crypto = CryptoScheme::Rsa);
    let cmac = run(sim_base(16), |c| {
        c.system.crypto = CryptoScheme::CmacEd25519
    });

    let mem = run(sim_base(16), |c| c.system.storage = StorageMode::InMemory);
    let paged = run(sim_base(16), |c| c.system.storage = StorageMode::Paged);

    let e0 = run(sim_base(16), |c| {
        c.system.threads = ThreadConfig::monolithic()
    });
    let e1 = run(sim_base(16), |c| {
        c.system.threads = ThreadConfig::with_e_b(1, 0)
    });

    let zyz_ok = run(sim_base(16), |c| c.system.protocol = ProtocolKind::Zyzzyva);
    let zyz_fail = run(sim_base(16), |c| {
        c.system.protocol = ProtocolKind::Zyzzyva;
        c.failures = 1;
    });

    let pbft32 = run(sim_base(32), |c| {
        c.system.threads = ThreadConfig::standard()
    });
    let zyz32 = run(sim_base(32), |c| {
        c.system.protocol = ProtocolKind::Zyzzyva;
        c.system.threads = ThreadConfig::monolithic();
    });

    let core1 = run(sim_base(16), |c| c.system.cores = 1);
    let core8 = run(sim_base(16), |c| c.system.cores = 8);

    Summary {
        batching_gain: tput(&b_best) / tput(&b1).max(1.0),
        crypto_gain: tput(&cmac) / tput(&rsa).max(1.0),
        rsa_latency_multiplier: rsa.avg_latency_ms / cmac.avg_latency_ms.max(1e-9),
        memory_gain: tput(&mem) / tput(&paged).max(1.0),
        decoupled_execution_gain_pct: 100.0 * (tput(&e1) / tput(&e0).max(1.0) - 1.0),
        zyzzyva_failure_loss: tput(&zyz_ok) / tput(&zyz_fail).max(1.0),
        pbft_advantage_pct: 100.0 * (tput(&pbft32) / tput(&zyz32).max(1.0) - 1.0),
        cores_gain: tput(&core8) / tput(&core1).max(1.0),
    }
}

/// Renders points as an aligned text table.
pub fn print_points(title: &str, points: &[Point]) {
    println!("\n=== {title} ===");
    println!(
        "{:<28} {:>10} {:>14} {:>12}",
        "series", "x", "ktxn/s", "latency ms"
    );
    for p in points {
        println!(
            "{:<28} {:>10} {:>14.1} {:>12.2}",
            p.series,
            p.x,
            p.throughput_tps / 1_000.0,
            p.latency_ms
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_config_is_paper_default() {
        let cfg = sim_base(16);
        assert_eq!(cfg.system.batch_size, 100);
        assert_eq!(cfg.system.num_clients, 80_000);
        assert_eq!(cfg.system.cores, 8);
    }

    #[test]
    fn fig8_configs_cover_the_grid() {
        let labels: Vec<&str> = fig8_configs().iter().map(|(l, _)| *l).collect();
        assert_eq!(labels, vec!["0E 0B", "1E 0B", "1E 1B", "1E 2B"]);
    }
}
