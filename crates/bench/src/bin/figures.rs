//! Regenerates every figure of the paper's evaluation section.
//!
//! ```text
//! cargo run -p rdb-bench --release --bin figures          # all figures
//! cargo run -p rdb-bench --release --bin figures -- fig10 # one figure
//! cargo run -p rdb-bench --release --bin figures -- summary
//! ```

use rdb_bench::*;

fn run_figure(id: &str) {
    match id {
        "fig1" => print_points(
            "Figure 1: throughput vs replicas (well-crafted PBFT vs protocol-centric Zyzzyva)",
            &fig1(),
        ),
        "fig7" => print_points("Figure 7: upper bound without consensus", &fig7()),
        "fig8" => print_points(
            "Figure 8: threading/pipelining configurations vs replicas",
            &fig8(),
        ),
        "fig9" => {
            println!("\n=== Figure 9: per-thread saturation (16 replicas) ===");
            println!(
                "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
                "config", "input", "batch", "worker", "execute", "output", "cumulative"
            );
            for row in fig9() {
                let find = |label: &str, primary: bool| -> f64 {
                    row.stages
                        .iter()
                        .find(|(l, _, _)| *l == label)
                        .map(|(_, p, b)| if primary { *p } else { *b })
                        .unwrap_or(0.0)
                };
                println!(
                    "{:<14} {:>9.0}% {:>9.0}% {:>9.0}% {:>9.0}% {:>9.0}% {:>11.0}%  (primary)",
                    row.config,
                    find("input", true),
                    find("batch", true),
                    find("worker", true),
                    find("execute", true),
                    find("output", true),
                    row.primary_cumulative,
                );
                println!(
                    "{:<14} {:>9.0}% {:>9.0}% {:>9.0}% {:>9.0}% {:>9.0}% {:>11.0}%  (backup)",
                    "",
                    find("input", false),
                    find("batch", false),
                    find("worker", false),
                    find("execute", false),
                    find("output", false),
                    row.backup_cumulative,
                );
            }
        }
        "fig10" => print_points("Figure 10: transactions per batch", &fig10()),
        "fig11" => print_points(
            "Figure 11: operations per transaction × batch-threads",
            &fig11(),
        ),
        "fig12" => print_points("Figure 12: message (payload) size", &fig12()),
        "fig13" => print_points("Figure 13: cryptographic signature schemes", &fig13()),
        "fig14" => print_points(
            "Figure 14: in-memory vs paged (SQLite-like) storage",
            &fig14(),
        ),
        "fig15" => print_points("Figure 15: number of clients", &fig15()),
        "fig16" => print_points("Figure 16: hardware cores per replica", &fig16()),
        "fig17" => print_points("Figure 17: backup replica failures", &fig17()),
        "summary" => {
            let s = summary();
            println!("\n=== Section 1 headline observations (measured) ===");
            println!(
                "batching gain (B=1000 vs B=1):          {:>8.1}x   (paper: 66x)",
                s.batching_gain
            );
            println!(
                "crypto gain (CMAC+ED25519 vs RSA):      {:>8.1}x   (paper: 103x tput incl. NoSig)",
                s.crypto_gain
            );
            println!(
                "RSA latency multiplier vs CMAC:         {:>8.1}x   (paper: 125x)",
                s.rsa_latency_multiplier
            );
            println!(
                "in-memory gain vs paged storage:        {:>8.1}x   (paper: 18x)",
                s.memory_gain
            );
            println!(
                "decoupled execution gain (1E vs 0E):    {:>8.1}%   (paper: 9.5%)",
                s.decoupled_execution_gain_pct
            );
            println!(
                "Zyzzyva loss under one failure:         {:>8.1}x   (paper: 39x)",
                s.zyzzyva_failure_loss
            );
            println!(
                "PBFT advantage at n=32:                 {:>8.1}%   (paper: up to 79%)",
                s.pbft_advantage_pct
            );
            println!(
                "8-core vs 1-core gain:                  {:>8.1}x   (paper: 8.92x)",
                s.cores_gain
            );
        }
        other => {
            eprintln!("unknown figure id: {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "fig1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
        "fig16", "fig17", "summary",
    ];
    if args.is_empty() {
        for id in all {
            run_figure(id);
        }
    } else {
        for id in &args {
            run_figure(id);
        }
    }
}
