//! # ResilientDB reproduction
//!
//! A from-scratch reproduction of *"Permissioned Blockchain Through the
//! Looking Glass: Architectural and Implementation Lessons Learned"*
//! (Gupta, Rahnama, Sadoghi — ICDCS 2020): a high-throughput permissioned
//! blockchain fabric whose deeply pipelined, multi-threaded replicas let a
//! classical three-phase protocol (PBFT) outperform a single-phase
//! speculative protocol (Zyzzyva) implemented protocol-centrically.
//!
//! ## What lives where
//!
//! - [`SystemBuilder`] / [`ResilientDb`] — launch a real replica set (OS
//!   threads, in-memory network, real crypto) in one process.
//! - [`ClientSession`] — submit transactions, await quorum-backed results
//!   under either protocol.
//! - [`bench_driver`] — closed-loop throughput/latency measurement against
//!   the threaded runtime.
//! - `rdb-sim` (re-exported as [`sim`]) — the deterministic discrete-event
//!   simulator used for cluster-scale parameter sweeps (the paper's
//!   figures).
//!
//! ## Quickstart
//!
//! ```
//! use resilientdb::SystemBuilder;
//! use std::time::Duration;
//!
//! let db = SystemBuilder::new(4)
//!     .batch_size(5)
//!     .table_size(1_000)
//!     .client_keys(1)
//!     .build()
//!     .expect("valid configuration");
//!
//! let mut client = db.client(0);
//! let txns = vec![
//!     client.write_txn(1, b"alpha".to_vec()),
//!     client.write_txn(2, b"beta".to_vec()),
//!     client.write_txn(3, b"gamma".to_vec()),
//!     client.write_txn(4, b"delta".to_vec()),
//!     client.write_txn(5, b"epsilon".to_vec()),
//! ];
//! let done = client.submit_and_wait(txns, Duration::from_secs(10));
//! assert_eq!(done, 5);
//! db.shutdown();
//! ```

pub mod bench_driver;
pub mod client;
pub mod fabric;
pub mod scenario;
pub mod swarm;

pub use bench_driver::{run_closed_loop, Measurement};
pub use client::ClientSession;
#[allow(deprecated)]
pub use fabric::NodeConfig;
pub use fabric::{
    connect_client, registry_for, start_replica, swarm_net, ReplicaNode, ResilientDb, SystemBuilder,
};
pub use rdb_common::{NetOptions, NodeOptions, TransportMode};
pub use scenario::{
    run_scenario, scenario_by_name, scenarios, FaultAction, FaultEvent, FaultPlan, Mark, Scenario,
    ScenarioResult,
};
pub use swarm::{run_swarm, SwarmConfig, SwarmReport};

/// Re-export of the shared types crate.
pub use rdb_common as common;
/// Re-export of the consensus state machines.
pub use rdb_consensus as consensus;
/// Re-export of the crypto substrate.
pub use rdb_crypto as crypto;
/// Re-export of the discrete-event simulator.
pub use rdb_sim as sim;
/// Re-export of the storage substrate.
pub use rdb_storage as storage;
/// Re-export of the workload generator.
pub use rdb_workload as workload;

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::ProtocolKind;
    use std::time::Duration;

    #[test]
    fn quickstart_pbft() {
        let db = SystemBuilder::new(4)
            .batch_size(5)
            .table_size(256)
            .client_keys(1)
            .build()
            .unwrap();
        let mut c = db.client(0);
        let txns: Vec<_> = (0..10).map(|i| c.write_txn(i, vec![i as u8])).collect();
        let done = c.submit_and_wait(txns, Duration::from_secs(15));
        assert_eq!(done, 10);
        assert!(db.verify_chains().is_ok());
        db.shutdown();
    }

    #[test]
    fn quickstart_zyzzyva() {
        let db = SystemBuilder::new(4)
            .protocol(ProtocolKind::Zyzzyva)
            .batch_size(5)
            .table_size(256)
            .client_keys(1)
            .build()
            .unwrap();
        let mut c = db.client(0);
        let txns: Vec<_> = (0..10).map(|i| c.write_txn(i, vec![i as u8])).collect();
        let done = c.submit_and_wait(txns, Duration::from_secs(15));
        assert_eq!(done, 10);
        db.shutdown();
    }

    #[test]
    fn zyzzyva_survives_backup_crash_via_cc_path() {
        let db = SystemBuilder::new(4)
            .protocol(ProtocolKind::Zyzzyva)
            .batch_size(5)
            .table_size(256)
            .client_keys(1)
            .build()
            .unwrap();
        db.crash_backup(rdb_common::ReplicaId(3));
        let mut c = db.client(0);
        let txns: Vec<_> = (0..5).map(|i| c.write_txn(i, vec![i as u8])).collect();
        let done = c.submit_and_wait(txns, Duration::from_secs(20));
        assert_eq!(done, 5, "commit-certificate path must complete");
        db.shutdown();
    }

    #[test]
    fn quickstart_over_tcp_loopback() {
        // The same fabric, every message over a real socket: an
        // in-process cluster on TransportMode::Tcp must commit and
        // converge exactly like the in-memory default.
        let db = SystemBuilder::new(4)
            .transport(TransportMode::Tcp)
            .batch_size(5)
            .table_size(256)
            .client_keys(1)
            .build()
            .unwrap();
        let mut c = db.client(0);
        let txns: Vec<_> = (0..10).map(|i| c.write_txn(i, vec![i as u8])).collect();
        let done = c.submit_and_wait(txns, Duration::from_secs(30));
        assert_eq!(done, 10);
        assert!(db.verify_chains().is_ok());
        db.shutdown();
    }

    #[test]
    fn state_converges_across_replicas() {
        let db = SystemBuilder::new(4)
            .batch_size(5)
            .table_size(256)
            .client_keys(2)
            .build()
            .unwrap();
        let mut c = db.client(0);
        let txns: Vec<_> = (0..20)
            .map(|i| c.write_txn(i % 256, vec![i as u8]))
            .collect();
        assert_eq!(c.submit_and_wait(txns, Duration::from_secs(15)), 20);
        // Allow the slowest replica to finish executing.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let heads = db.chain_heads();
            if heads.iter().all(|h| *h == heads[0]) || std::time::Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let digests = db.state_digests();
        assert!(digests.windows(2).all(|w| w[0] == w[1]), "stores diverged");
        db.shutdown();
    }
}
