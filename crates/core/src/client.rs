//! Client sessions: submit transactions, await quorum-backed results.
//!
//! A [`ClientSession`] speaks whichever client protocol the deployment
//! runs: PBFT (f+1 matching replies) or Zyzzyva (3f+1 fast path with the
//! commit-certificate fallback driven automatically on timeout).

use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::{ClientId, Operation, ProtocolKind, ReplicaId, Transaction, TxnId, ViewNum};
use rdb_consensus::{ClientAction, PbftClient, ZyzzyvaClient};
use rdb_crypto::{CryptoProvider, KeyRegistry, PeerClass};
use rdb_net::{Endpoint, NetHandle};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

/// How long a Zyzzyva client waits for the fast path before distributing
/// commit certificates.
const ZYZZYVA_CLIENT_TIMEOUT: Duration = Duration::from_millis(300);

/// Quiet period after which a client rebroadcasts its in-flight requests
/// to *every* replica: the request or its replies may have been lost, or
/// the primary may have crashed — the rebroadcast both reaches whoever is
/// primary now and doubles as the backups' client-demand signal for
/// view-change suspicion. Replicas deduplicate re-ordered transactions,
/// so retransmission is safe.
const RETRANSMIT_AFTER: Duration = Duration::from_millis(500);

enum Tracker {
    Pbft(PbftClient),
    Zyzzyva(ZyzzyvaClient),
}

/// A connected client able to submit transactions and collect results.
pub struct ClientSession {
    id: ClientId,
    endpoint: Endpoint,
    provider: CryptoProvider,
    tracker: Tracker,
    primary: ReplicaId,
    /// The consensus instance this client shards to (`id % k`): requests
    /// always target the *same* instance, so a view-change re-aim follows
    /// that instance's primary rotation and a retransmission can never
    /// land in a second instance and double-order.
    instance: usize,
    /// Highest view seen in any reply (stamped by the sharded instance);
    /// replies from a newer view re-aim `primary` so post-view-change
    /// submissions skip the dead leader.
    known_view: ViewNum,
    n: usize,
    counter: u64,
    results: HashMap<u64, Vec<u8>>,
    last_progress: Instant,
    /// Requests that have distributed a Zyzzyva commit certificate and are
    /// waiting on `LocalCommit` acknowledgements.
    cc_counters: Vec<u64>,
    /// Copies of submitted-but-uncompleted transactions, kept for
    /// retransmission (counter → transaction).
    in_flight: HashMap<u64, Transaction>,
    last_retransmit: Instant,
}

impl fmt::Debug for ClientSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClientSession")
            .field("id", &self.id)
            .finish()
    }
}

impl Drop for ClientSession {
    fn drop(&mut self) {
        // Free the address so the same client id can reconnect later
        // (repeated measurement runs reuse ids).
        self.endpoint.network().deregister(Sender::Client(self.id));
    }
}

impl ClientSession {
    pub(crate) fn connect(
        id: ClientId,
        net: &NetHandle,
        registry: &KeyRegistry,
        protocol: ProtocolKind,
        f: usize,
        instances: usize,
        n: usize,
    ) -> Self {
        let tracker = match protocol {
            ProtocolKind::Pbft => Tracker::Pbft(PbftClient::new(id, f)),
            ProtocolKind::Zyzzyva => Tracker::Zyzzyva(ZyzzyvaClient::new(id, f)),
        };
        let instances = instances.max(1);
        let instance = (id.0 % instances as u64) as usize;
        ClientSession {
            id,
            endpoint: net.register(Sender::Client(id)),
            provider: registry.provider_for_client(id),
            tracker,
            // Instance `j` at view 0 is led by replica `j`.
            primary: ReplicaId((instance % n) as u32),
            instance,
            known_view: ViewNum(0),
            n,
            counter: 0,
            results: HashMap::new(),
            last_progress: Instant::now(),
            cc_counters: Vec::new(),
            in_flight: HashMap::new(),
            last_retransmit: Instant::now(),
        }
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Requests submitted so far.
    pub fn submitted(&self) -> u64 {
        self.counter
    }

    /// Builds a single-write transaction (convenience for examples).
    pub fn write_txn(&mut self, key: u64, value: Vec<u8>) -> Transaction {
        let t = Transaction::new(self.id, self.counter, vec![Operation::Write { key, value }]);
        self.counter += 1;
        t
    }

    /// Builds a read transaction.
    pub fn read_txn(&mut self, key: u64) -> Transaction {
        let t = Transaction::new(self.id, self.counter, vec![Operation::Read { key }]);
        self.counter += 1;
        t
    }

    /// Builds a transaction with explicit operations.
    pub fn txn(&mut self, ops: Vec<Operation>) -> Transaction {
        let t = Transaction::new(self.id, self.counter, ops);
        self.counter += 1;
        t
    }

    /// Signs and submits a burst of transactions as one client request
    /// (Section 4.2's client-side batching). Transactions must have been
    /// built by this session so their ids are tracked.
    pub fn submit(&mut self, txns: Vec<Transaction>) {
        for t in &txns {
            debug_assert_eq!(t.id.client, self.id, "foreign transaction");
            match &mut self.tracker {
                Tracker::Pbft(p) => p.track(t.id.counter),
                Tracker::Zyzzyva(z) => z.track(t.id.counter),
            }
            self.in_flight.insert(t.id.counter, t.clone());
        }
        self.last_retransmit = Instant::now();
        let msg = Message::ClientRequest { txns };
        let sm = SignedMessage::sign_with(msg, Sender::Client(self.id), |bytes| {
            self.provider.sign(PeerClass::Replica, bytes)
        });
        // Requests ride the reliable client surface: under load the swarm
        // backpressures rather than losing submissions.
        let _ = self.endpoint.send_direct(Sender::Replica(self.primary), sm);
    }

    /// One diagnostic line per stuck request (Zyzzyva only; PBFT requests
    /// carry no client-side protocol state worth printing).
    pub fn debug_stuck(&self) -> Vec<String> {
        match &self.tracker {
            Tracker::Pbft(_) => Vec::new(),
            Tracker::Zyzzyva(z) => z.debug_stuck(),
        }
    }

    /// Number of requests still awaiting completion.
    pub fn pending(&self) -> usize {
        match &self.tracker {
            Tracker::Pbft(p) => p.pending(),
            Tracker::Zyzzyva(z) => z.pending(),
        }
    }

    /// The result bytes of a completed request, if available.
    pub fn result(&self, txn: TxnId) -> Option<&Vec<u8>> {
        self.results.get(&txn.counter)
    }

    fn broadcast(&self, msg: &Message) {
        // Encode-once: one envelope shared across all n destinations.
        let sm = SignedMessage::sign_with(msg.clone(), Sender::Client(self.id), |bytes| {
            self.provider.sign(PeerClass::Replica, bytes)
        });
        for r in 0..self.n as u32 {
            let _ = self
                .endpoint
                .send_direct(Sender::Replica(ReplicaId(r)), sm.clone());
        }
    }

    fn handle_actions(&mut self, actions: Vec<ClientAction>) -> usize {
        let mut completed = 0;
        for act in actions {
            match act {
                ClientAction::Complete {
                    txn_counter,
                    result,
                } => {
                    self.results.insert(txn_counter, result);
                    self.in_flight.remove(&txn_counter);
                    completed += 1;
                    self.last_progress = Instant::now();
                }
                ClientAction::BroadcastReplicas(msg) => self.broadcast(&msg),
                ClientAction::Send(r, msg) => {
                    let sm = SignedMessage::sign_with(msg, Sender::Client(self.id), |bytes| {
                        self.provider.sign(PeerClass::Replica, bytes)
                    });
                    let _ = self.endpoint.send_direct(Sender::Replica(r), sm);
                }
            }
        }
        completed
    }

    /// Feeds one inbound envelope through the protocol tracker; returns
    /// requests completed by it.
    fn on_message(&mut self, sm: SignedMessage) -> usize {
        // Clients learn the current view from replies (PBFT §4.1): a reply
        // stamped with a newer view means a view change happened — re-aim
        // future submissions at that view's primary.
        if let Message::ClientReply { view, .. } | Message::SpecResponse { view, .. } = sm.msg() {
            if *view > self.known_view {
                self.known_view = *view;
                // Re-aim at the new primary of *this client's* instance:
                // instance `j` at view `v` is led by `(v + j) % n`.
                self.primary =
                    ReplicaId(((self.known_view.0 + self.instance as u64) % self.n as u64) as u32);
            }
        }
        let acts = match (&mut self.tracker, sm.msg()) {
            (Tracker::Pbft(p), Message::ClientReply { .. }) => p.on_reply(&sm),
            (Tracker::Zyzzyva(z), Message::SpecResponse { .. }) => z.on_spec_response(&sm),
            (Tracker::Zyzzyva(z), Message::LocalCommit { .. }) => {
                // The acknowledgement carries only the sequence; offer it to
                // every request that distributed a certificate.
                let mut acts = Vec::new();
                for &c in &self.cc_counters {
                    acts.extend(z.on_local_commit(c, &sm));
                }
                acts
            }
            _ => Vec::new(),
        };
        self.handle_actions(acts)
    }

    /// Quiet-period bookkeeping: if Zyzzyva's fast path has stalled past the
    /// client timeout, distribute commit certificates for every pending
    /// request; and for either protocol, rebroadcast in-flight requests to
    /// every replica after a longer quiet spell (lost traffic or a crashed
    /// primary). Returns requests completed by the fallback.
    fn on_quiet(&mut self) -> usize {
        let mut completed = 0;
        if let Tracker::Zyzzyva(z) = &mut self.tracker {
            if self.last_progress.elapsed() > ZYZZYVA_CLIENT_TIMEOUT {
                let mut acts = Vec::new();
                for c in 0..self.counter {
                    let a = z.on_timeout(c);
                    if !a.is_empty() {
                        if !self.cc_counters.contains(&c) {
                            self.cc_counters.push(c);
                        }
                        acts.extend(a);
                    }
                }
                completed += self.handle_actions(acts);
                self.last_progress = Instant::now();
            }
        }
        if self.pending() > 0
            && !self.in_flight.is_empty()
            && self.last_retransmit.elapsed() > RETRANSMIT_AFTER
        {
            let mut txns: Vec<Transaction> = self.in_flight.values().cloned().collect();
            txns.sort_by_key(|t| t.id.counter);
            self.broadcast(&Message::ClientRequest { txns });
            self.last_retransmit = Instant::now();
        }
        completed
    }

    /// Processes incoming replies until all submitted requests complete or
    /// `deadline` passes. Returns the number of requests completed by this
    /// call. Drives Zyzzyva's commit-certificate path automatically when
    /// the fast path stalls.
    pub fn await_all(&mut self, deadline: Duration) -> usize {
        let start = Instant::now();
        let mut completed = 0;
        self.last_progress = Instant::now();
        while self.pending() > 0 && start.elapsed() < deadline {
            match self.endpoint.recv_timeout(Duration::from_millis(50)) {
                Ok(sm) => completed += self.on_message(sm),
                Err(_) => completed += self.on_quiet(),
            }
        }
        completed
    }

    /// Non-blocking progress pump for swarm drivers multiplexing thousands
    /// of sessions on one thread: drains whatever replies have arrived,
    /// fires the Zyzzyva timeout fallback if the session has gone quiet,
    /// and returns immediately. Returns requests completed by this call.
    pub fn poll_progress(&mut self) -> usize {
        let mut completed = 0;
        let mut saw_any = false;
        while let Some(sm) = self.endpoint.try_recv() {
            saw_any = true;
            completed += self.on_message(sm);
            if self.pending() == 0 {
                break;
            }
        }
        if !saw_any && self.pending() > 0 {
            completed += self.on_quiet();
        }
        completed
    }

    /// Convenience: submit `txns` and wait for them all.
    pub fn submit_and_wait(&mut self, txns: Vec<Transaction>, deadline: Duration) -> usize {
        self.submit(txns);
        self.await_all(deadline)
    }
}
