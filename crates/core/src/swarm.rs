//! Client-swarm driver: thousands of concurrent sessions from one process.
//!
//! The paper's experiments run up to 80K clients against a 4–91 replica
//! cluster. A thread per client does not scale to that population, so the
//! swarm driver multiplexes many [`ClientSession`]s onto a small pool of
//! shard threads, pumping each session with the non-blocking
//! [`ClientSession::poll_progress`] instead of a blocking wait. Over the
//! TCP transport in swarm mode (`TcpConfig::dedicated_to`), every session
//! still owns a real socket to the primary — an N-client swarm exercises
//! N concurrent connections through the reactor.
//!
//! The workload is deterministic and interleaving-independent: client
//! `c` writes keys `c*txns_per_client ..` exactly once each, so the final
//! state digest depends only on the set of committed transactions, never
//! on commit order — which lets a multi-process run be digest-compared
//! against an in-memory reference run of the same shape.

use crate::client::ClientSession;
use rdb_common::{ClientId, SystemConfig};
use rdb_crypto::KeyRegistry;
use rdb_net::NetHandle;
use std::time::{Duration, Instant};

/// Shape of a swarm run.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Concurrent client sessions.
    pub clients: usize,
    /// Transactions each client submits over its lifetime.
    pub txns_per_client: u64,
    /// Transactions per request burst (client-side batching).
    pub burst: usize,
    /// Shard threads the sessions are multiplexed onto.
    pub shards: usize,
    /// First client id; a multi-process swarm partitions the id space by
    /// giving each process a disjoint `[first_client, first_client+clients)`.
    pub first_client: u64,
    /// Overall deadline; the run reports whatever committed by then.
    pub deadline: Duration,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            clients: 1_000,
            txns_per_client: 2,
            burst: 2,
            shards: 8,
            first_client: 0,
            deadline: Duration::from_secs(120),
        }
    }
}

/// What a swarm run measured.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// Sessions that ran.
    pub clients: usize,
    /// Transactions submitted.
    pub submitted: u64,
    /// Transactions committed (quorum-confirmed at the clients).
    pub committed: u64,
    /// Wall-clock from first submit to last commit (or the deadline).
    pub elapsed: Duration,
    /// Median request-burst completion latency, microseconds.
    pub p50_us: u64,
    /// 95th-percentile burst latency, microseconds.
    pub p95_us: u64,
    /// 99th-percentile burst latency, microseconds.
    pub p99_us: u64,
}

impl SwarmReport {
    /// Committed transactions per second.
    pub fn tps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.committed as f64 / secs
        }
    }
}

/// One multiplexed session and its burst state.
struct Pumped {
    session: ClientSession,
    /// Transactions submitted by this session so far.
    submitted: u64,
    /// When the in-flight burst was submitted.
    burst_started: Option<Instant>,
}

/// Runs a swarm of `cfg.clients` sessions against whatever cluster `net`
/// reaches. All processes must share `registry`/`system` so keys match.
///
/// # Panics
/// Panics if `cfg.clients` is zero or the registry lacks keys for the id
/// range `[first_client, first_client + clients)`.
pub fn run_swarm(
    net: &NetHandle,
    registry: &KeyRegistry,
    system: &SystemConfig,
    cfg: &SwarmConfig,
) -> SwarmReport {
    assert!(cfg.clients > 0, "swarm needs at least one client");
    let shards = cfg.shards.clamp(1, cfg.clients);
    let burst = cfg.burst.max(1) as u64;
    let start = Instant::now();
    let deadline = start + cfg.deadline;

    // Shard c → sessions c, c+shards, c+2*shards, … so uneven tails stay
    // one session wide.
    let results: Vec<(u64, u64, Vec<Duration>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|shard| {
                let net = net.clone();
                let cfg = cfg.clone();
                scope.spawn(move || {
                    let mut pumped: Vec<Pumped> = (shard..cfg.clients)
                        .step_by(shards)
                        .map(|i| Pumped {
                            session: ClientSession::connect(
                                ClientId(cfg.first_client + i as u64),
                                &net,
                                registry,
                                system.protocol,
                                system.f,
                                system.consensus_instances,
                                system.n,
                            ),
                            submitted: 0,
                            burst_started: None,
                        })
                        .collect();
                    let mut submitted = 0u64;
                    let mut committed = 0u64;
                    let mut samples: Vec<Duration> = Vec::new();
                    loop {
                        let mut all_done = true;
                        let mut progressed = false;
                        for p in &mut pumped {
                            if p.session.pending() > 0 {
                                let c = p.session.poll_progress() as u64;
                                committed += c;
                                progressed |= c > 0;
                            }
                            if p.session.pending() == 0 {
                                if let Some(t0) = p.burst_started.take() {
                                    samples.push(t0.elapsed());
                                }
                                if p.submitted < cfg.txns_per_client {
                                    let count = burst.min(cfg.txns_per_client - p.submitted);
                                    // Unique key per transaction, fixed by
                                    // (client, index): digest is commit-set
                                    // deterministic.
                                    let base = p.session.id().0 * cfg.txns_per_client + p.submitted;
                                    let txns: Vec<_> = (0..count)
                                        .map(|i| {
                                            let key = base + i;
                                            p.session.write_txn(key, key.to_le_bytes().to_vec())
                                        })
                                        .collect();
                                    p.burst_started = Some(Instant::now());
                                    p.session.submit(txns);
                                    p.submitted += count;
                                    submitted += count;
                                    progressed = true;
                                }
                            }
                            if p.session.pending() > 0 || p.submitted < cfg.txns_per_client {
                                all_done = false;
                            }
                        }
                        if all_done || Instant::now() > deadline {
                            break;
                        }
                        if !progressed {
                            // Nothing arrived this pass: brief nap instead
                            // of a hot spin across thousands of sessions.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                    (submitted, committed, samples)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let elapsed = start.elapsed();
    let mut submitted = 0;
    let mut committed = 0;
    let mut samples: Vec<Duration> = Vec::new();
    for (s, c, mut lat) in results {
        submitted += s;
        committed += c;
        samples.append(&mut lat);
    }
    samples.sort_unstable();
    let pct = |p: usize| -> u64 {
        if samples.is_empty() {
            return 0;
        }
        let idx = (samples.len() * p / 100).min(samples.len() - 1);
        samples[idx].as_micros() as u64
    };
    SwarmReport {
        clients: cfg.clients,
        submitted,
        committed,
        elapsed,
        p50_us: pct(50),
        p95_us: pct(95),
        p99_us: pct(99),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemBuilder;

    #[test]
    fn swarm_commits_against_in_memory_fabric() {
        let clients = 64;
        let db = SystemBuilder::new(4)
            .batch_size(16)
            .client_keys(clients)
            .table_size(1_024)
            .build()
            .unwrap();
        let cfg = SwarmConfig {
            clients,
            txns_per_client: 2,
            burst: 2,
            shards: 4,
            first_client: 0,
            deadline: Duration::from_secs(60),
        };
        let report = db.run_swarm(&cfg);
        assert_eq!(report.submitted, clients as u64 * 2);
        assert_eq!(report.committed, report.submitted, "all txns must commit");
        assert!(report.p50_us > 0, "latency samples must be recorded");
        assert!(report.tps() > 0.0);
        db.shutdown();
    }
}
