//! Deterministic failure-scenario matrix.
//!
//! A [`FaultPlan`] is a schedule of fault injections — crashes, recoveries,
//! partitions, seeded message loss and delay jitter — fired at
//! deterministic marks: either a committed-transaction count or elapsed
//! wall clock. [`run_scenario`] executes a plan against a *live* deployment
//! (both protocols, both transport backends) while client load is in
//! flight, records committed-transaction-per-second buckets around the
//! fault events, and checks the robustness properties the paper's failure
//! experiments (Figure 17) rely on:
//!
//! - **liveness** — every submitted transaction completes despite the
//!   faults (clients retransmit, replicas deduplicate, view changes
//!   replace dead primaries);
//! - **safety** — every replica that is up at the end (never crashed, or
//!   crashed and recovered) converges to an identical state digest: loss
//!   bursts and rejoins are repaired by the fetch / state-transfer
//!   protocol, so only permanently-crashed replicas are excused.
//!
//! [`scenarios`] is the named catalog (backup crash, primary crash → view
//! change, cascading crashes, partition + heal, lossy links, delay jitter,
//! equivocating primary, crash during checkpoint, restart + rejoin,
//! rejoin via state transfer, chaos). The `faults` bench binary runs the catalog over the full
//! protocol × transport matrix and emits `BENCH_faults.json`; the
//! `rdb-node --fault-plan` flag applies a parsed plan to a single node of
//! a multi-process cluster.

use crate::fabric::{ResilientDb, SystemBuilder};
use rdb_common::{ProtocolKind, ReplicaId, Transaction, TransportMode};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// When a fault event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// Once this many transactions have completed (across all clients).
    Committed(u64),
    /// Once this much wall clock has elapsed since load started.
    Elapsed(Duration),
}

/// What a fault event does.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Crash a replica (all its traffic dropped; sockets torn down on TCP).
    Crash(u32),
    /// Recover a crashed replica.
    Recover(u32),
    /// Partition the replica set into isolated groups.
    Partition(Vec<Vec<u32>>),
    /// Heal all partitions.
    HealAll,
    /// Set the uniform per-link message drop rate (`[0.0, 1.0]`).
    DropRate(f64),
    /// Set the maximum seeded per-message delivery delay.
    DelayJitter(Duration),
}

/// One scheduled fault injection.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When to fire.
    pub at: Mark,
    /// What to do.
    pub action: FaultAction,
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the per-link drop/delay schedule (and key generation).
    pub seed: u64,
    /// The events, in any order; the runner fires each once when due.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Parses the plan-file mini language used by `rdb-node --fault-plan`.
    ///
    /// One directive per line; `#` starts a comment:
    ///
    /// ```text
    /// seed 42
    /// at committed 50 crash 0
    /// at elapsed_ms 2000 recover 0
    /// at elapsed_ms 800 partition 0,1|2,3
    /// at elapsed_ms 1800 heal
    /// at elapsed_ms 0 drop_rate 0.05
    /// at elapsed_ms 0 delay_jitter_us 2000
    /// ```
    ///
    /// # Errors
    /// Returns a message naming the offending line.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let bad = |why: &str| format!("line {}: {why}: `{line}`", lineno + 1);
            let mut words = line.split_whitespace();
            match words.next() {
                Some("seed") => {
                    plan.seed = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| bad("expected `seed <u64>`"))?;
                }
                Some("at") => {
                    let kind = words.next().ok_or_else(|| bad("missing mark kind"))?;
                    let value: u64 = words
                        .next()
                        .and_then(|w| w.parse().ok())
                        .ok_or_else(|| bad("missing mark value"))?;
                    let at = match kind {
                        "committed" => Mark::Committed(value),
                        "elapsed_ms" => Mark::Elapsed(Duration::from_millis(value)),
                        _ => return Err(bad("mark kind must be `committed` or `elapsed_ms`")),
                    };
                    let verb = words.next().ok_or_else(|| bad("missing action"))?;
                    let action = match verb {
                        "crash" | "recover" => {
                            let r: u32 = words
                                .next()
                                .and_then(|w| w.parse().ok())
                                .ok_or_else(|| bad("expected a replica id"))?;
                            if verb == "crash" {
                                FaultAction::Crash(r)
                            } else {
                                FaultAction::Recover(r)
                            }
                        }
                        "partition" => {
                            let spec = words.next().ok_or_else(|| bad("expected groups"))?;
                            let groups: Result<Vec<Vec<u32>>, _> = spec
                                .split('|')
                                .map(|g| {
                                    g.split(',')
                                        .map(|r| {
                                            r.parse::<u32>().map_err(|_| bad("bad replica id"))
                                        })
                                        .collect()
                                })
                                .collect();
                            FaultAction::Partition(groups?)
                        }
                        "heal" => FaultAction::HealAll,
                        "drop_rate" => {
                            let rate: f64 = words
                                .next()
                                .and_then(|w| w.parse().ok())
                                .ok_or_else(|| bad("expected a rate"))?;
                            FaultAction::DropRate(rate)
                        }
                        "delay_jitter_us" => {
                            let us: u64 = words
                                .next()
                                .and_then(|w| w.parse().ok())
                                .ok_or_else(|| bad("expected microseconds"))?;
                            FaultAction::DelayJitter(Duration::from_micros(us))
                        }
                        _ => return Err(bad("unknown action")),
                    };
                    plan.events.push(FaultEvent { at, action });
                }
                _ => return Err(bad("expected `seed` or `at`")),
            }
        }
        Ok(plan)
    }

    /// Replicas this plan ever crashes.
    pub fn crashed_replicas(&self) -> HashSet<u32> {
        self.events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::Crash(r) => Some(r),
                _ => None,
            })
            .collect()
    }

    /// Replicas this plan crashes and never recovers. A recovered replica
    /// is expected to rejoin via the fetch / state-transfer protocol and
    /// converge with the survivors; only a permanently-down replica is
    /// excused from final digest agreement.
    pub fn permanently_down(&self) -> HashSet<u32> {
        let recovered: HashSet<u32> = self
            .events
            .iter()
            .filter_map(|e| match e.action {
                FaultAction::Recover(r) => Some(r),
                _ => None,
            })
            .collect();
        self.crashed_replicas()
            .into_iter()
            .filter(|r| !recovered.contains(r))
            .collect()
    }
}

/// A named scenario: a fault plan plus the load shape it runs under.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (stable; keys `BENCH_faults.json`).
    pub name: &'static str,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Make the initial primary equivocate (byzantine fault injection).
    pub byzantine: bool,
    /// Only meaningful under PBFT (e.g. equivocation: Zyzzyva's skeleton
    /// view change handles crashes, not byzantine primaries).
    pub pbft_only: bool,
    /// Parallel consensus instances (multi-primary ordering; `> 1` forces
    /// `pbft_only` semantics — the runner skips Zyzzyva).
    pub consensus_instances: usize,
    /// Concurrent client sessions.
    pub clients: usize,
    /// Transactions submitted per client.
    pub txns_per_client: u64,
    /// Transactions per consensus batch.
    pub batch_size: usize,
    /// Replica suspicion timeout (milliseconds).
    pub view_timeout_ms: u64,
    /// Checkpoint interval Δ in transactions. Kept above the total load
    /// for most scenarios so view-change vote tails carry the entire log
    /// (stragglers catch all the way up); lowered for the
    /// checkpoint-interaction scenario.
    pub checkpoint_txns: u64,
    /// Hard wall-clock cap on the run.
    pub deadline: Duration,
}

impl Scenario {
    fn base(name: &'static str) -> Scenario {
        Scenario {
            name,
            plan: FaultPlan::default(),
            byzantine: false,
            pbft_only: false,
            consensus_instances: 1,
            clients: 2,
            txns_per_client: 60,
            batch_size: 8,
            view_timeout_ms: 400,
            checkpoint_txns: 1_000_000,
            deadline: Duration::from_secs(25),
        }
    }

    fn with_events(mut self, events: Vec<FaultEvent>) -> Scenario {
        self.plan.events = events;
        self
    }

    /// Total transactions this scenario submits.
    pub fn total_txns(&self) -> u64 {
        self.clients as u64 * self.txns_per_client
    }
}

fn at_committed(n: u64, action: FaultAction) -> FaultEvent {
    FaultEvent {
        at: Mark::Committed(n),
        action,
    }
}

fn at_ms(ms: u64, action: FaultAction) -> FaultEvent {
    FaultEvent {
        at: Mark::Elapsed(Duration::from_millis(ms)),
        action,
    }
}

/// The named scenario catalog.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        // Figure 17's headline case: one crashed backup. PBFT degrades
        // gracefully (commit quorum still forms); Zyzzyva's fast path dies
        // and every request takes the client-driven certificate detour.
        Scenario::base("backup_crash").with_events(vec![at_committed(30, FaultAction::Crash(1))]),
        // The primary dies mid-stream: suspicion timers fire, a view
        // change elects replica 1, in-flight batches are re-issued and
        // committed exactly once.
        Scenario::base("primary_crash").with_events(vec![at_committed(30, FaultAction::Crash(0))]),
        // Crashes chase the primaryship: the first new primary dies too
        // (after the first recovers — f = 1 tolerates one fault at a time).
        Scenario {
            deadline: Duration::from_secs(35),
            ..Scenario::base("cascading_crashes")
        }
        .with_events(vec![
            at_committed(20, FaultAction::Crash(0)),
            at_ms(4_000, FaultAction::Recover(0)),
            at_ms(5_000, FaultAction::Crash(1)),
        ]),
        // A 2+2 split: neither half has a quorum, commits stall entirely,
        // then the heal lets the view-change votes union and the log
        // re-issue catch everyone up.
        Scenario {
            deadline: Duration::from_secs(35),
            ..Scenario::base("partition_heal")
        }
        .with_events(vec![
            at_committed(30, FaultAction::Partition(vec![vec![0, 1], vec![2, 3]])),
            at_ms(3_000, FaultAction::HealAll),
        ]),
        // A loss burst: 5% of messages silently vanish on every link for
        // 2.5 s, then the links recover. Vote re-broadcast and client
        // retransmission mask the loss; once the burst ends, any view
        // changes it triggered settle, and a straggler that lost a
        // re-issued PrePrepare outright fetches the committed batch (plus
        // its certificate) from a peer — so ALL FOUR replicas must end on
        // the same digest, not just a commit quorum.
        Scenario::base("lossy_network").with_events(vec![
            at_ms(0, FaultAction::DropRate(0.05)),
            at_ms(2_500, FaultAction::DropRate(0.0)),
        ]),
        // Up to 2 ms of seeded per-message delay: exercises reordering
        // (out-of-order proposals park; execution stays sequential).
        Scenario::base("delay_jitter").with_events(vec![at_ms(
            0,
            FaultAction::DelayJitter(Duration::from_millis(2)),
        )]),
        // The byzantine case: the initial primary sends *different*
        // batches to different backups. No quorum can form, the honest
        // replicas vote it out, and the new primary's majority merge
        // commits a single variant. PBFT-only: Zyzzyva's skeleton view
        // change assumes a crashed (not lying) primary.
        Scenario {
            byzantine: true,
            pbft_only: true,
            ..Scenario::base("equivocating_primary")
        },
        // Multi-primary ordering under fire: two consensus instances, and
        // the crash kills replica 1 — instance 1's view-0 primary but a
        // mere backup of instance 0. Instance 0 keeps committing
        // throughout; instance 1 stalls, its suspicion timers fire, a
        // per-instance view change hands it to replica 2 (= (1+1) mod 4),
        // and the sharded clients re-aim at the *same instance's* new
        // primary — never a second instance, so nothing double-orders.
        // PBFT-only by construction (k > 1 rejects Zyzzyva).
        Scenario {
            consensus_instances: 2,
            pbft_only: true,
            clients: 4,
            deadline: Duration::from_secs(35),
            ..Scenario::base("multi_primary_crash")
        }
        .with_events(vec![at_committed(30, FaultAction::Crash(1))]),
        // A backup dies just as a checkpoint interval boundary passes:
        // checkpoint stability (2f+1) must still be reached and pruning
        // must not strand the survivors.
        Scenario {
            checkpoint_txns: 32,
            ..Scenario::base("crash_during_checkpoint")
        }
        .with_events(vec![at_committed(34, FaultAction::Crash(3))]),
        // Crash, then recover: the rejoined replica must not poison the
        // healthy quorum — and with the fetch protocol it must do better
        // than not poisoning: it detects its execution hole, fetches the
        // committed batches (with certificates) it slept through, and
        // converges to the survivors' exact digest. All four replicas
        // must agree at the end.
        Scenario {
            deadline: Duration::from_secs(35),
            ..Scenario::base("restart_rejoin")
        }
        .with_events(vec![
            at_committed(30, FaultAction::Crash(2)),
            at_ms(3_000, FaultAction::Recover(2)),
        ]),
        // Rejoin through a *snapshot*: checkpointing is on (Δ = 32 txns),
        // so by the time the crashed replica returns, the survivors have
        // pruned the log below the stable checkpoint and cannot serve the
        // oldest holes batch-by-batch. The rejoiner must instead install
        // a verified state snapshot (f+1 peers agreeing on the state
        // commitment) at the checkpoint base and fetch only the tail —
        // and still converge to the survivors' digest.
        Scenario {
            checkpoint_txns: 32,
            deadline: Duration::from_secs(35),
            ..Scenario::base("rejoin_via_state_transfer")
        }
        .with_events(vec![
            at_committed(30, FaultAction::Crash(2)),
            at_ms(3_000, FaultAction::Recover(2)),
        ]),
        // Everything at once: background loss and jitter, a primary
        // crash, a short partition, and a heal — on BOTH protocols, with
        // ALL FOUR replicas required to agree at the end. The drop burst
        // can cost a replica a re-issued PrePrepare; it re-fetches the
        // committed batch from a peer. The recovered ex-primary rejoins
        // the same way. Under Zyzzyva the speculative histories diverge
        // 2+1+1 across the partition sides and the recovered ex-primary —
        // the view change rolls every replica's mis-speculated suffix
        // back to the committed prefix and re-executes the new primary's
        // merged history, which is exactly the reconciliation machinery
        // the source paper singles out as Zyzzyva's Achilles' heel.
        // Checkpointing stays off (Δ above the load) so recovery here is
        // pure per-batch fetch; the snapshot path is exercised by
        // `rejoin_via_state_transfer`.
        Scenario {
            deadline: Duration::from_secs(40),
            ..Scenario::base("chaos")
        }
        .with_events(vec![
            at_ms(0, FaultAction::DropRate(0.02)),
            at_ms(0, FaultAction::DelayJitter(Duration::from_millis(1))),
            at_committed(20, FaultAction::Crash(0)),
            at_ms(4_000, FaultAction::Partition(vec![vec![1, 2], vec![3]])),
            at_ms(6_000, FaultAction::HealAll),
            at_ms(6_500, FaultAction::Recover(0)),
            at_ms(7_000, FaultAction::DropRate(0.0)),
        ]),
    ]
}

/// Looks a catalog scenario up by name.
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// The measured outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name.
    pub scenario: String,
    /// `"pbft"` or `"zyzzyva"`.
    pub protocol: String,
    /// `"memory"` or `"tcp"`.
    pub transport: String,
    /// Transactions submitted.
    pub total_txns: u64,
    /// Transactions completed at the clients.
    pub completed: u64,
    /// Wall clock from first submission to last completion (or deadline).
    pub elapsed_ms: u64,
    /// Client-completed transactions per elapsed second (bucket `i` covers
    /// `[i, i+1)` seconds) — the degradation profile around the faults.
    pub buckets: Vec<u64>,
    /// `(ms_since_start, description)` for every fault fired.
    pub events: Vec<(u64, String)>,
    /// Final installed view per replica (instance 0).
    pub final_views: Vec<u64>,
    /// Parallel consensus instances the deployment ran.
    pub consensus_instances: usize,
    /// Final installed view per replica, per instance (`[instance][replica]`).
    pub instance_views: Vec<Vec<u64>>,
    /// Multi-primary isolation (trivially true at k = 1): instances whose
    /// primary was never crashed kept view 0 and committed real work,
    /// while a crashed instance's view change reached a quorum.
    pub instances_isolated: bool,
    /// Size of the largest digest-agreeing replica set at the end.
    pub agreeing: usize,
    /// Whether every replica that is up at the end (never crashed, or
    /// crashed and recovered) agrees on the state digest and chain head.
    pub digests_agree: bool,
    /// Whether every submitted transaction completed.
    pub liveness: bool,
    /// Retransmitted transactions suppressed by the executor (max across
    /// replicas) — nonzero means exactly-once accounting did real work.
    pub deduped: u64,
}

impl ScenarioResult {
    /// Mean committed-per-second over the run.
    pub fn mean_tps(&self) -> f64 {
        if self.elapsed_ms == 0 {
            return 0.0;
        }
        self.completed as f64 * 1000.0 / self.elapsed_ms as f64
    }

    /// One JSON object (hand-rolled; the repo carries no serializer).
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self.buckets.iter().map(|b| b.to_string()).collect();
        let events: Vec<String> = self
            .events
            .iter()
            .map(|(ms, d)| format!("{{\"ms\": {ms}, \"action\": \"{d}\"}}"))
            .collect();
        let views: Vec<String> = self.final_views.iter().map(|v| v.to_string()).collect();
        let iviews: Vec<String> = self
            .instance_views
            .iter()
            .map(|per_replica| {
                let vs: Vec<String> = per_replica.iter().map(|v| v.to_string()).collect();
                format!("[{}]", vs.join(", "))
            })
            .collect();
        format!(
            "{{\"scenario\": \"{}\", \"protocol\": \"{}\", \"transport\": \"{}\", \
             \"total_txns\": {}, \"completed\": {}, \"elapsed_ms\": {}, \"mean_tps\": {:.1}, \
             \"liveness\": {}, \"digests_agree\": {}, \"agreeing_replicas\": {}, \
             \"final_views\": [{}], \"consensus_instances\": {}, \"instance_views\": [{}], \
             \"instances_isolated\": {}, \"deduped_txns\": {}, \
             \"committed_per_sec\": [{}], \"events\": [{}]}}",
            self.scenario,
            self.protocol,
            self.transport,
            self.total_txns,
            self.completed,
            self.elapsed_ms,
            self.mean_tps(),
            self.liveness,
            self.digests_agree,
            self.agreeing,
            views.join(", "),
            self.consensus_instances,
            iviews.join(", "),
            self.instances_isolated,
            self.deduped,
            buckets.join(", "),
            events.join(", ")
        )
    }
}

impl FaultAction {
    /// Human-readable one-liner (event timelines, `FAULT` log lines).
    pub fn describe(&self) -> String {
        match self {
            FaultAction::Crash(r) => format!("crash r{r}"),
            FaultAction::Recover(r) => format!("recover r{r}"),
            FaultAction::Partition(groups) => {
                let gs: Vec<String> = groups
                    .iter()
                    .map(|g| {
                        g.iter()
                            .map(|r| r.to_string())
                            .collect::<Vec<_>>()
                            .join(",")
                    })
                    .collect();
                format!("partition {}", gs.join("|"))
            }
            FaultAction::HealAll => "heal".into(),
            FaultAction::DropRate(r) => format!("drop_rate {r}"),
            FaultAction::DelayJitter(d) => format!("delay_jitter {}us", d.as_micros()),
        }
    }

    /// Applies this action to a single transport's fault controller — the
    /// per-node half used by `rdb-node --fault-plan`, where every process
    /// of a multi-process cluster loads the same plan and applies it to
    /// its own transport (dropping a crashed peer's traffic locally is
    /// exactly what the in-process fabric does across all controllers).
    pub fn apply_to_controller(&self, faults: &rdb_net::FaultController) {
        use rdb_common::messages::Sender;
        match self {
            FaultAction::Crash(r) => faults.crash(Sender::Replica(ReplicaId(*r))),
            FaultAction::Recover(r) => faults.recover(Sender::Replica(ReplicaId(*r))),
            FaultAction::Partition(groups) => {
                for (i, group_a) in groups.iter().enumerate() {
                    for group_b in groups.iter().skip(i + 1) {
                        let a: Vec<Sender> = group_a
                            .iter()
                            .map(|&r| Sender::Replica(ReplicaId(r)))
                            .collect();
                        let b: Vec<Sender> = group_b
                            .iter()
                            .map(|&r| Sender::Replica(ReplicaId(r)))
                            .collect();
                        faults.partition(&a, &b);
                    }
                }
            }
            FaultAction::HealAll => faults.heal_all(),
            FaultAction::DropRate(rate) => faults.set_drop_rate(*rate),
            FaultAction::DelayJitter(max) => faults.set_delay_jitter(*max),
        }
    }
}

fn apply(db: &ResilientDb, action: &FaultAction) {
    match action {
        FaultAction::Crash(r) => db.crash_replica(ReplicaId(*r)),
        FaultAction::Recover(r) => db.recover(ReplicaId(*r)),
        FaultAction::Partition(groups) => {
            let groups: Vec<Vec<ReplicaId>> = groups
                .iter()
                .map(|g| g.iter().map(|&r| ReplicaId(r)).collect())
                .collect();
            db.partition(&groups);
        }
        FaultAction::HealAll => db.heal_partitions(),
        FaultAction::DropRate(rate) => db.set_drop_rate(*rate),
        FaultAction::DelayJitter(max) => db.set_delay_jitter(*max),
    }
}

/// Runs one scenario against a live 4-replica deployment on the given
/// protocol and transport backend.
///
/// # Panics
/// Panics only on configuration errors (the scenario catalog is valid by
/// construction); fault-induced failures are reported in the result, not
/// panicked on.
pub fn run_scenario(
    scenario: &Scenario,
    protocol: ProtocolKind,
    transport: TransportMode,
) -> ScenarioResult {
    let n = 4usize;
    let mut builder = SystemBuilder::new(n)
        .protocol(protocol)
        .transport(transport)
        .consensus_instances(scenario.consensus_instances.max(1))
        .batch_size(scenario.batch_size)
        .table_size(4_096)
        .client_keys(scenario.clients)
        .checkpoint_interval(scenario.checkpoint_txns)
        .seed(scenario.plan.seed + 7);
    builder.config_mut().view_timeout_ms = scenario.view_timeout_ms;
    builder.config_mut().byzantine_primary = scenario.byzantine;
    let db = builder.build().expect("scenario config must be valid");
    db.set_fault_seed(scenario.plan.seed);

    // Load is submitted in waves — a client keeps roughly two batches in
    // flight and tops up as completions drain — so the fault marks fire
    // while requests are genuinely mid-stream (an upfront bulk submit on
    // the in-memory backend can finish before the crash even lands).
    // Unique key per transaction: the final state is independent of the
    // commit interleaving, so state digests are comparable across
    // replicas, protocols and transports.
    let wave = (scenario.batch_size as u64 * 2).max(8);
    let mut sessions: Vec<_> = (0..scenario.clients as u64).map(|c| db.client(c)).collect();
    let mut remaining: Vec<u64> = vec![scenario.txns_per_client; scenario.clients];

    let total = scenario.total_txns();
    let start = Instant::now();
    let mut completed = 0u64;
    let mut buckets: Vec<u64> = Vec::new();
    let mut fired: Vec<(u64, String)> = Vec::new();
    let mut pending: Vec<FaultEvent> = scenario.plan.events.clone();
    let mut elapsed_at_done = None;
    while completed < total && start.elapsed() < scenario.deadline {
        for (ci, session) in sessions.iter_mut().enumerate() {
            if remaining[ci] > 0 && (session.pending() as u64) < wave / 2 {
                let chunk = wave.min(remaining[ci]);
                let done_so_far = scenario.txns_per_client - remaining[ci];
                let txns: Vec<Transaction> = (0..chunk)
                    .map(|i| {
                        let key = ci as u64 * scenario.txns_per_client + done_so_far + i;
                        session.write_txn(key, (key + 1).to_le_bytes().to_vec())
                    })
                    .collect();
                session.submit(txns);
                remaining[ci] -= chunk;
            }
            let newly = session.poll_progress() as u64;
            if newly > 0 {
                completed += newly;
                let bucket = start.elapsed().as_secs() as usize;
                if buckets.len() <= bucket {
                    buckets.resize(bucket + 1, 0);
                }
                buckets[bucket] += newly;
            }
        }
        pending.retain(|event| {
            let due = match event.at {
                Mark::Committed(at) => completed >= at,
                Mark::Elapsed(at) => start.elapsed() >= at,
            };
            if due {
                apply(&db, &event.action);
                fired.push((start.elapsed().as_millis() as u64, event.action.describe()));
            }
            !due
        });
        if completed >= total {
            elapsed_at_done = Some(start.elapsed());
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = elapsed_at_done.unwrap_or_else(|| start.elapsed());

    // `RDB_FAULT_DEBUG=1`: dump the client-side protocol state of every
    // request still stuck at the deadline — which response groups exist,
    // whether a commit certificate went out, how many acks came back.
    if completed < total && std::env::var_os("RDB_FAULT_DEBUG").is_some() {
        for (ci, session) in sessions.iter().enumerate() {
            for line in session.debug_stuck() {
                eprintln!("DEBUG stuck client={ci} {line}");
            }
        }
        eprintln!(
            "DEBUG views={:?} executed={:?}",
            db.views(),
            (0..n as u32)
                .map(|r| db.executed_txns(ReplicaId(r)))
                .collect::<Vec<_>>()
        );
    }

    // Every replica that is up at the end — never crashed, or crashed and
    // recovered — must land in the digest-agreeing set. Loss bursts are no
    // excuse anymore: a straggler that lost a re-issued PrePrepare fetches
    // the committed batch (with its 2f+1 certificate, or f+1 matching
    // copies under Zyzzyva) from its peers, and a rejoiner whose holes
    // were pruned installs a verified checkpoint snapshot. Only replicas
    // the plan leaves permanently crashed are excused.
    let crashed = scenario.plan.crashed_replicas();
    let down = scenario.plan.permanently_down();
    let witnesses: Vec<usize> = (0..n).filter(|r| !down.contains(&(*r as u32))).collect();
    let required = witnesses.len();
    // On the in-memory fabric the load can drain before wall-clock marks
    // come due (a recovery at 3 s when the burst took 100 ms), so the
    // settle phase keeps firing overdue plan events — a recovered replica
    // still needs real time after its `recover` to fetch its way back.
    let last_mark = scenario
        .plan
        .events
        .iter()
        .filter_map(|e| match e.at {
            Mark::Elapsed(d) => Some(d),
            Mark::Committed(_) => None,
        })
        .max()
        .unwrap_or(Duration::ZERO);
    let settle_deadline = (start + last_mark).max(Instant::now()) + Duration::from_secs(10);
    let (agreeing, digests_agree) = loop {
        pending.retain(|event| {
            let due = match event.at {
                Mark::Committed(at) => completed >= at,
                Mark::Elapsed(at) => start.elapsed() >= at,
            };
            if due {
                apply(&db, &event.action);
                fired.push((start.elapsed().as_millis() as u64, event.action.describe()));
            }
            !due
        });
        let digests = db.state_digests();
        let heads = db.chain_heads();
        // Largest set of replicas sharing (digest, head).
        let mut best = 0usize;
        let mut best_members: Vec<usize> = Vec::new();
        for i in 0..n {
            let members: Vec<usize> = (0..n)
                .filter(|&j| digests[j] == digests[i] && heads[j] == heads[i])
                .collect();
            if members.len() > best {
                best = members.len();
                best_members = members;
            }
        }
        let agree = best >= required && witnesses.iter().all(|w| best_members.contains(w));
        if agree || Instant::now() > settle_deadline {
            break (best, agree);
        }
        std::thread::sleep(Duration::from_millis(50));
    };

    let deduped = (0..n as u32)
        .map(|r| db.deduped_txns(ReplicaId(r)))
        .max()
        .unwrap_or(0);
    let final_views = db.views();

    // Multi-primary isolation: a crash that hit one instance's primary
    // must have view-changed *that* instance only — every instance whose
    // view-0 primary stayed up keeps view 0 on the healthy replicas and
    // commits real work, while the crashed instance's new view reaches a
    // quorum.
    let kk = scenario.consensus_instances.max(1);
    let instance_views: Vec<Vec<u64>> = (0..kk).map(|j| db.instance_views(j)).collect();
    let mut instances_isolated = true;
    let quorum = 2 * db.config().f + 1;
    if kk > 1 {
        let healthy = (0..n as u32).find(|r| !crashed.contains(r)).unwrap_or(0);
        for (j, per_replica) in instance_views.iter().enumerate() {
            let initial_primary = (j % n) as u32;
            if crashed.contains(&initial_primary) {
                let advanced = per_replica.iter().filter(|v| **v >= 1).count();
                instances_isolated &= advanced >= quorum;
            } else {
                let undisturbed = per_replica
                    .iter()
                    .enumerate()
                    .filter(|(r, _)| !crashed.contains(&(*r as u32)))
                    .all(|(_, v)| *v == 0);
                let committed_j = db.committed_batches_for(ReplicaId(healthy), j);
                instances_isolated &= undisturbed && committed_j > 0;
            }
        }
    }
    drop(sessions);
    db.shutdown();

    ScenarioResult {
        scenario: scenario.name.to_string(),
        protocol: match protocol {
            ProtocolKind::Pbft => "pbft".into(),
            ProtocolKind::Zyzzyva => "zyzzyva".into(),
        },
        transport: match transport {
            TransportMode::InMemory => "memory".into(),
            TransportMode::Tcp => "tcp".into(),
        },
        total_txns: total,
        completed,
        elapsed_ms: elapsed.as_millis() as u64,
        buckets,
        events: fired,
        final_views,
        consensus_instances: kk,
        instance_views,
        instances_isolated,
        agreeing,
        digests_agree,
        liveness: completed >= total,
        deduped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parser_roundtrips_directives() {
        let plan = FaultPlan::parse(
            "# schedule\n\
             seed 42\n\
             at committed 50 crash 0\n\
             at elapsed_ms 2000 recover 0\n\
             at elapsed_ms 800 partition 0,1|2,3\n\
             at elapsed_ms 1800 heal\n\
             at elapsed_ms 0 drop_rate 0.05\n\
             at elapsed_ms 0 delay_jitter_us 2000\n",
        )
        .expect("valid plan");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.events.len(), 6);
        assert_eq!(
            plan.events[0],
            FaultEvent {
                at: Mark::Committed(50),
                action: FaultAction::Crash(0)
            }
        );
        assert_eq!(
            plan.events[2].action,
            FaultAction::Partition(vec![vec![0, 1], vec![2, 3]])
        );
        assert_eq!(
            plan.events[5].action,
            FaultAction::DelayJitter(Duration::from_millis(2))
        );
        assert_eq!(plan.crashed_replicas(), [0u32].into_iter().collect());
        // r0 is recovered later, so nobody is *permanently* down.
        assert!(plan.permanently_down().is_empty());
        let mut abandoned = plan;
        abandoned.events.remove(1);
        assert_eq!(abandoned.permanently_down(), [0u32].into_iter().collect());
    }

    #[test]
    fn plan_parser_rejects_garbage() {
        assert!(FaultPlan::parse("at committed x crash 0").is_err());
        assert!(FaultPlan::parse("at sometime 5 crash 0").is_err());
        assert!(FaultPlan::parse("at committed 5 explode 0").is_err());
        assert!(FaultPlan::parse("bogus").is_err());
    }

    #[test]
    fn catalog_is_complete_and_named_uniquely() {
        let cat = scenarios();
        assert!(cat.len() >= 11, "the matrix promises eleven scenarios");
        let names: HashSet<&str> = cat.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), cat.len(), "names must be unique");
        assert!(scenario_by_name("primary_crash").is_some());
        assert!(scenario_by_name("nonexistent").is_none());
    }

    #[test]
    fn result_json_is_wellformed_enough() {
        let r = ScenarioResult {
            scenario: "x".into(),
            protocol: "pbft".into(),
            transport: "memory".into(),
            total_txns: 10,
            completed: 10,
            elapsed_ms: 100,
            buckets: vec![5, 5],
            events: vec![(50, "crash r0".into())],
            final_views: vec![1, 1, 1, 1],
            consensus_instances: 2,
            instance_views: vec![vec![1, 1, 1, 1], vec![0, 0, 0, 0]],
            instances_isolated: true,
            agreeing: 4,
            digests_agree: true,
            liveness: true,
            deduped: 3,
        };
        let json = r.to_json();
        assert!(json.contains("\"committed_per_sec\": [5, 5]"));
        assert!(json.contains("\"mean_tps\": 100.0"));
        assert!(json.contains("\"events\": [{\"ms\": 50, \"action\": \"crash r0\"}]"));
        assert!(json.contains("\"consensus_instances\": 2"));
        assert!(json.contains("\"instance_views\": [[1, 1, 1, 1], [0, 0, 0, 0]]"));
        assert!(json.contains("\"instances_isolated\": true"));
    }
}
