//! The fabric: ResilientDB deployments, in one process or many.
//!
//! [`SystemBuilder`] configures and launches a replica set — over the
//! in-memory switchboard (the default) or over real TCP loopback sockets
//! ([`TransportMode::Tcp`]), still inside one process. [`ResilientDb`] is
//! the running deployment handle — create client sessions, inject faults,
//! inspect chains, shut down.
//!
//! For genuine multi-process clusters, [`NodeOptions`]
//! (`rdb_common::NodeOptions`) plus [`start_replica`]/[`connect_client`]
//! launch a *single* node against a shared peer address map; the
//! `rdb-node` binary is a thin CLI over exactly these entry points.
//!
//! Every launch path consumes the same [`NodeOptions`] struct and goes
//! through its single `validate()` — the builder here is a fluent shell
//! over it.

use crate::client::ClientSession;
use rdb_common::messages::Sender;
use rdb_common::{
    ClientId, CryptoScheme, Digest, NodeOptions, ProtocolKind, ReplicaId, StorageMode,
    SystemConfig, TransportMode,
};
use rdb_crypto::KeyRegistry;
use rdb_net::{NetHandle, Network, NetworkConfig, TcpConfig, TcpTransport};
use rdb_pipeline::{spawn_replica, ReplicaHandle, ReplicaShared, SaturationReport};
use std::sync::Arc;
use std::time::Duration;

/// Derives the key registry every node of a deployment must agree on.
pub fn registry_for(opts: &NodeOptions) -> KeyRegistry {
    KeyRegistry::generate(
        opts.system.crypto,
        opts.system.n,
        opts.client_keys,
        opts.seed,
    )
}

/// Builder for a [`ResilientDb`] deployment.
///
/// # Example
///
/// ```
/// use resilientdb::SystemBuilder;
///
/// let db = SystemBuilder::new(4)
///     .batch_size(10)
///     .table_size(1_000)
///     .client_keys(2)
///     .build()
///     .expect("valid config");
/// assert_eq!(db.replica_count(), 4);
/// db.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    opts: NodeOptions,
}

impl SystemBuilder {
    /// Starts a builder for `n` replicas with paper-default settings but a
    /// laptop-scale client population.
    ///
    /// # Panics
    /// Panics if `n < 4`.
    pub fn new(n: usize) -> Self {
        SystemBuilder {
            opts: NodeOptions::in_memory(n).expect("need at least 4 replicas"),
        }
    }

    /// Starts a builder from fully formed options.
    pub fn from_options(opts: NodeOptions) -> Self {
        SystemBuilder { opts }
    }

    /// Sets the consensus protocol.
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.opts = self.opts.protocol(protocol);
        self
    }

    /// Sets transactions per consensus batch.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.opts = self.opts.batch_size(batch_size);
        self
    }

    /// Number of parallel consensus instances (multi-primary ordering;
    /// `k > 1` requires PBFT).
    pub fn consensus_instances(mut self, k: usize) -> Self {
        self.opts = self.opts.consensus_instances(k);
        self
    }

    /// Sets the signing scheme.
    pub fn crypto(mut self, crypto: CryptoScheme) -> Self {
        self.opts = self.opts.crypto(crypto);
        self
    }

    /// Sets the storage backend.
    pub fn storage(mut self, storage: StorageMode) -> Self {
        self.opts = self.opts.storage(storage);
        self
    }

    /// Sets the thread allocation (the `xE yB` knob of Figure 8).
    pub fn threads(mut self, threads: rdb_common::ThreadConfig) -> Self {
        self.opts = self.opts.threads(threads);
        self
    }

    /// Sets the number of pre-loaded table records.
    pub fn table_size(mut self, records: u64) -> Self {
        self.opts = self.opts.table_size(records);
        self
    }

    /// Sets the checkpoint interval Δ (in transactions).
    pub fn checkpoint_interval(mut self, txns: u64) -> Self {
        self.opts = self.opts.checkpoint_interval(txns);
        self
    }

    /// Number of client identities to generate keys for.
    pub fn client_keys(mut self, clients: usize) -> Self {
        self.opts = self.opts.client_keys(clients);
        self
    }

    /// One-way network latency between all nodes (in-memory backend only;
    /// TCP loopback pays whatever the kernel charges).
    pub fn latency(mut self, latency: Duration) -> Self {
        self.opts = self.opts.latency(latency);
        self
    }

    /// Seed for deterministic key generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts = self.opts.seed(seed);
        self
    }

    /// Selects the transport backend (default: in-memory).
    pub fn transport(mut self, transport: TransportMode) -> Self {
        self.opts = self.opts.transport(transport);
        self
    }

    /// Access to the underlying system config for advanced tweaks.
    pub fn config_mut(&mut self) -> &mut SystemConfig {
        &mut self.opts.system
    }

    /// Access to the full option tree for advanced tweaks.
    pub fn options_mut(&mut self) -> &mut NodeOptions {
        &mut self.opts
    }

    /// Launches the deployment: generates keys, starts the transport(s)
    /// and all replica pipelines.
    ///
    /// # Errors
    /// Returns the validation error if the configuration is inconsistent,
    /// or an `InvalidConfig` error if the TCP loopback sockets cannot be
    /// bound.
    pub fn build(self) -> Result<ResilientDb, rdb_common::CommonError> {
        let opts = self.opts;
        opts.validate()?;
        let registry = registry_for(&opts);
        let config = opts.system.clone();
        let (replica_nets, client_net) = match opts.net.mode {
            TransportMode::InMemory => {
                let net = Network::new(NetworkConfig {
                    latency: opts.net.latency(),
                    queue_capacity: None,
                })
                .handle();
                (vec![net.clone(); config.n], net)
            }
            TransportMode::Tcp => {
                let (peers, listeners) =
                    TcpTransport::bind_loopback_cluster(config.n).map_err(|e| {
                        rdb_common::CommonError::InvalidConfig(format!(
                            "cannot bind loopback cluster: {e}"
                        ))
                    })?;
                let replica_nets: Vec<NetHandle> = listeners
                    .into_iter()
                    .map(|listener| {
                        TcpTransport::with_listener(
                            TcpConfig {
                                listen: listener.local_addr().ok(),
                                peers: peers.clone(),
                                ..TcpConfig::default()
                            }
                            .with_options(&opts.net),
                            Some(listener),
                        )
                        .handle()
                    })
                    .collect();
                let client_net = TcpTransport::with_listener(
                    TcpConfig::for_client(peers).with_options(&opts.net),
                    None,
                )
                .handle();
                (replica_nets, client_net)
            }
        };
        let replicas: Vec<ReplicaHandle> = (0..config.n as u32)
            .map(|i| spawn_replica(&config, ReplicaId(i), &replica_nets[i as usize], &registry))
            .collect();
        Ok(ResilientDb {
            config,
            registry,
            replica_nets,
            client_net,
            replicas,
        })
    }
}

/// A running ResilientDB deployment.
pub struct ResilientDb {
    config: SystemConfig,
    registry: KeyRegistry,
    /// One handle per replica — clones of a single switchboard for the
    /// in-memory backend, distinct socket transports for TCP loopback.
    replica_nets: Vec<NetHandle>,
    /// The transport client sessions attach to.
    client_net: NetHandle,
    replicas: Vec<ReplicaHandle>,
}

impl std::fmt::Debug for ResilientDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientDb")
            .field("n", &self.config.n)
            .field("protocol", &self.config.protocol)
            .finish()
    }
}

impl ResilientDb {
    /// The deployment's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The initial primary (view 0: replica 0). Client sessions address
    /// this replica first; after a view change their retransmissions reach
    /// whoever leads now.
    pub fn primary(&self) -> ReplicaId {
        ReplicaId(0)
    }

    /// The view each replica currently has installed (instance 0).
    pub fn views(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.shared().current_view())
            .collect()
    }

    /// The view each replica has installed for consensus instance `j`.
    pub fn instance_views(&self, j: usize) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.shared().instance_view(j))
            .collect()
    }

    /// Batches committed by consensus instance `j` at replica `id`.
    pub fn committed_batches_for(&self, id: ReplicaId, j: usize) -> u64 {
        self.replicas[id.as_usize()]
            .shared()
            .committed_batches_for(j)
    }

    /// The client-side transport handle (for statistics; for the
    /// in-memory backend this is the shared switchboard, so its stats
    /// cover all replicas too).
    pub fn network(&self) -> &NetHandle {
        &self.client_net
    }

    /// Opens a client session for `id`.
    ///
    /// # Panics
    /// Panics if `id` exceeds the generated client keys or is reused.
    pub fn client(&self, id: u64) -> ClientSession {
        ClientSession::connect(
            ClientId(id),
            &self.client_net,
            &self.registry,
            self.config.protocol,
            self.config.f,
            self.config.consensus_instances,
            self.config.n,
        )
    }

    /// Every transport's fault controller (one shared controller for the
    /// in-memory backend, one per node over TCP). Fault injection applies
    /// to all so both backends behave identically.
    fn all_fault_controllers(&self) -> impl Iterator<Item = &rdb_net::FaultController> {
        self.replica_nets
            .iter()
            .chain(std::iter::once(&self.client_net))
            .map(|net| net.faults())
    }

    /// Crashes a backup replica (all its traffic is dropped).
    ///
    /// # Panics
    /// Panics when asked to crash the primary — the paper's failure
    /// experiments fail backups only. Use [`Self::crash_replica`] for the
    /// view-change scenarios that deliberately kill the primary.
    pub fn crash_backup(&self, id: ReplicaId) {
        assert_ne!(id, self.primary(), "failure experiments crash backups only");
        self.crash_replica(id);
    }

    /// Crashes any replica, the primary included (all its traffic is
    /// dropped until [`Self::recover`]). Crashing the primary forces a
    /// view change once the remaining replicas' suspicion timers fire.
    pub fn crash_replica(&self, id: ReplicaId) {
        for faults in self.all_fault_controllers() {
            faults.crash(Sender::Replica(id));
        }
    }

    /// Recovers a crashed replica.
    pub fn recover(&self, id: ReplicaId) {
        for faults in self.all_fault_controllers() {
            faults.recover(Sender::Replica(id));
        }
    }

    /// Partitions the replica set into isolated groups: traffic between
    /// different groups is dropped, traffic within a group flows. Client
    /// traffic is unaffected (clients reach every partition).
    pub fn partition(&self, groups: &[Vec<ReplicaId>]) {
        for (i, group_a) in groups.iter().enumerate() {
            for group_b in groups.iter().skip(i + 1) {
                let a: Vec<Sender> = group_a.iter().map(|&r| Sender::Replica(r)).collect();
                let b: Vec<Sender> = group_b.iter().map(|&r| Sender::Replica(r)).collect();
                for faults in self.all_fault_controllers() {
                    faults.partition(&a, &b);
                }
            }
        }
    }

    /// Heals all partitions (crashed replicas stay crashed).
    pub fn heal_partitions(&self) {
        for faults in self.all_fault_controllers() {
            faults.heal_all();
        }
    }

    /// Sets a uniform message drop rate in `[0.0, 1.0]` on every link
    /// (deterministic per (seed, link, message index)).
    pub fn set_drop_rate(&self, rate: f64) {
        for faults in self.all_fault_controllers() {
            faults.set_drop_rate(rate);
        }
    }

    /// Sets the maximum seeded per-message delivery delay.
    pub fn set_delay_jitter(&self, max: Duration) {
        for faults in self.all_fault_controllers() {
            faults.set_delay_jitter(max);
        }
    }

    /// Seeds the deterministic drop/delay schedule on every transport.
    pub fn set_fault_seed(&self, seed: u64) {
        for faults in self.all_fault_controllers() {
            faults.set_seed(seed);
        }
    }

    /// Chain head sequence at each replica.
    pub fn chain_heads(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.shared().chain.lock().head_seq().0)
            .collect()
    }

    /// State digest at each replica (equal across correct replicas once
    /// execution catches up).
    pub fn state_digests(&self) -> Vec<Digest> {
        self.replicas
            .iter()
            .map(|r| r.shared().store.state_digest())
            .collect()
    }

    /// Verifies every replica's retained chain.
    ///
    /// # Errors
    /// Returns the first replica's chain error encountered.
    pub fn verify_chains(&self) -> Result<(), rdb_common::CommonError> {
        for r in &self.replicas {
            r.shared().chain.lock().verify()?;
        }
        Ok(())
    }

    /// Total *distinct* transactions executed at replica `id`.
    pub fn executed_txns(&self, id: ReplicaId) -> u64 {
        self.replicas[id.as_usize()]
            .shared()
            .executor
            .executed_txns()
    }

    /// Duplicate transactions suppressed at replica `id` (retransmissions
    /// that were ordered a second time, e.g. across a view change).
    pub fn deduped_txns(&self, id: ReplicaId) -> u64 {
        self.replicas[id.as_usize()]
            .shared()
            .executor
            .deduped_txns()
    }

    /// Batches committed by consensus at replica `id`.
    pub fn committed_batches(&self, id: ReplicaId) -> u64 {
        self.replicas[id.as_usize()].shared().committed_batches()
    }

    /// Saturation report for replica `id` (Figure 9's measurement).
    pub fn saturation(&self, id: ReplicaId) -> SaturationReport {
        self.replicas[id.as_usize()].shared().metrics.report()
    }

    /// Runs a multiplexed client swarm against this deployment — the
    /// in-process counterpart of `rdb-node --swarm` (see [`crate::swarm`]).
    pub fn run_swarm(&self, cfg: &crate::swarm::SwarmConfig) -> crate::swarm::SwarmReport {
        crate::swarm::run_swarm(&self.client_net, &self.registry, &self.config, cfg)
    }

    /// Stops every replica and the transport(s).
    pub fn shutdown(self) {
        for r in self.replicas {
            r.shutdown();
        }
        for net in &self.replica_nets {
            net.shutdown();
        }
        self.client_net.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Multi-process deployment: one node per OS process.
// ---------------------------------------------------------------------------

/// The old name for what is now the unified [`NodeOptions`] — same
/// fields, same `new(peers)` constructor, one extra `net` layer.
#[deprecated(since = "0.1.0", note = "use `NodeOptions` (re-exported here)")]
pub type NodeConfig = NodeOptions;

/// A single replica process: its pipeline plus its TCP transport.
pub struct ReplicaNode {
    net: NetHandle,
    handle: ReplicaHandle,
}

impl std::fmt::Debug for ReplicaNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("replica", &self.handle.shared().id)
            .finish()
    }
}

impl ReplicaNode {
    /// The replica's shared state (store, chain, counters).
    pub fn shared(&self) -> &Arc<ReplicaShared> {
        self.handle.shared()
    }

    /// The node's transport handle.
    pub fn network(&self) -> &NetHandle {
        &self.net
    }

    /// Stops the pipeline and the transport.
    pub fn shutdown(self) {
        self.handle.shutdown();
        self.net.shutdown();
    }
}

/// Starts replica `id` of a multi-process cluster: binds its listener
/// from the peer map, spawns the full pipeline, and returns the running
/// node.
///
/// # Errors
/// Returns an error if the options fail validation, `id` is missing from
/// the map, or the listener cannot be bound.
pub fn start_replica(node: &NodeOptions, id: ReplicaId) -> std::io::Result<ReplicaNode> {
    let invalid = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, m);
    node.validate().map_err(|e| invalid(e.to_string()))?;
    if node.peers.len() != node.system.n {
        return Err(invalid(format!(
            "peer map has {} replicas but the system config says n={}",
            node.peers.len(),
            node.system.n
        )));
    }
    if node.peers.get(id).is_none() {
        return Err(invalid(format!("replica {id} is not in the peer map")));
    }
    let transport =
        TcpTransport::new(TcpConfig::for_replica(id, node.peers.clone()).with_options(&node.net))?;
    let net = transport.handle();
    let handle = spawn_replica(&node.system, id, &net, &registry_for(node));
    Ok(ReplicaNode { net, handle })
}

/// Connects a client process to a multi-process cluster: creates a
/// listener-less TCP transport that dials every replica, and opens a
/// session for `id`. The returned handle shuts the transport down.
///
/// # Errors
/// Returns an error if the peer map is empty.
/// Creates the swarm-mode client transport for a multi-process cluster:
/// no listener, shared links to every replica, and one *dedicated*
/// connection per registered client endpoint to `primary` — so an
/// N-client swarm exercises N real sockets. Pair with
/// [`crate::swarm::run_swarm`].
///
/// # Errors
/// Returns an error if the options fail validation or the peer map is
/// empty or missing `primary`.
pub fn swarm_net(node: &NodeOptions, primary: ReplicaId) -> std::io::Result<NetHandle> {
    let invalid = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, m);
    node.validate().map_err(|e| invalid(e.to_string()))?;
    if node.peers.get(primary).is_none() {
        return Err(invalid(format!("primary {primary} is not in the peer map")));
    }
    let transport = TcpTransport::new(
        TcpConfig::for_swarm(node.peers.clone(), primary).with_options(&node.net),
    )?;
    Ok(transport.handle())
}

pub fn connect_client(
    node: &NodeOptions,
    id: ClientId,
) -> std::io::Result<(ClientSession, NetHandle)> {
    if node.peers.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "peer map is empty",
        ));
    }
    let transport =
        TcpTransport::new(TcpConfig::for_client(node.peers.clone()).with_options(&node.net))?;
    let net = transport.handle();
    let session = ClientSession::connect(
        id,
        &net,
        &registry_for(node),
        node.system.protocol,
        node.system.f,
        node.system.consensus_instances,
        node.system.n,
    );
    Ok((session, net))
}
