//! The fabric: a full ResilientDB deployment in one process.
//!
//! [`SystemBuilder`] configures and launches a replica set over the
//! in-memory network; [`ResilientDb`] is the running deployment handle —
//! create client sessions, inject faults, inspect chains, shut down.

use crate::client::ClientSession;
use rdb_common::messages::Sender;
use rdb_common::Digest;
use rdb_common::{ClientId, CryptoScheme, ProtocolKind, ReplicaId, StorageMode, SystemConfig};
use rdb_crypto::KeyRegistry;
use rdb_net::{Network, NetworkConfig};
use rdb_pipeline::{spawn_replica, ReplicaHandle, SaturationReport};
use std::time::Duration;

/// Builder for a [`ResilientDb`] deployment.
///
/// # Example
///
/// ```
/// use resilientdb::SystemBuilder;
///
/// let db = SystemBuilder::new(4)
///     .batch_size(10)
///     .table_size(1_000)
///     .client_keys(2)
///     .build()
///     .expect("valid config");
/// assert_eq!(db.replica_count(), 4);
/// db.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct SystemBuilder {
    config: SystemConfig,
    client_keys: usize,
    latency: Duration,
    seed: u64,
}

impl SystemBuilder {
    /// Starts a builder for `n` replicas with paper-default settings but a
    /// laptop-scale client population.
    ///
    /// # Panics
    /// Panics if `n < 4`.
    pub fn new(n: usize) -> Self {
        let mut config = SystemConfig::new(n).expect("need at least 4 replicas");
        // Laptop-scale defaults; the paper-scale population lives in the
        // simulator, not the threaded runtime.
        config.num_clients = 8;
        config.table_size = 4_096;
        SystemBuilder {
            config,
            client_keys: 8,
            latency: Duration::ZERO,
            seed: 42,
        }
    }

    /// Sets the consensus protocol.
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.config.protocol = protocol;
        self
    }

    /// Sets transactions per consensus batch.
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size;
        self
    }

    /// Sets the signing scheme.
    pub fn crypto(mut self, crypto: CryptoScheme) -> Self {
        self.config.crypto = crypto;
        self
    }

    /// Sets the storage backend.
    pub fn storage(mut self, storage: StorageMode) -> Self {
        self.config.storage = storage;
        self
    }

    /// Sets the thread allocation (the `xE yB` knob of Figure 8).
    pub fn threads(mut self, threads: rdb_common::ThreadConfig) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the number of pre-loaded table records.
    pub fn table_size(mut self, records: u64) -> Self {
        self.config.table_size = records;
        self
    }

    /// Sets the checkpoint interval Δ (in transactions).
    pub fn checkpoint_interval(mut self, txns: u64) -> Self {
        self.config.checkpoint_interval = txns;
        self
    }

    /// Number of client identities to generate keys for.
    pub fn client_keys(mut self, clients: usize) -> Self {
        self.client_keys = clients;
        self.config.num_clients = clients;
        self
    }

    /// One-way network latency between all nodes.
    pub fn latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Seed for deterministic key generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Access to the underlying config for advanced tweaks.
    pub fn config_mut(&mut self) -> &mut SystemConfig {
        &mut self.config
    }

    /// Launches the deployment: generates keys, starts the network and all
    /// replica pipelines.
    ///
    /// # Errors
    /// Returns the validation error if the configuration is inconsistent.
    pub fn build(self) -> Result<ResilientDb, rdb_common::CommonError> {
        self.config.validate()?;
        let registry = KeyRegistry::generate(
            self.config.crypto,
            self.config.n,
            self.client_keys,
            self.seed,
        );
        let net = Network::new(NetworkConfig {
            latency: self.latency,
            queue_capacity: None,
        });
        let replicas: Vec<ReplicaHandle> = (0..self.config.n as u32)
            .map(|i| spawn_replica(&self.config, ReplicaId(i), &net, &registry))
            .collect();
        Ok(ResilientDb {
            config: self.config,
            registry,
            net,
            replicas,
        })
    }
}

/// A running ResilientDB deployment.
pub struct ResilientDb {
    config: SystemConfig,
    registry: KeyRegistry,
    net: Network,
    replicas: Vec<ReplicaHandle>,
}

impl std::fmt::Debug for ResilientDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientDb")
            .field("n", &self.config.n)
            .field("protocol", &self.config.protocol)
            .finish()
    }
}

impl ResilientDb {
    /// The deployment's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The current primary (view 0: replica 0).
    pub fn primary(&self) -> ReplicaId {
        ReplicaId(0)
    }

    /// The shared network (for fault injection and statistics).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Opens a client session for `id`.
    ///
    /// # Panics
    /// Panics if `id` exceeds the generated client keys or is reused.
    pub fn client(&self, id: u64) -> ClientSession {
        ClientSession::connect(
            ClientId(id),
            &self.net,
            &self.registry,
            self.config.protocol,
            self.config.f,
            self.primary(),
            self.config.n,
        )
    }

    /// Crashes a backup replica (all its traffic is dropped).
    ///
    /// # Panics
    /// Panics when asked to crash the primary — the paper's failure
    /// experiments fail backups only.
    pub fn crash_backup(&self, id: ReplicaId) {
        assert_ne!(id, self.primary(), "failure experiments crash backups only");
        self.net.faults().crash(Sender::Replica(id));
    }

    /// Recovers a crashed backup.
    pub fn recover(&self, id: ReplicaId) {
        self.net.faults().recover(Sender::Replica(id));
    }

    /// Chain head sequence at each replica.
    pub fn chain_heads(&self) -> Vec<u64> {
        self.replicas
            .iter()
            .map(|r| r.shared().chain.lock().head_seq().0)
            .collect()
    }

    /// State digest at each replica (equal across correct replicas once
    /// execution catches up).
    pub fn state_digests(&self) -> Vec<Digest> {
        self.replicas
            .iter()
            .map(|r| r.shared().store.state_digest())
            .collect()
    }

    /// Verifies every replica's retained chain.
    ///
    /// # Errors
    /// Returns the first replica's chain error encountered.
    pub fn verify_chains(&self) -> Result<(), rdb_common::CommonError> {
        for r in &self.replicas {
            r.shared().chain.lock().verify()?;
        }
        Ok(())
    }

    /// Total transactions executed at replica `id`.
    pub fn executed_txns(&self, id: ReplicaId) -> u64 {
        self.replicas[id.as_usize()]
            .shared()
            .executor
            .executed_txns()
    }

    /// Saturation report for replica `id` (Figure 9's measurement).
    pub fn saturation(&self, id: ReplicaId) -> SaturationReport {
        self.replicas[id.as_usize()].shared().metrics.report()
    }

    /// Stops every replica and the network.
    pub fn shutdown(self) {
        for r in self.replicas {
            r.shutdown();
        }
        self.net.shutdown();
    }
}
