//! `rdb-node` — one node of a multi-process ResilientDB cluster.
//!
//! A replica process runs the full pipeline over the TCP transport and
//! reports progress on stdout; a client process submits a closed-loop
//! write workload and exits when it completes. All processes must agree
//! on the peer map, seed and crypto scheme so they derive identical keys.
//!
//! ```text
//! # replica 0 of a 4-replica cluster
//! rdb-node --replica 0 --peers 0=127.0.0.1:7000,1=127.0.0.1:7001,\
//!          2=127.0.0.1:7002,3=127.0.0.1:7003 --exit-after-txns 200
//!
//! # the client driving it
//! rdb-node --client --peers cluster.toml --txns 200
//! ```
//!
//! Replica output protocol (consumed by the loopback smoke harness):
//!
//! ```text
//! READY replica=0 listen=127.0.0.1:7000
//! STATE replica=0 executed=120 digest=ab…   (periodic)
//! FINAL replica=0 executed=200 digest=ab…   (once --exit-after-txns is reached)
//! ```

use rdb_common::{ClientId, CryptoScheme, PeerMap, ProtocolKind, ReplicaId};
use resilientdb::{connect_client, start_replica, NodeConfig};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    role: Role,
    peers: PeerMap,
    protocol: ProtocolKind,
    crypto: CryptoScheme,
    batch_size: usize,
    client_keys: usize,
    seed: u64,
    // replica knobs
    exit_after_txns: Option<u64>,
    report_every_ms: u64,
    run_secs: u64,
    linger_ms: u64,
    // client knobs
    client_id: u64,
    txns: u64,
    burst: Option<usize>,
    wait_secs: u64,
}

enum Role {
    Replica(ReplicaId),
    Client,
}

fn usage() -> ! {
    eprintln!(
        "usage: rdb-node (--replica <id> | --client) --peers <spec|file> [options]

options:
  --peers <spec|file>     0=host:port,1=host:port,… or a TOML file with [peers]
  --protocol <p>          pbft (default) | zyzzyva
  --crypto <c>            cmac (default) | ed25519 | rsa | nocrypto
  --batch-size <n>        transactions per consensus batch (default 20)
  --client-keys <n>       client identities to derive keys for (default 8)
  --seed <n>              deterministic key seed, identical cluster-wide (default 42)

replica options:
  --exit-after-txns <n>   print FINAL and exit once n txns executed
  --report-every-ms <n>   STATE line period (default 1000)
  --run-secs <n>          hard lifetime limit (default 600)
  --linger-ms <n>         drain time after FINAL before shutdown (default 2000)

client options:
  --client-id <n>         which client identity to use (default 0)
  --txns <n>              total transactions to submit (default 100)
  --burst <n>             transactions per request (default: batch size)
  --wait-secs <n>         per-burst completion deadline (default 60)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        role: Role::Client,
        peers: PeerMap::new(),
        protocol: ProtocolKind::Pbft,
        crypto: CryptoScheme::CmacEd25519,
        batch_size: 20,
        client_keys: 8,
        seed: 42,
        exit_after_txns: None,
        report_every_ms: 1_000,
        run_secs: 600,
        linger_ms: 2_000,
        client_id: 0,
        txns: 100,
        burst: None,
        wait_secs: 60,
    };
    let mut role = None;
    let mut it = std::env::args().skip(1);
    let missing = |flag: &str| -> ! {
        eprintln!("rdb-node: {flag} needs a value");
        std::process::exit(2);
    };
    let bad = |flag: &str, v: &str| -> ! {
        eprintln!("rdb-node: invalid value '{v}' for {flag}");
        std::process::exit(2);
    };
    while let Some(flag) = it.next() {
        macro_rules! value {
            () => {
                match it.next() {
                    Some(v) => v,
                    None => missing(&flag),
                }
            };
        }
        macro_rules! parsed {
            () => {{
                let v = value!();
                match v.parse() {
                    Ok(x) => x,
                    Err(_) => bad(&flag, &v),
                }
            }};
        }
        match flag.as_str() {
            "--replica" => role = Some(Role::Replica(ReplicaId(parsed!()))),
            "--client" => role = Some(Role::Client),
            "--peers" => {
                let v = value!();
                let parsed = if v.contains('=') {
                    PeerMap::parse_flag(&v)
                } else {
                    PeerMap::from_file(std::path::Path::new(&v))
                };
                match parsed {
                    Ok(p) => args.peers = p,
                    Err(e) => {
                        eprintln!("rdb-node: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--protocol" => {
                let v = value!();
                args.protocol = match v.as_str() {
                    "pbft" => ProtocolKind::Pbft,
                    "zyzzyva" => ProtocolKind::Zyzzyva,
                    _ => bad(&flag, &v),
                };
            }
            "--crypto" => {
                let v = value!();
                args.crypto = match v.as_str() {
                    "cmac" => CryptoScheme::CmacEd25519,
                    "ed25519" => CryptoScheme::Ed25519,
                    "rsa" => CryptoScheme::Rsa,
                    "nocrypto" => CryptoScheme::NoCrypto,
                    _ => bad(&flag, &v),
                };
            }
            "--batch-size" => args.batch_size = parsed!(),
            "--client-keys" => args.client_keys = parsed!(),
            "--seed" => args.seed = parsed!(),
            "--exit-after-txns" => args.exit_after_txns = Some(parsed!()),
            "--report-every-ms" => args.report_every_ms = parsed!(),
            "--run-secs" => args.run_secs = parsed!(),
            "--linger-ms" => args.linger_ms = parsed!(),
            "--client-id" => args.client_id = parsed!(),
            "--txns" => args.txns = parsed!(),
            "--burst" => args.burst = Some(parsed!()),
            "--wait-secs" => args.wait_secs = parsed!(),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("rdb-node: unknown flag '{other}'");
                usage();
            }
        }
    }
    match role {
        Some(r) => args.role = r,
        None => usage(),
    }
    args
}

fn node_config(args: &Args) -> NodeConfig {
    let mut node = match NodeConfig::new(args.peers.clone()) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("rdb-node: {e}");
            std::process::exit(2);
        }
    };
    node.system.protocol = args.protocol;
    node.system.crypto = args.crypto;
    node.system.batch_size = args.batch_size;
    node.client_keys = args.client_keys;
    node.system.num_clients = args.client_keys;
    node.seed = args.seed;
    node
}

fn run_replica(args: &Args, id: ReplicaId) -> ExitCode {
    let node_cfg = node_config(args);
    let node = match start_replica(&node_cfg, id) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("rdb-node: cannot start replica {id}: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "READY replica={} listen={}",
        id.0,
        node_cfg.peers.get(id).expect("own peer entry")
    );
    let started = Instant::now();
    let report_every = Duration::from_millis(args.report_every_ms.max(10));
    let deadline = started + Duration::from_secs(args.run_secs);
    loop {
        std::thread::sleep(report_every);
        let executed = node.shared().executor.executed_txns();
        let digest = node.shared().store.state_digest();
        println!("STATE replica={} executed={executed} digest={digest}", id.0);
        if let Some(target) = args.exit_after_txns {
            if executed >= target {
                // Snapshot-stable read: the executed counter only advances
                // after the store writes land, but execution may still be
                // in flight past the target (the client is free to submit
                // more than --exit-after-txns). Pair the digest with a
                // count that is identical before and after reading it, so
                // FINAL lines are bit-comparable across replicas at equal
                // counts.
                let mut attempts = 0;
                let (executed, digest) = loop {
                    let before = node.shared().executor.executed_txns();
                    let digest = node.shared().store.state_digest();
                    attempts += 1;
                    if node.shared().executor.executed_txns() == before || attempts > 250 {
                        break (before, digest);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                };
                println!("FINAL replica={} executed={executed} digest={digest}", id.0);
                // Let queued consensus traffic drain so slower replicas
                // can still reach their own target.
                std::thread::sleep(Duration::from_millis(args.linger_ms));
                node.shutdown();
                return ExitCode::SUCCESS;
            }
        }
        if Instant::now() > deadline {
            eprintln!("rdb-node: replica {} hit --run-secs limit", id.0);
            node.shutdown();
            return ExitCode::from(3);
        }
    }
}

fn run_client(args: &Args) -> ExitCode {
    let node_cfg = node_config(args);
    let (mut session, net) = match connect_client(&node_cfg, ClientId(args.client_id)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("rdb-node: cannot connect client: {e}");
            return ExitCode::from(1);
        }
    };
    let burst = args.burst.unwrap_or(args.batch_size).max(1) as u64;
    let wait = Duration::from_secs(args.wait_secs);
    let table = node_cfg.system.table_size;
    let mut done: u64 = 0;
    let mut submitted: u64 = 0;
    while submitted < args.txns {
        let count = burst.min(args.txns - submitted);
        let txns: Vec<_> = (0..count)
            .map(|i| {
                let key = (submitted + i) % table;
                session.write_txn(key, (submitted + i).to_le_bytes().to_vec())
            })
            .collect();
        submitted += count;
        done += session.submit_and_wait(txns, wait) as u64;
    }
    println!("CLIENT done={done} submitted={submitted}");
    net.shutdown();
    if done == args.txns {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rdb-node: client completed {done}/{} transactions",
            args.txns
        );
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.role {
        Role::Replica(id) => run_replica(&args, id),
        Role::Client => run_client(&args),
    }
}
