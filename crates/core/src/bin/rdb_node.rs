//! `rdb-node` — one node of a multi-process ResilientDB cluster.
//!
//! A replica process runs the full pipeline over the TCP transport and
//! reports progress on stdout; a client process submits a closed-loop
//! write workload and exits when it completes; a swarm process multiplexes
//! thousands of client sessions — each with its own dedicated socket to
//! the primary — onto a few shard threads. All processes must agree on
//! the peer map, seed and crypto scheme so they derive identical keys.
//!
//! Configuration is the unified `NodeOptions`: the `--peers` file may
//! carry a `[node]` section alongside `[peers]`, and the individual flags
//! below override it (they predate the section and are kept as aliases).
//!
//! ```text
//! # replica 0 of a 4-replica cluster
//! rdb-node --replica 0 --peers cluster.toml --exit-after-txns 2000
//!
//! # a closed-loop client
//! rdb-node --client --peers cluster.toml --txns 200
//!
//! # a 1000-client swarm, 2 txns each
//! rdb-node --swarm 1000 --peers cluster.toml --txns-per-client 2
//!
//! # the same swarm against an in-process in-memory fabric (reference
//! # run for digest comparison)
//! rdb-node --swarm 1000 --mem --peers cluster.toml --txns-per-client 2
//! ```
//!
//! Replica output protocol (consumed by the smoke harnesses):
//!
//! ```text
//! RECOVER replica=0 source=local snapshot_seq=40 replayed_batches=3 replayed_txns=60
//!                                           (only with --data-dir, before READY)
//! READY replica=0 listen=127.0.0.1:7000
//! STATE replica=0 executed=120 digest=ab…   (periodic)
//! FINAL replica=0 executed=200 digest=ab…   (once --exit-after-txns is reached)
//! ```
//!
//! Swarm output (one line, plus FINAL lines per replica in `--mem` mode):
//!
//! ```text
//! SWARM clients=1000 submitted=2000 committed=2000 elapsed_ms=813 \
//!       tps=2460.0 p50_us=41000 p95_us=95000 p99_us=120000
//! ```

use rdb_common::{
    ClientId, CryptoScheme, FsyncMode, NodeOptions, PeerMap, ProtocolKind, ReplicaId,
};
use resilientdb::scenario::{FaultPlan, Mark};
use resilientdb::{
    connect_client, run_swarm, start_replica, swarm_net, SwarmConfig, SwarmReport, SystemBuilder,
};
use std::process::ExitCode;
use std::time::{Duration, Instant};

struct Args {
    role: Role,
    peers: PeerMap,
    /// Raw text of the `--peers` file (if it was a file): carries the
    /// optional `[node]` section.
    config_text: Option<String>,
    // [node]-equivalent flag overrides (None = not given, use file/default)
    protocol: Option<ProtocolKind>,
    crypto: Option<CryptoScheme>,
    batch_size: Option<usize>,
    client_keys: Option<usize>,
    seed: Option<u64>,
    table_size: Option<u64>,
    event_loops: Option<usize>,
    consensus_instances: Option<usize>,
    // replica knobs
    exit_after_txns: Option<u64>,
    report_every_ms: u64,
    run_secs: u64,
    linger_ms: u64,
    fault_plan: Option<String>,
    data_dir: Option<String>,
    fsync: Option<FsyncMode>,
    group_commit_window_us: Option<u64>,
    // client knobs
    client_id: u64,
    txns: u64,
    burst: Option<usize>,
    wait_secs: u64,
    // swarm knobs
    txns_per_client: u64,
    shards: usize,
    first_client: u64,
    mem: bool,
}

enum Role {
    Replica(ReplicaId),
    Client,
    Swarm(usize),
}

fn usage() -> ! {
    eprintln!(
        "usage: rdb-node (--replica <id> | --client | --swarm <n>) --peers <spec|file> [options]

options:
  --peers <spec|file>     0=host:port,1=host:port,… or a TOML file with
                          [peers] and an optional [node] section
  --protocol <p>          pbft (default) | zyzzyva
  --crypto <c>            cmac (default) | ed25519 | rsa | nocrypto
  --batch-size <n>        transactions per consensus batch (default 20)
  --client-keys <n>       client identities to derive keys for (default 8)
  --seed <n>              deterministic key seed, identical cluster-wide (default 42)
  --table-size <n>        pre-loaded table records (default 4096)
  --event-loops <n>       reactor threads per TCP transport (default 2)
  --consensus-instances <k>
                          parallel PBFT instances sharing the replica set
                          (multi-primary ordering; default 1, pbft only)

replica options:
  --exit-after-txns <n>   print FINAL and exit once n txns executed
  --report-every-ms <n>   STATE line period (default 1000)
  --run-secs <n>          hard lifetime limit (default 600)
  --linger-ms <n>         drain time after FINAL before shutdown (default 2000)
  --fault-plan <file>     deterministic fault schedule applied to this
                          node's transport; every process of the cluster
                          should load the same file. Directives:
                            seed <n>
                            at committed <n> crash <r> | recover <r>
                            at elapsed_ms <n> partition 0,1|2,3 | heal
                            at elapsed_ms <n> drop_rate <f> | delay_jitter_us <n>
                          (committed marks fire on this node's local
                          executed-transaction count)
  --data-dir <dir>        root directory for durable state; the replica
                          writes <dir>/replica-<id>/ (WAL + snapshots) and
                          recovers from it on restart, printing a RECOVER
                          line. Without it the replica is memory-only.
  --fsync <policy>        always | group (default) | never — when WAL
                          appends reach the disk platter
  --group-commit-window-us <n>
                          fsync coalescing window for --fsync group
                          (default 1000)

client options:
  --client-id <n>         which client identity to use (default 0)
  --txns <n>              total transactions to submit (default 100)
  --burst <n>             transactions per request (default: batch size)
  --wait-secs <n>         per-burst completion deadline (default 60)

swarm options:
  --txns-per-client <n>   transactions each swarm client submits (default 2)
  --shards <n>            threads multiplexing the sessions (default 8)
  --first-client <n>      first client id of this process's range (default 0)
  --mem                   run against an in-process in-memory fabric instead
                          of the TCP cluster (reference run; prints FINAL
                          digest lines for every replica)
  --wait-secs <n>         overall swarm deadline (default 60)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        role: Role::Client,
        peers: PeerMap::new(),
        config_text: None,
        protocol: None,
        crypto: None,
        batch_size: None,
        client_keys: None,
        seed: None,
        table_size: None,
        event_loops: None,
        consensus_instances: None,
        exit_after_txns: None,
        report_every_ms: 1_000,
        run_secs: 600,
        linger_ms: 2_000,
        fault_plan: None,
        data_dir: None,
        fsync: None,
        group_commit_window_us: None,
        client_id: 0,
        txns: 100,
        burst: None,
        wait_secs: 60,
        txns_per_client: 2,
        shards: 8,
        first_client: 0,
        mem: false,
    };
    let mut role = None;
    let mut it = std::env::args().skip(1);
    let missing = |flag: &str| -> ! {
        eprintln!("rdb-node: {flag} needs a value");
        std::process::exit(2);
    };
    let bad = |flag: &str, v: &str| -> ! {
        eprintln!("rdb-node: invalid value '{v}' for {flag}");
        std::process::exit(2);
    };
    while let Some(flag) = it.next() {
        macro_rules! value {
            () => {
                match it.next() {
                    Some(v) => v,
                    None => missing(&flag),
                }
            };
        }
        macro_rules! parsed {
            () => {{
                let v = value!();
                match v.parse() {
                    Ok(x) => x,
                    Err(_) => bad(&flag, &v),
                }
            }};
        }
        match flag.as_str() {
            "--replica" => role = Some(Role::Replica(ReplicaId(parsed!()))),
            "--client" => role = Some(Role::Client),
            "--swarm" => role = Some(Role::Swarm(parsed!())),
            "--peers" => {
                let v = value!();
                let parsed = if v.contains('=') {
                    PeerMap::parse_flag(&v)
                } else {
                    match std::fs::read_to_string(&v) {
                        Ok(text) => {
                            let p = PeerMap::parse_toml(&text);
                            args.config_text = Some(text);
                            p
                        }
                        Err(e) => {
                            eprintln!("rdb-node: cannot read {v}: {e}");
                            std::process::exit(2);
                        }
                    }
                };
                match parsed {
                    Ok(p) => args.peers = p,
                    Err(e) => {
                        eprintln!("rdb-node: {e}");
                        std::process::exit(2);
                    }
                }
            }
            "--protocol" => {
                let v = value!();
                args.protocol = Some(match v.as_str() {
                    "pbft" => ProtocolKind::Pbft,
                    "zyzzyva" => ProtocolKind::Zyzzyva,
                    _ => bad(&flag, &v),
                });
            }
            "--crypto" => {
                let v = value!();
                args.crypto = Some(match v.as_str() {
                    "cmac" => CryptoScheme::CmacEd25519,
                    "ed25519" => CryptoScheme::Ed25519,
                    "rsa" => CryptoScheme::Rsa,
                    "nocrypto" => CryptoScheme::NoCrypto,
                    _ => bad(&flag, &v),
                });
            }
            "--batch-size" => args.batch_size = Some(parsed!()),
            "--client-keys" => args.client_keys = Some(parsed!()),
            "--seed" => args.seed = Some(parsed!()),
            "--table-size" => args.table_size = Some(parsed!()),
            "--event-loops" => args.event_loops = Some(parsed!()),
            "--consensus-instances" => args.consensus_instances = Some(parsed!()),
            "--exit-after-txns" => args.exit_after_txns = Some(parsed!()),
            "--report-every-ms" => args.report_every_ms = parsed!(),
            "--run-secs" => args.run_secs = parsed!(),
            "--linger-ms" => args.linger_ms = parsed!(),
            "--fault-plan" => args.fault_plan = Some(value!()),
            "--data-dir" => args.data_dir = Some(value!()),
            "--fsync" => {
                let v = value!();
                args.fsync = Some(match v.as_str() {
                    "always" => FsyncMode::Always,
                    "group" => FsyncMode::Group,
                    "never" => FsyncMode::Never,
                    _ => bad(&flag, &v),
                });
            }
            "--group-commit-window-us" => args.group_commit_window_us = Some(parsed!()),
            "--client-id" => args.client_id = parsed!(),
            "--txns" => args.txns = parsed!(),
            "--burst" => args.burst = Some(parsed!()),
            "--wait-secs" => args.wait_secs = parsed!(),
            "--txns-per-client" => args.txns_per_client = parsed!(),
            "--shards" => args.shards = parsed!(),
            "--first-client" => args.first_client = parsed!(),
            "--mem" => args.mem = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("rdb-node: unknown flag '{other}'");
                usage();
            }
        }
    }
    match role {
        Some(r) => args.role = r,
        None => usage(),
    }
    args
}

/// Layers the unified options: constructor defaults, then the config
/// file's `[node]` section, then explicit flag overrides — one validate
/// at the end.
fn node_options(args: &Args) -> NodeOptions {
    let fail = |e: rdb_common::CommonError| -> ! {
        eprintln!("rdb-node: {e}");
        std::process::exit(2);
    };
    let mut node = match NodeOptions::new(args.peers.clone()) {
        Ok(n) => n,
        Err(e) => fail(e),
    };
    // The binary's historical default batch size (smoke-test scale).
    node.system.batch_size = 20;
    if let Some(text) = &args.config_text {
        if let Err(e) = node.apply_toml(text) {
            fail(e);
        }
    }
    if let Some(p) = args.protocol {
        node.system.protocol = p;
    }
    if let Some(c) = args.crypto {
        node.system.crypto = c;
    }
    if let Some(b) = args.batch_size {
        node.system.batch_size = b;
    }
    if let Some(k) = args.client_keys {
        node.client_keys = k;
        node.system.num_clients = k;
    }
    if let Some(s) = args.seed {
        node.seed = s;
    }
    if let Some(t) = args.table_size {
        node.system.table_size = t;
    }
    if let Some(l) = args.event_loops {
        node.net.event_loops = l;
    }
    if let Some(k) = args.consensus_instances {
        node.system.consensus_instances = k;
    }
    if let Some(dir) = &args.data_dir {
        node.system.durability.data_dir = Some(dir.clone());
    }
    if let Some(f) = args.fsync {
        node.system.durability.fsync = f;
    }
    if let Some(w) = args.group_commit_window_us {
        node.system.durability.group_commit_window_us = w;
    }
    if let Err(e) = node.validate() {
        fail(e);
    }
    node
}

/// Fires a fault plan against this node's transport: a 10 ms ticker
/// applies each event once its mark passes (committed marks use the local
/// executed-transaction count) and logs a `FAULT` line per firing.
fn spawn_fault_schedule(plan: FaultPlan, node: &resilientdb::ReplicaNode, id: ReplicaId) {
    let net = node.network().clone();
    let shared = std::sync::Arc::clone(node.shared());
    net.faults().set_seed(plan.seed);
    std::thread::spawn(move || {
        let started = Instant::now();
        let mut pending = plan.events;
        while !pending.is_empty() {
            let executed = shared.executor.executed_txns();
            pending.retain(|event| {
                let due = match event.at {
                    Mark::Committed(at) => executed >= at,
                    Mark::Elapsed(at) => started.elapsed() >= at,
                };
                if due {
                    event.action.apply_to_controller(net.faults());
                    println!(
                        "FAULT replica={} ms={} action={}",
                        id.0,
                        started.elapsed().as_millis(),
                        event.action.describe()
                    );
                }
                !due
            });
            std::thread::sleep(Duration::from_millis(10));
        }
    });
}

fn run_replica(args: &Args, id: ReplicaId) -> ExitCode {
    let node_cfg = node_options(args);
    let plan = match &args.fault_plan {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("rdb-node: cannot read {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match FaultPlan::parse(&text) {
                Ok(p) => Some(p),
                Err(e) => {
                    eprintln!("rdb-node: {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let node = match start_replica(&node_cfg, id) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("rdb-node: cannot start replica {id}: {e}");
            return ExitCode::from(1);
        }
    };
    if let Some(plan) = plan {
        spawn_fault_schedule(plan, &node, id);
    }
    if let Some(report) = node.shared().recovery_report() {
        println!(
            "RECOVER replica={} source={} snapshot_seq={} replayed_batches={} replayed_txns={}",
            id.0,
            report.source.name(),
            report.snapshot_seq.0,
            report.replayed_batches,
            report.replayed_txns,
        );
    }
    println!(
        "READY replica={} listen={}",
        id.0,
        node_cfg.peers.get(id).expect("own peer entry")
    );
    let started = Instant::now();
    let report_every = Duration::from_millis(args.report_every_ms.max(10));
    let deadline = started + Duration::from_secs(args.run_secs);
    loop {
        std::thread::sleep(report_every);
        let executed = node.shared().executor.executed_txns();
        let digest = node.shared().store.state_digest();
        println!("STATE replica={} executed={executed} digest={digest}", id.0);
        if let Some(target) = args.exit_after_txns {
            if executed >= target {
                // Snapshot-stable read: the executed counter only advances
                // after the store writes land, but execution may still be
                // in flight past the target (the client is free to submit
                // more than --exit-after-txns). Pair the digest with a
                // count that is identical before and after reading it, so
                // FINAL lines are bit-comparable across replicas at equal
                // counts.
                let mut attempts = 0;
                let (executed, digest) = loop {
                    let before = node.shared().executor.executed_txns();
                    let digest = node.shared().store.state_digest();
                    attempts += 1;
                    if node.shared().executor.executed_txns() == before || attempts > 250 {
                        break (before, digest);
                    }
                    std::thread::sleep(Duration::from_millis(20));
                };
                println!("FINAL replica={} executed={executed} digest={digest}", id.0);
                // Let queued consensus traffic drain so slower replicas
                // can still reach their own target.
                std::thread::sleep(Duration::from_millis(args.linger_ms));
                node.shutdown();
                return ExitCode::SUCCESS;
            }
        }
        if Instant::now() > deadline {
            eprintln!("rdb-node: replica {} hit --run-secs limit", id.0);
            node.shutdown();
            return ExitCode::from(3);
        }
    }
}

fn run_client(args: &Args) -> ExitCode {
    let node_cfg = node_options(args);
    let (mut session, net) = match connect_client(&node_cfg, ClientId(args.client_id)) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("rdb-node: cannot connect client: {e}");
            return ExitCode::from(1);
        }
    };
    let burst = args.burst.unwrap_or(node_cfg.system.batch_size).max(1) as u64;
    let wait = Duration::from_secs(args.wait_secs);
    let table = node_cfg.system.table_size;
    let mut done: u64 = 0;
    let mut submitted: u64 = 0;
    while submitted < args.txns {
        let count = burst.min(args.txns - submitted);
        let txns: Vec<_> = (0..count)
            .map(|i| {
                let key = (submitted + i) % table;
                session.write_txn(key, (submitted + i).to_le_bytes().to_vec())
            })
            .collect();
        submitted += count;
        done += session.submit_and_wait(txns, wait) as u64;
    }
    println!("CLIENT done={done} submitted={submitted}");
    net.shutdown();
    if done == args.txns {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rdb-node: client completed {done}/{} transactions",
            args.txns
        );
        ExitCode::from(1)
    }
}

fn print_swarm(report: &SwarmReport) {
    println!(
        "SWARM clients={} submitted={} committed={} elapsed_ms={} tps={:.1} p50_us={} p95_us={} p99_us={}",
        report.clients,
        report.submitted,
        report.committed,
        report.elapsed.as_millis(),
        report.tps(),
        report.p50_us,
        report.p95_us,
        report.p99_us,
    );
}

fn run_swarm_mode(args: &Args, clients: usize) -> ExitCode {
    let node_cfg = node_options(args);
    let cfg = SwarmConfig {
        clients,
        txns_per_client: args.txns_per_client,
        burst: args.burst.unwrap_or(args.txns_per_client.max(1) as usize),
        shards: args.shards,
        first_client: args.first_client,
        deadline: Duration::from_secs(args.wait_secs),
    };
    let total = clients as u64 * args.txns_per_client;
    // The swarm needs a key per client id and a unique table slot per
    // transaction (digest determinism). These are cluster-wide agreements,
    // so they must be raised explicitly — in the [node] section or flags —
    // rather than silently bumped on this process alone.
    let top_id = args.first_client + clients as u64;
    if (node_cfg.client_keys as u64) < top_id {
        eprintln!(
            "rdb-node: swarm needs client_keys >= {top_id} (have {}); set client_keys \
             in the [node] section or --client-keys on every process",
            node_cfg.client_keys
        );
        return ExitCode::from(2);
    }
    let keyspace = top_id * args.txns_per_client;
    if node_cfg.system.table_size < keyspace {
        eprintln!(
            "rdb-node: swarm needs table_size >= {keyspace} (have {}); set table_size \
             in the [node] section or --table-size on every process",
            node_cfg.system.table_size
        );
        return ExitCode::from(2);
    }

    if args.mem {
        // Reference run: the same swarm shape against an in-process
        // in-memory fabric, printing FINAL digest lines so a TCP run can
        // be digest-compared against it.
        let db = match SystemBuilder::from_options(
            node_cfg.transport(rdb_common::TransportMode::InMemory),
        )
        .build()
        {
            Ok(db) => db,
            Err(e) => {
                eprintln!("rdb-node: cannot build in-memory fabric: {e}");
                return ExitCode::from(1);
            }
        };
        let report = db.run_swarm(&cfg);
        print_swarm(&report);
        // Let every replica finish executing before reading digests.
        let deadline = Instant::now() + Duration::from_secs(args.wait_secs);
        let n = db.replica_count();
        loop {
            let counts: Vec<u64> = (0..n as u32)
                .map(|i| db.executed_txns(ReplicaId(i)))
                .collect();
            if counts.iter().all(|&c| c >= total) || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        for (i, digest) in db.state_digests().iter().enumerate() {
            let executed = db.executed_txns(ReplicaId(i as u32));
            println!("FINAL replica={i} executed={executed} digest={digest}");
        }
        db.shutdown();
        return if report.committed == total {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "rdb-node: swarm committed {}/{total} transactions",
                report.committed
            );
            ExitCode::from(1)
        };
    }

    let net = match swarm_net(&node_cfg, ReplicaId(0)) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("rdb-node: cannot start swarm transport: {e}");
            return ExitCode::from(1);
        }
    };
    let registry = resilientdb::registry_for(&node_cfg);
    let report = run_swarm(&net, &registry, &node_cfg.system, &cfg);
    print_swarm(&report);
    net.shutdown();
    if report.committed == total {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "rdb-node: swarm committed {}/{total} transactions",
            report.committed
        );
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    match args.role {
        Role::Replica(id) => run_replica(&args, id),
        Role::Client => run_client(&args),
        Role::Swarm(n) => run_swarm_mode(&args, n),
    }
}
