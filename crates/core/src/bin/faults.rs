//! `faults` — runs the deterministic failure-scenario matrix and emits
//! `BENCH_faults.json`.
//!
//! Every catalog scenario (see `resilientdb::scenario`) runs over the
//! full protocol × transport matrix — PBFT and Zyzzyva, in-memory
//! switchboard and TCP loopback reactor — against a live 4-replica
//! deployment under client load. Each run records liveness, state-digest
//! agreement, final views, retransmission dedup counts, and
//! committed-transactions-per-second buckets around the fault events
//! (the degradation profile of the paper's Figure 17).
//!
//! ```text
//! faults [--scenario <name>] [--protocol pbft|zyzzyva|both]
//!        [--transport memory|tcp|both] [--out BENCH_faults.json]
//! ```
//!
//! Exit code 1 if any run missed liveness or digest agreement, so CI can
//! gate on the binary directly.

use rdb_common::{ProtocolKind, TransportMode};
use resilientdb::scenario::{run_scenario, scenario_by_name, scenarios, Scenario, ScenarioResult};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: faults [options]

options:
  --scenario <names>   run a comma-separated subset of the catalog
                       (default: all)
  --protocol <p>       pbft | zyzzyva | both (default both)
  --transport <t>      memory | tcp | both (default both)
  --out <file>         output path (default BENCH_faults.json)
  --list               print the scenario catalog and exit"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut wanted: Option<String> = None;
    let mut protocols = vec![ProtocolKind::Pbft, ProtocolKind::Zyzzyva];
    let mut transports = vec![TransportMode::InMemory, TransportMode::Tcp];
    let mut out = String::from("BENCH_faults.json");
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || match it.next() {
            Some(v) => v,
            None => {
                eprintln!("faults: {flag} needs a value");
                std::process::exit(2);
            }
        };
        match flag.as_str() {
            "--scenario" => wanted = Some(value()),
            "--protocol" => {
                protocols = match value().as_str() {
                    "pbft" => vec![ProtocolKind::Pbft],
                    "zyzzyva" => vec![ProtocolKind::Zyzzyva],
                    "both" => vec![ProtocolKind::Pbft, ProtocolKind::Zyzzyva],
                    other => {
                        eprintln!("faults: unknown protocol '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            "--transport" => {
                transports = match value().as_str() {
                    "memory" => vec![TransportMode::InMemory],
                    "tcp" => vec![TransportMode::Tcp],
                    "both" => vec![TransportMode::InMemory, TransportMode::Tcp],
                    other => {
                        eprintln!("faults: unknown transport '{other}'");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out = value(),
            "--list" => {
                for s in scenarios() {
                    println!(
                        "{}{}",
                        s.name,
                        if s.pbft_only { "  (pbft only)" } else { "" }
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("faults: unknown flag '{other}'");
                usage();
            }
        }
    }

    let catalog: Vec<Scenario> = match &wanted {
        Some(names) => {
            let mut subset = Vec::new();
            for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                match scenario_by_name(name) {
                    Some(s) => subset.push(s),
                    None => {
                        eprintln!("faults: unknown scenario '{name}' (try --list)");
                        return ExitCode::from(2);
                    }
                }
            }
            subset
        }
        None => scenarios(),
    };

    let mut results: Vec<ScenarioResult> = Vec::new();
    let mut failures = 0usize;
    for scenario in &catalog {
        for &protocol in &protocols {
            if scenario.pbft_only && protocol != ProtocolKind::Pbft {
                continue;
            }
            for &transport in &transports {
                let r = run_scenario(scenario, protocol, transport);
                let ok = r.liveness && r.digests_agree && r.instances_isolated;
                println!(
                    "FAULTS scenario={} protocol={} transport={} completed={}/{} \
                     elapsed_ms={} tps={:.1} views={:?} deduped={} liveness={} agree={} {}",
                    r.scenario,
                    r.protocol,
                    r.transport,
                    r.completed,
                    r.total_txns,
                    r.elapsed_ms,
                    r.mean_tps(),
                    r.final_views,
                    r.deduped,
                    r.liveness,
                    r.digests_agree,
                    if ok { "OK" } else { "FAIL" },
                );
                if !ok {
                    failures += 1;
                }
                results.push(r);
            }
        }
    }

    let runs: Vec<String> = results
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"fault_matrix\",\n  \"replicas\": 4,\n  \"f\": 1,\n  \
         \"scenarios\": {},\n  \"runs\": [\n{}\n  ]\n}}\n",
        catalog.len(),
        runs.join(",\n")
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("faults: cannot write {out}: {e}");
        return ExitCode::from(1);
    }
    println!("WROTE {out} runs={} failures={failures}", results.len());
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
