//! Closed-loop measurement driver for the threaded runtime.
//!
//! Runs a population of client threads against a live deployment for a
//! fixed window and reports throughput/latency — the real-execution
//! counterpart of the simulator, used by the e2e benches and examples.

use crate::fabric::ResilientDb;
use rdb_common::Operation;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Result of a measurement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Completed transactions per second.
    pub throughput_tps: f64,
    /// Mean request latency in milliseconds.
    pub avg_latency_ms: f64,
    /// Total transactions completed.
    pub completed: u64,
}

/// Runs `clients` closed-loop client threads for `window`, each submitting
/// bursts of `burst` write transactions and waiting for completion.
///
/// The deployment must have at least `clients` client keys.
pub fn run_closed_loop(
    db: &ResilientDb,
    clients: u64,
    burst: usize,
    window: Duration,
) -> Measurement {
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let latency_us = Arc::new(AtomicU64::new(0));
    let rounds = Arc::new(AtomicU64::new(0));
    let table = db.config().table_size;

    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let mut session = db.client(c);
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            let latency_us = Arc::clone(&latency_us);
            let rounds = Arc::clone(&rounds);
            std::thread::spawn(move || {
                let mut k = c;
                while !stop.load(Ordering::Relaxed) {
                    let txns: Vec<_> = (0..burst)
                        .map(|i| {
                            k = (k * 31 + i as u64 + 7) % table;
                            session.txn(vec![Operation::Write {
                                key: k,
                                value: vec![(k & 0xff) as u8; 8],
                            }])
                        })
                        .collect();
                    let start = Instant::now();
                    let done = session.submit_and_wait(txns, Duration::from_secs(10));
                    completed.fetch_add(done as u64, Ordering::Relaxed);
                    latency_us.fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
                    rounds.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }

    let total = completed.load(Ordering::Relaxed);
    let n_rounds = rounds.load(Ordering::Relaxed).max(1);
    Measurement {
        throughput_tps: total as f64 / window.as_secs_f64(),
        avg_latency_ms: latency_us.load(Ordering::Relaxed) as f64 / n_rounds as f64 / 1_000.0,
        completed: total,
    }
}
