//! The loopback cluster runner: four `rdb-node` replica *processes* plus
//! an in-process client session, over real TCP sockets. This is the
//! in-tree twin of the `tcp-cluster-smoke` CI job (which additionally
//! runs the client as its own process).

use rdb_common::{ClientId, PeerMap, ReplicaId};
use resilientdb::{connect_client, NodeOptions};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TXNS: u64 = 60;
const BATCH: usize = 10;

fn wait_secs() -> u64 {
    std::env::var("RDB_TEST_WAIT_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

/// Kills leftover children if the test panics.
struct ClusterGuard(Vec<Child>);

impl Drop for ClusterGuard {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// Reserves `n` distinct loopback ports by binding and releasing them.
fn reserve_ports(n: usize) -> PeerMap {
    let mut peers = PeerMap::new();
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port"))
        .collect();
    for (i, l) in listeners.iter().enumerate() {
        peers.insert(ReplicaId(i as u32), l.local_addr().unwrap());
    }
    peers
}

/// Spawns 4 replica processes on freshly reserved ports. Returns the
/// peer map and children, or `None` if any replica died immediately
/// (almost certainly a lost bind race: the reserved ports are released
/// before the children re-bind them, and another test or process can
/// snatch one in between).
fn try_spawn_cluster(bin: &str) -> Option<(PeerMap, ClusterGuard)> {
    let peers = reserve_ports(4);
    let peer_flag = peers.to_flag();
    let children: Vec<Child> = (0..4)
        .map(|i| {
            Command::new(bin)
                .args([
                    "--replica",
                    &i.to_string(),
                    "--peers",
                    &peer_flag,
                    "--batch-size",
                    &BATCH.to_string(),
                    "--exit-after-txns",
                    &TXNS.to_string(),
                    "--report-every-ms",
                    "200",
                    "--run-secs",
                    &wait_secs().to_string(),
                ])
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("spawn rdb-node replica")
        })
        .collect();
    let mut guard = ClusterGuard(children);
    // A replica that lost the port race exits within milliseconds; give
    // the children a beat and check they are all still up.
    std::thread::sleep(Duration::from_millis(500));
    let any_dead = guard
        .0
        .iter_mut()
        .any(|c| c.try_wait().expect("try_wait").is_some());
    if any_dead {
        return None; // guard kills the survivors on drop
    }
    Some((peers, guard))
}

#[test]
fn four_replica_process_cluster_commits_and_converges() {
    let bin = env!("CARGO_BIN_EXE_rdb-node");
    let deadline = Instant::now() + Duration::from_secs(wait_secs());
    let mut attempt = 0;
    let (peers, mut guard) = loop {
        attempt += 1;
        match try_spawn_cluster(bin) {
            Some(cluster) => break cluster,
            None if attempt < 3 => eprintln!("port race on attempt {attempt}, retrying"),
            None => panic!("replicas kept dying at startup after {attempt} attempts"),
        }
    };

    // Drive the workload from this process through the same fabric entry
    // point the client binary uses.
    let node_cfg = {
        let mut cfg = NodeOptions::new(peers).expect("valid peer map");
        cfg.system.batch_size = BATCH;
        cfg
    };
    let (mut session, client_net) =
        connect_client(&node_cfg, ClientId(0)).expect("client transport");
    let mut done = 0u64;
    let mut submitted = 0u64;
    while submitted < TXNS {
        let burst = (BATCH as u64).min(TXNS - submitted);
        let txns: Vec<_> = (0..burst)
            .map(|i| session.write_txn((submitted + i) % 1024, vec![1, 2, 3]))
            .collect();
        submitted += burst;
        done += session.submit_and_wait(txns, Duration::from_secs(wait_secs())) as u64;
    }
    assert_eq!(done, TXNS, "client must complete every transaction");

    // Every replica process must exit 0 with a FINAL line, all digests
    // bit-identical.
    let mut finals = Vec::new();
    for (i, mut child) in guard.0.drain(..).enumerate() {
        loop {
            match child.try_wait().expect("try_wait") {
                Some(_) => break,
                None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(100)),
                None => {
                    let _ = child.kill();
                    panic!("replica {i} did not reach {TXNS} executed txns in time");
                }
            }
        }
        let out = child.wait_with_output().expect("collect output");
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        assert!(
            out.status.success(),
            "replica {i} exited {:?}\nstdout:\n{stdout}\nstderr:\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        let final_line = stdout
            .lines()
            .find(|l| l.starts_with("FINAL "))
            .unwrap_or_else(|| panic!("replica {i} printed no FINAL line:\n{stdout}"))
            .to_string();
        assert!(
            final_line.contains(&format!("executed={TXNS}")),
            "replica {i}: {final_line}"
        );
        let digest = final_line
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("digest="))
            .unwrap_or_else(|| panic!("no digest in: {final_line}"))
            .to_string();
        finals.push(digest);
    }
    assert!(
        finals.windows(2).all(|w| w[0] == w[1]),
        "state digests diverged across replica processes: {finals:?}"
    );
    client_net.shutdown();
}
