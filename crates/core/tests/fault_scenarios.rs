//! The failure-scenario matrix, fast subset: the scenarios that gate the
//! tier-1 suite. The full 10-scenario × 2-protocol × 2-transport sweep
//! lives in the `faults` binary (`cargo run --release --bin faults`);
//! here we pin the properties a regression would silently break:
//!
//! - crash the primary mid-batch-stream on BOTH transport backends and
//!   assert the new view commits every in-flight request exactly once;
//! - crash a backup and assert throughput degrades but liveness holds;
//! - equivocating primary (PBFT): honest replicas vote the liar out and
//!   converge on a single history.

use rdb_common::{ProtocolKind, TransportMode};
use resilientdb::scenario::{run_scenario, scenario_by_name};

fn assert_scenario(name: &str, protocol: ProtocolKind, transport: TransportMode) {
    let scenario = scenario_by_name(name).expect("catalog scenario");
    let result = run_scenario(&scenario, protocol, transport);
    assert!(
        result.liveness,
        "{name}/{}/{}: only {}/{} txns completed in {}ms (views {:?}, events {:?})",
        result.protocol,
        result.transport,
        result.completed,
        result.total_txns,
        result.elapsed_ms,
        result.final_views,
        result.events,
    );
    assert!(
        result.digests_agree,
        "{name}/{}/{}: only {} replicas agree on the state digest (views {:?})",
        result.protocol, result.transport, result.agreeing, result.final_views,
    );
}

/// Satellite regression: primary crashes while client batches are in
/// flight; the view change must elect a new primary, re-issue the
/// in-flight batches, and commit every transaction exactly once — the
/// executor's dedup counters prove retransmissions were suppressed, and
/// a surviving replica must have moved past view 0.
fn primary_crash_exactly_once(protocol: ProtocolKind, transport: TransportMode) {
    let scenario = scenario_by_name("primary_crash").expect("catalog scenario");
    let result = run_scenario(&scenario, protocol, transport);
    assert!(
        result.liveness,
        "{}/{}: only {}/{} txns completed in {}ms (views {:?})",
        result.protocol,
        result.transport,
        result.completed,
        result.total_txns,
        result.elapsed_ms,
        result.final_views,
    );
    assert!(result.digests_agree, "survivors diverged: {result:?}");
    // Exactly-once: every completion is a distinct transaction (liveness
    // already checked completed == total), and the surviving replicas
    // moved to a later view to get there.
    assert!(
        result.final_views.iter().any(|v| *v > 0),
        "no view change happened: views {:?}",
        result.final_views,
    );
    assert_eq!(
        result.completed, result.total_txns,
        "completions must match submissions exactly"
    );
}

#[test]
fn primary_crash_pbft_memory() {
    primary_crash_exactly_once(ProtocolKind::Pbft, TransportMode::InMemory);
}

#[test]
fn primary_crash_pbft_tcp() {
    primary_crash_exactly_once(ProtocolKind::Pbft, TransportMode::Tcp);
}

#[test]
fn primary_crash_zyzzyva_memory() {
    primary_crash_exactly_once(ProtocolKind::Zyzzyva, TransportMode::InMemory);
}

#[test]
fn primary_crash_zyzzyva_tcp() {
    primary_crash_exactly_once(ProtocolKind::Zyzzyva, TransportMode::Tcp);
}

#[test]
fn backup_crash_pbft_memory() {
    assert_scenario("backup_crash", ProtocolKind::Pbft, TransportMode::InMemory);
}

#[test]
fn backup_crash_zyzzyva_memory() {
    // Zyzzyva's fast path dies with one crashed backup: every request
    // must fall back to the client-driven commit-certificate path.
    assert_scenario(
        "backup_crash",
        ProtocolKind::Zyzzyva,
        TransportMode::InMemory,
    );
}

#[test]
fn lossy_network_pbft_memory() {
    assert_scenario("lossy_network", ProtocolKind::Pbft, TransportMode::InMemory);
}

#[test]
fn equivocating_primary_is_voted_out() {
    let scenario = scenario_by_name("equivocating_primary").expect("catalog scenario");
    let result = run_scenario(&scenario, ProtocolKind::Pbft, TransportMode::InMemory);
    assert!(
        result.liveness,
        "equivocation stalled the system: {result:?}"
    );
    assert!(result.digests_agree, "honest replicas diverged: {result:?}");
    // The liar held view 0; committing anything required electing someone
    // honest. Replica 0 itself may report any view — check the honest ones.
    assert!(
        result.final_views[1..].iter().all(|v| *v > 0),
        "honest replicas never left the equivocator's view: {:?}",
        result.final_views,
    );
}

#[test]
fn restart_rejoin_converges_with_survivors() {
    let scenario = scenario_by_name("restart_rejoin").expect("catalog scenario");
    let result = run_scenario(&scenario, ProtocolKind::Pbft, TransportMode::InMemory);
    assert!(result.liveness, "{result:?}");
    // `digests_agree` now demands the crashed-then-recovered replica in
    // the agreeing set too: it must have fetched the committed batches it
    // slept through, so ALL four replicas share one digest.
    assert!(result.digests_agree, "{result:?}");
    assert_eq!(result.agreeing, 4, "rejoiner did not converge: {result:?}");
}

/// The snapshot path: checkpointing prunes the log under the rejoiner's
/// holes, so per-batch fetch alone cannot repair it — the recovered
/// replica must install a verified checkpoint snapshot and fetch only the
/// tail, then land on the survivors' exact digest.
#[test]
fn rejoin_via_state_transfer_pbft_memory() {
    let scenario = scenario_by_name("rejoin_via_state_transfer").expect("catalog scenario");
    let result = run_scenario(&scenario, ProtocolKind::Pbft, TransportMode::InMemory);
    assert!(result.liveness, "{result:?}");
    assert!(result.digests_agree, "{result:?}");
    assert_eq!(result.agreeing, 4, "rejoiner did not converge: {result:?}");
}

#[test]
fn rejoin_via_state_transfer_zyzzyva_memory() {
    let scenario = scenario_by_name("rejoin_via_state_transfer").expect("catalog scenario");
    let result = run_scenario(&scenario, ProtocolKind::Zyzzyva, TransportMode::InMemory);
    assert!(result.liveness, "{result:?}");
    assert!(result.digests_agree, "{result:?}");
    assert_eq!(result.agreeing, 4, "rejoiner did not converge: {result:?}");
}

/// Chaos is no longer PBFT-only: Zyzzyva's mis-speculated suffixes are
/// rolled back at the view change and re-executed against the new
/// primary's merged history, so even the loss + crash + partition mix
/// must end with every replica (including the recovered ex-primary) on
/// one digest.
#[test]
fn chaos_zyzzyva_memory() {
    assert_scenario("chaos", ProtocolKind::Zyzzyva, TransportMode::InMemory);
}

/// A crashed backup must show up as degraded throughput, not as a gap in
/// the ledger: per-second buckets keep recording commits after the crash.
#[test]
fn backup_crash_records_degradation_buckets() {
    let scenario = scenario_by_name("backup_crash").expect("catalog scenario");
    let result = run_scenario(&scenario, ProtocolKind::Pbft, TransportMode::InMemory);
    assert!(result.liveness, "{result:?}");
    assert!(
        !result.events.is_empty(),
        "the crash event never fired: {result:?}"
    );
    assert!(
        result.buckets.iter().sum::<u64>() == result.completed,
        "buckets must account for every completion: {result:?}"
    );
}
