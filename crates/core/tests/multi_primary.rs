//! Multi-primary ordering, end to end: k parallel PBFT instances over one
//! replica set must produce exactly the state a single-primary deployment
//! reaches on the same workload — the merge into one global execute
//! schedule is deterministic — while spreading proposals across k leaders.

use resilientdb::SystemBuilder;
use std::time::Duration;

/// Runs `clients` sessions, each writing `txns_per_client` unique keys,
/// over a fresh k-instance deployment; returns the replicas' state
/// digests once everything commits.
fn run_workload(k: usize, clients: u64, txns_per_client: u64) -> Vec<rdb_common::Digest> {
    let db = SystemBuilder::new(4)
        .batch_size(4)
        .consensus_instances(k)
        .client_keys(clients as usize)
        .table_size(4096)
        .seed(77)
        .build()
        .expect("valid config");
    let mut sessions: Vec<_> = (0..clients).map(|c| db.client(c)).collect();
    for s in &mut sessions {
        // Unique key per (client, index): the committed write-set — and so
        // the state digest — is independent of commit interleaving.
        let base = s.id().0 * txns_per_client;
        let txns: Vec<_> = (0..txns_per_client)
            .map(|i| s.write_txn(base + i, (base + i).to_le_bytes().to_vec()))
            .collect();
        s.submit(txns);
    }
    for s in &mut sessions {
        let done = s.await_all(Duration::from_secs(30));
        assert_eq!(
            done as u64,
            txns_per_client,
            "client {:?} must complete its requests (k={k})",
            s.id()
        );
    }
    // Let the tail of the schedule execute on every replica.
    std::thread::sleep(Duration::from_millis(400));
    let digests = db.state_digests();
    db.verify_chains().expect("chains verify");
    db.shutdown();
    digests
}

#[test]
fn k2_digests_match_k1() {
    let k1 = run_workload(1, 4, 12);
    let k2 = run_workload(2, 4, 12);
    assert!(k1.windows(2).all(|w| w[0] == w[1]), "k=1 replicas agree");
    assert!(k2.windows(2).all(|w| w[0] == w[1]), "k=2 replicas agree");
    assert_eq!(
        k1[0], k2[0],
        "two-instance schedule must execute to the single-primary state"
    );
}

#[test]
fn k4_digests_match_k1() {
    let k1 = run_workload(1, 4, 8);
    let k4 = run_workload(4, 4, 8);
    assert!(k4.windows(2).all(|w| w[0] == w[1]), "k=4 replicas agree");
    assert_eq!(
        k1[0], k4[0],
        "four-instance schedule matches single-primary"
    );
}

#[test]
fn crashed_instance_primary_stalls_only_its_instance() {
    let mut builder = SystemBuilder::new(4)
        .batch_size(4)
        .consensus_instances(2)
        .client_keys(2)
        .table_size(4096)
        .seed(79);
    builder.config_mut().view_timeout_ms = 300;
    let db = builder.build().expect("valid config");

    // Replica 1 is instance 1's view-0 primary and a plain backup of
    // instance 0. Kill it before any traffic flows.
    db.crash_replica(rdb_common::ReplicaId(1));

    // Client 0 shards to instance 0 (led by the healthy replica 0): its
    // load must complete promptly, with instance 1 dead the whole time.
    let mut c0 = db.client(0);
    let txns: Vec<_> = (0..8u64).map(|i| c0.write_txn(i, vec![7])).collect();
    c0.submit(txns);
    let done = c0.await_all(Duration::from_secs(20));
    assert_eq!(
        done, 8,
        "instance 0 must commit with instance 1's primary dead"
    );
    assert!(
        db.committed_batches_for(rdb_common::ReplicaId(0), 0) > 0,
        "instance 0 committed real work"
    );

    // Client 1 shards to instance 1: initially aimed at the dead replica,
    // its retransmission broadcast surfaces demand, suspicion fires, and
    // the per-instance view change elects replica (1+1) mod 4 = 2. The
    // reply's view stamp re-aims the session at that same instance's new
    // primary.
    let mut c1 = db.client(1);
    let txns: Vec<_> = (0..8u64).map(|i| c1.write_txn(100 + i, vec![9])).collect();
    c1.submit(txns);
    let done = c1.await_all(Duration::from_secs(25));
    assert_eq!(done, 8, "instance 1 must recover via its own view change");

    // Instance 1 view-changed on the survivors; instance 0 never did.
    let v1 = db.instance_views(1);
    for r in [0usize, 2, 3] {
        assert!(
            v1[r] >= 1,
            "replica {r} must have advanced instance 1's view: {v1:?}"
        );
    }
    let v0 = db.instance_views(0);
    for r in [0usize, 2, 3] {
        assert_eq!(v0[r], 0, "instance 0 must be untouched: {v0:?}");
    }
    db.shutdown();
}

#[test]
fn instances_share_proposal_load() {
    let db = SystemBuilder::new(4)
        .batch_size(2)
        .consensus_instances(2)
        .client_keys(4)
        .table_size(4096)
        .seed(78)
        .build()
        .expect("valid config");
    let mut sessions: Vec<_> = (0..4u64).map(|c| db.client(c)).collect();
    for s in &mut sessions {
        let base = s.id().0 * 100;
        let txns: Vec<_> = (0..10u64).map(|i| s.write_txn(base + i, vec![1])).collect();
        s.submit(txns);
    }
    for s in &mut sessions {
        assert_eq!(s.await_all(Duration::from_secs(30)), 10);
    }
    std::thread::sleep(Duration::from_millis(300));
    // Both instances must have committed real work at replica 0: clients
    // 0/2 shard to instance 0 (led by replica 0), clients 1/3 to instance
    // 1 (led by replica 1).
    let i0 = db.committed_batches_for(rdb_common::ReplicaId(0), 0);
    let i1 = db.committed_batches_for(rdb_common::ReplicaId(0), 1);
    assert!(i0 > 0, "instance 0 committed nothing");
    assert!(i1 > 0, "instance 1 committed nothing");
    db.shutdown();
}
