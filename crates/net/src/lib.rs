//! In-memory transport for the threaded ResilientDB runtime.
//!
//! Replicas and clients register with a [`Network`] and obtain an
//! [`Endpoint`] for sending and receiving [`SignedMessage`]s. The network
//! supports per-link latency, byte-accounted delivery statistics, and fault
//! injection (crashes, message drops, partitions) — the substrate for the
//! paper's failure experiments (Figure 17).
//!
//! # Example
//!
//! ```
//! use rdb_net::{Network, NetworkConfig};
//! use rdb_common::messages::{Message, Sender, SignedMessage};
//! use rdb_common::{ReplicaId, SignatureBytes};
//!
//! let net = Network::new(NetworkConfig::default());
//! let a = net.register(Sender::Replica(ReplicaId(0)));
//! let b = net.register(Sender::Replica(ReplicaId(1)));
//! let msg = SignedMessage::new(
//!     Message::ClientRequest { txns: vec![] },
//!     Sender::Replica(ReplicaId(0)),
//!     SignatureBytes::empty(),
//! );
//! a.send(Sender::Replica(ReplicaId(1)), msg.clone()).unwrap();
//! let got = b.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
//! assert_eq!(got.msg(), msg.msg());
//! ```

pub mod fault;
pub mod stats;
pub mod transport;

pub use fault::FaultController;
pub use stats::NetworkStats;
pub use transport::{Endpoint, EndpointSender, Network, NetworkConfig, NetworkError};
