//! Transport fabric for the threaded ResilientDB runtime.
//!
//! Replicas and clients register with a [`Transport`] backend and obtain an
//! [`Endpoint`] for sending and receiving [`SignedMessage`]s
//! (`rdb_common::messages::SignedMessage`). Two backends exist behind the
//! same trait:
//!
//! - [`Network`] — the in-memory switchboard: zero-copy channel hand-off,
//!   optional modeled latency, the default for tests and single-process
//!   deployments.
//! - [`TcpTransport`] — real sockets: length-prefixed frames over the
//!   canonical wire encoding, driven by a nonblocking reactor
//!   ([`reactor`]) whose event-loop pool holds tens of thousands of
//!   connections, with bounded per-link queues, vectored-write frame
//!   coalescing, reconnect-with-backoff, and reply routing for clients
//!   that dial in. The substrate for multi-process clusters (`rdb-node`)
//!   and client swarms.
//!
//! The trait splits into [`MeshTransport`] (replica gossip — droppable)
//! and [`ClientTransport`] (request/reply — reliable), so backends can
//! size the two surfaces independently.
//!
//! Both support byte-accounted delivery statistics ([`NetworkStats`]) and
//! send-side fault injection ([`FaultController`]: crashes, message drops,
//! partitions) — the substrate for the paper's failure experiments
//! (Figure 17).
//!
//! # Example
//!
//! ```
//! use rdb_net::{Network, NetworkConfig};
//! use rdb_common::messages::{Message, Sender, SignedMessage};
//! use rdb_common::{ReplicaId, SignatureBytes};
//!
//! let net = Network::new(NetworkConfig::default());
//! let a = net.register(Sender::Replica(ReplicaId(0)));
//! let b = net.register(Sender::Replica(ReplicaId(1)));
//! let msg = SignedMessage::new(
//!     Message::ClientRequest { txns: vec![] },
//!     Sender::Replica(ReplicaId(0)),
//!     SignatureBytes::empty(),
//! );
//! a.send(Sender::Replica(ReplicaId(1)), msg.clone()).unwrap();
//! let got = b.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
//! assert_eq!(got.msg(), msg.msg());
//! ```

pub mod fault;
pub mod frame;
pub mod memory;
pub mod reactor;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use fault::FaultController;
pub use memory::{Network, NetworkConfig};
pub use stats::NetworkStats;
pub use tcp::{TcpConfig, TcpTransport};
pub use transport::{
    ClientTransport, Endpoint, EndpointSender, MeshTransport, NetHandle, NetworkError, Transport,
};
