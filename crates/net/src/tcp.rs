//! Real TCP transport: the in-memory switchboard's semantics over sockets.
//!
//! One [`TcpTransport`] is one node of a multi-process deployment (it can
//! host several local endpoints, e.g. many client sessions in a client
//! process). Architecture:
//!
//! - **Outbound**: one writer thread per peer with a bounded frame queue.
//!   Replica-destined traffic (consensus gossip) uses a *drop-oldest*
//!   policy on overflow — the protocol tolerates loss and retransmits by
//!   design — while client-destined replies are *never* dropped: the
//!   sender blocks on the queue (backpressure) until space frees up.
//!   Broadcasts serialize the envelope **once** and share the encoded
//!   buffer across every peer's queue.
//! - **Inbound**: an acceptor plus one reader thread per connection.
//!   Frames decode through [`SignedMessage::decode`]'s memo-seeding path,
//!   so the zero-copy envelope (canonical bytes memoized, verified
//!   without re-serialization) survives the socket.
//! - **Routing**: replicas are dialed from the [`PeerMap`]; dialed links
//!   reconnect with exponential backoff, so a restarted replica rejoins
//!   without any coordination. Clients are *not* in the map — a client
//!   dials every replica and announces itself with a HELLO frame, and
//!   replies travel back over the client-initiated connection (learned as
//!   a *reverse link*).
//! - **Faults**: [`FaultController`] is evaluated on the send side, same
//!   as the in-memory backend, so drops and partitions behave identically
//!   over both.

use crate::fault::FaultController;
use crate::frame::{self, Frame, FrameReader};
use crate::stats::NetworkStats;
use crate::transport::{Endpoint, NetHandle, NetworkError, Transport};
use crossbeam::channel::{self, Receiver, Sender as ChanSender};
use parking_lot::{Condvar, Mutex, RwLock};
use rdb_common::codec::Wire;
use rdb_common::messages::{Sender, SignedMessage};
use rdb_common::{PeerMap, ReplicaId};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for a [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Address to accept peer connections on. `None` for client processes,
    /// which only dial out.
    pub listen: Option<SocketAddr>,
    /// Replica id → address map (clients are learned via HELLO frames).
    pub peers: PeerMap,
    /// Outbound frames buffered per peer link before the overflow policy
    /// applies (drop-oldest for replica gossip, blocking for client
    /// replies).
    pub queue_capacity: usize,
    /// Initial reconnect backoff for dialed links.
    pub reconnect_min: Duration,
    /// Backoff ceiling (doubles from `reconnect_min` up to this).
    pub reconnect_max: Duration,
    /// Socket write timeout; a peer stuck longer than this is treated as
    /// disconnected.
    pub write_timeout: Duration,
    /// Granularity at which blocked threads re-check for shutdown.
    pub poll_interval: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            listen: None,
            peers: PeerMap::new(),
            queue_capacity: 4096,
            reconnect_min: Duration::from_millis(10),
            reconnect_max: Duration::from_secs(1),
            write_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(50),
        }
    }
}

impl TcpConfig {
    /// Config for replica `id` of `peers`: listens on its map entry.
    ///
    /// # Panics
    /// Panics if `id` is not in the map.
    pub fn for_replica(id: ReplicaId, peers: PeerMap) -> Self {
        let listen = peers.get(id).expect("replica id missing from peer map");
        TcpConfig {
            listen: Some(listen),
            peers,
            ..TcpConfig::default()
        }
    }

    /// Config for a client process: no listener, dials every replica.
    pub fn for_client(peers: PeerMap) -> Self {
        TcpConfig {
            listen: None,
            peers,
            ..TcpConfig::default()
        }
    }
}

/// Upper bound of the per-destination MSG frame header (tag + `Sender`),
/// used by the send-side oversize guard.
const MSG_HEADER_MAX: usize = 16;

/// One queued outbound frame.
enum OutFrame {
    /// Announce a local endpoint to the peer (routing for replies).
    Hello(Sender),
    /// An envelope for `to`; `payload` is the shared canonical encoding.
    Msg { to: Sender, payload: Arc<Vec<u8>> },
}

enum Popped {
    Frame(OutFrame),
    Empty,
    Done,
}

/// A bounded outbound queue feeding one writer thread.
struct Link {
    state: Mutex<LinkState>,
    ready: Condvar,
    space: Condvar,
    capacity: usize,
}

struct LinkState {
    frames: VecDeque<OutFrame>,
    closed: bool,
}

impl Link {
    fn new(capacity: usize) -> Arc<Link> {
        Arc::new(Link {
            state: Mutex::new(LinkState {
                frames: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// Drop-oldest on overflow: consensus gossip tolerates loss, so a slow
    /// peer sheds its own backlog instead of stalling the pipeline.
    /// Only `Msg` frames are ever shed — a queued HELLO is a routing
    /// announcement, and losing one would permanently strand the reply
    /// path of an endpoint registered after the connection came up.
    fn push_gossip(&self, f: OutFrame, stats: &NetworkStats) {
        let mut s = self.state.lock();
        if s.closed {
            return;
        }
        if s.frames.len() >= self.capacity {
            if let Some(idx) = s
                .frames
                .iter()
                .position(|f| matches!(f, OutFrame::Msg { .. }))
            {
                s.frames.remove(idx);
                stats.record_dropped();
            }
        }
        s.frames.push_back(f);
        self.ready.notify_one();
    }

    /// Blocking on overflow: client replies are never shed — the sending
    /// stage backpressures until the writer drains.
    fn push_reliable(&self, f: OutFrame) {
        let mut s = self.state.lock();
        while !s.closed && s.frames.len() >= self.capacity {
            self.space.wait(&mut s);
        }
        if s.closed {
            return;
        }
        s.frames.push_back(f);
        self.ready.notify_one();
    }

    fn pop_wait(&self, timeout: Duration) -> Popped {
        let mut s = self.state.lock();
        if s.frames.is_empty() && !s.closed {
            self.ready.wait_for(&mut s, timeout);
        }
        match s.frames.pop_front() {
            Some(f) => {
                self.space.notify_one();
                Popped::Frame(f)
            }
            None if s.closed => Popped::Done,
            None => Popped::Empty,
        }
    }

    fn close(&self) {
        let mut s = self.state.lock();
        s.closed = true;
        self.ready.notify_all();
        self.space.notify_all();
    }
}

struct TcpInner {
    cfg: TcpConfig,
    local_addr: Option<SocketAddr>,
    mailboxes: RwLock<HashMap<Sender, ChanSender<SignedMessage>>>,
    /// Endpoints hosted by this transport, announced in HELLOs.
    local_addrs: RwLock<Vec<Sender>>,
    /// Outbound links to replicas in the peer map, created on first use.
    dialed: RwLock<HashMap<u32, Arc<Link>>>,
    /// Links learned from inbound HELLOs (clients, chiefly).
    reverse: RwLock<HashMap<Sender, Arc<Link>>>,
    stats: NetworkStats,
    faults: FaultController,
    shutdown: AtomicBool,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl TcpInner {
    fn deliver(&self, to: Sender, msg: SignedMessage) {
        let kind = msg.kind();
        if let Some(tx) = self.mailboxes.read().get(&to) {
            if tx.send(msg).is_ok() {
                self.stats.record_delivered(kind);
                return;
            }
        }
        self.stats.record_dropped();
    }

    fn spawn(self: &Arc<Self>, name: String, f: impl FnOnce() + Send + 'static) {
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(f)
            .expect("spawn tcp transport thread");
        let mut threads = self.threads.lock();
        // Reap finished readers/writers as we go: a long-lived node serves
        // many short-lived connections, and keeping every dead handle
        // until shutdown would grow this vector without bound.
        threads.retain(|h| !h.is_finished());
        threads.push(handle);
    }

    /// Get-or-create the dialed link (and its writer thread) for a mapped
    /// replica. Read-locked fast path: after the first message to a peer
    /// this is a shared-lock map lookup, so concurrent sender threads do
    /// not serialize on the hot path.
    fn dialed_link(self: &Arc<Self>, id: ReplicaId, addr: SocketAddr) -> Arc<Link> {
        if let Some(link) = self.dialed.read().get(&id.0) {
            return Arc::clone(link);
        }
        let mut dialed = self.dialed.write();
        // Double-check: another sender may have raced the upgrade.
        if let Some(link) = dialed.get(&id.0) {
            return Arc::clone(link);
        }
        let link = Link::new(self.cfg.queue_capacity);
        dialed.insert(id.0, Arc::clone(&link));
        let inner = Arc::clone(self);
        let writer_link = Arc::clone(&link);
        self.spawn(format!("tcp-dial-r{}", id.0), move || {
            dialed_writer(&inner, &writer_link, addr);
        });
        link
    }

    /// The outbound link for `to`, if any route exists.
    fn route_to(self: &Arc<Self>, to: Sender) -> Option<Arc<Link>> {
        if let Sender::Replica(r) = to {
            if let Some(addr) = self.cfg.peers.get(r) {
                return Some(self.dialed_link(r, addr));
            }
        }
        self.reverse.read().get(&to).cloned()
    }

    fn push_out(&self, link: &Link, to: Sender, payload: Arc<Vec<u8>>) {
        let frame = OutFrame::Msg { to, payload };
        if matches!(to, Sender::Client(_)) {
            link.push_reliable(frame);
        } else {
            link.push_gossip(frame, &self.stats);
        }
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Sleeps `dur` in `poll_interval` slices so shutdown stays responsive.
    fn interruptible_sleep(&self, dur: Duration) {
        let deadline = Instant::now() + dur;
        while !self.is_shutdown() {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            std::thread::sleep(left.min(self.cfg.poll_interval));
        }
    }
}

fn configure_stream(stream: &TcpStream, cfg: &TcpConfig) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(cfg.write_timeout))?;
    Ok(())
}

fn write_out_frame(stream: &mut TcpStream, frame: &OutFrame) -> io::Result<()> {
    match frame {
        OutFrame::Hello(from) => {
            let body = frame::hello_body(*from);
            let mut head = (body.len() as u32).to_le_bytes().to_vec();
            head.extend_from_slice(&body);
            stream.write_all(&head)
        }
        OutFrame::Msg { to, payload } => {
            // Length prefix + tiny per-destination header in one small
            // buffer; the payload is the broadcast-shared encoding and is
            // written straight from the shared allocation.
            let header = frame::msg_header(*to);
            let total = (header.len() + payload.len()) as u32;
            let mut head = total.to_le_bytes().to_vec();
            head.extend_from_slice(&header);
            stream.write_all(&head)?;
            stream.write_all(payload)
        }
    }
}

/// Writes HELLO frames announcing every locally hosted endpoint; called on
/// every (re)connect so a restarted peer relearns reply routes.
fn write_hellos(stream: &mut TcpStream, inner: &TcpInner) -> io::Result<()> {
    let addrs: Vec<Sender> = inner.local_addrs.read().clone();
    for addr in addrs {
        write_out_frame(stream, &OutFrame::Hello(addr))?;
    }
    Ok(())
}

/// Writer loop for a dialed (peer-map) link: connects with exponential
/// backoff, announces local endpoints, drains the queue, reconnects on any
/// write failure without losing the failed frame.
fn dialed_writer(inner: &Arc<TcpInner>, link: &Link, peer: SocketAddr) {
    let mut stream: Option<TcpStream> = None;
    let mut backoff = inner.cfg.reconnect_min;
    loop {
        if inner.is_shutdown() {
            return;
        }
        let frame = match link.pop_wait(inner.cfg.poll_interval) {
            Popped::Frame(f) => f,
            Popped::Empty => continue,
            Popped::Done => return,
        };
        loop {
            if inner.is_shutdown() {
                return;
            }
            if stream.is_none() {
                match TcpStream::connect_timeout(&peer, inner.cfg.write_timeout) {
                    Ok(mut s) => {
                        if configure_stream(&s, &inner.cfg).is_ok()
                            && write_hellos(&mut s, inner).is_ok()
                        {
                            // Links are full-duplex: the peer replies over
                            // the connection we initiated (that is how
                            // client processes, which never listen, get
                            // their replies), so every established stream
                            // also gets a reader.
                            if let Ok(rs) = s.try_clone() {
                                let inner2 = Arc::clone(inner);
                                inner.spawn("tcp-dial-reader".into(), move || {
                                    serve_conn(&inner2, rs);
                                });
                            }
                            stream = Some(s);
                            backoff = inner.cfg.reconnect_min;
                        } else {
                            inner.interruptible_sleep(backoff);
                            backoff = (backoff * 2).min(inner.cfg.reconnect_max);
                            continue;
                        }
                    }
                    Err(_) => {
                        inner.interruptible_sleep(backoff);
                        backoff = (backoff * 2).min(inner.cfg.reconnect_max);
                        continue;
                    }
                }
            }
            match write_out_frame(stream.as_mut().expect("stream connected"), &frame) {
                Ok(()) => break,
                Err(_) => {
                    // Connection died (or stalled past the write timeout);
                    // retry the same frame on a fresh one. Shut the old
                    // socket down fully so its reader thread — which holds
                    // a clone of the same connection — sees EOF and exits
                    // instead of polling a zombie stream forever.
                    if let Some(dead) = stream.take() {
                        let _ = dead.shutdown(std::net::Shutdown::Both);
                    }
                }
            }
        }
    }
}

/// Writer loop for a reverse link (an accepted connection): no reconnect —
/// if the peer-initiated socket dies, the peer re-dials and re-announces.
fn reverse_writer(inner: &Arc<TcpInner>, link: &Link, mut stream: TcpStream) {
    loop {
        if inner.is_shutdown() {
            return;
        }
        let frame = match link.pop_wait(inner.cfg.poll_interval) {
            Popped::Frame(f) => f,
            Popped::Empty => continue,
            Popped::Done => return,
        };
        if write_out_frame(&mut stream, &frame).is_err() {
            // Fully shut the socket down so the paired serve_conn reader
            // sees EOF, exits, and removes the stale reverse route —
            // otherwise replies would keep routing to this closed link
            // while the connection still looked healthy.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            link.close();
            return;
        }
    }
}

/// Reader loop for one accepted connection: parses frames, learns reverse
/// links from HELLOs, delivers envelopes to local mailboxes.
fn serve_conn(inner: &Arc<TcpInner>, stream: TcpStream) {
    if stream.set_nodelay(true).is_err()
        || stream
            .set_read_timeout(Some(inner.cfg.poll_interval))
            .is_err()
    {
        return;
    }
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = FrameReader::new(reader_stream);
    // One writer link per connection, shared by every endpoint the peer
    // announces over it.
    let mut conn_link: Option<Arc<Link>> = None;
    let mut announced: Vec<Sender> = Vec::new();
    while !inner.is_shutdown() {
        let body = match reader.poll_frame() {
            Ok(Some(body)) => body,
            Ok(None) => continue,
            Err(_) => break, // EOF or transport error: connection is gone
        };
        match frame::parse_frame(&body) {
            Ok(Frame::Hello(from)) => {
                let link = match &conn_link {
                    Some(l) => Arc::clone(l),
                    None => {
                        let link = Link::new(inner.cfg.queue_capacity);
                        if let Ok(ws) = stream.try_clone() {
                            if configure_stream(&ws, &inner.cfg).is_err() {
                                break;
                            }
                            let inner2 = Arc::clone(inner);
                            let wl = Arc::clone(&link);
                            inner.spawn("tcp-reverse-writer".into(), move || {
                                reverse_writer(&inner2, &wl, ws);
                            });
                        } else {
                            break;
                        }
                        conn_link = Some(Arc::clone(&link));
                        link
                    }
                };
                // Latest announcement wins: a restarted client's new
                // connection replaces the stale route.
                if let Some(old) = inner.reverse.write().insert(from, link) {
                    if !conn_link.as_ref().is_some_and(|l| Arc::ptr_eq(l, &old)) {
                        old.close();
                    }
                }
                announced.push(from);
            }
            Ok(Frame::Msg { to, msg }) => inner.deliver(to, msg),
            Err(_) => break, // protocol violation: drop the connection
        }
    }
    // Tear down routes announced over this connection (unless a newer
    // connection already replaced them).
    if let Some(link) = conn_link {
        link.close();
        let mut reverse = inner.reverse.write();
        for addr in announced {
            if reverse.get(&addr).is_some_and(|l| Arc::ptr_eq(l, &link)) {
                reverse.remove(&addr);
            }
        }
    }
}

fn acceptor(inner: &Arc<TcpInner>, listener: TcpListener) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !inner.is_shutdown() {
        match listener.accept() {
            Ok((stream, _)) => {
                // Accepted sockets must block (reads use a timeout).
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let inner2 = Arc::clone(inner);
                inner.spawn("tcp-conn-reader".into(), move || {
                    serve_conn(&inner2, stream);
                });
            }
            Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(inner.cfg.poll_interval.min(Duration::from_millis(10)));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// A TCP-backed [`Transport`]: one instance per OS process/node.
///
/// Call [`TcpTransport::shutdown`] (or `NetHandle::shutdown`) when done —
/// background threads hold the transport alive until then.
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<TcpInner>,
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("listen", &self.inner.local_addr)
            .field("peers", &self.inner.cfg.peers.len())
            .finish()
    }
}

impl TcpTransport {
    /// Starts a transport, binding the listener named in `cfg.listen` (if
    /// any) and spawning the acceptor.
    ///
    /// # Errors
    /// Returns the bind error if the listen address is taken or invalid.
    pub fn new(cfg: TcpConfig) -> io::Result<TcpTransport> {
        let listener = match cfg.listen {
            Some(addr) => Some(TcpListener::bind(addr)?),
            None => None,
        };
        Ok(Self::with_listener(cfg, listener))
    }

    /// Starts a transport over a pre-bound listener (or none). Useful when
    /// ports are allocated by the OS first (`127.0.0.1:0`) and the peer
    /// map is assembled from the actual bound addresses.
    pub fn with_listener(cfg: TcpConfig, listener: Option<TcpListener>) -> TcpTransport {
        let local_addr = listener.as_ref().and_then(|l| l.local_addr().ok());
        let inner = Arc::new(TcpInner {
            cfg,
            local_addr,
            mailboxes: RwLock::new(HashMap::new()),
            local_addrs: RwLock::new(Vec::new()),
            dialed: RwLock::new(HashMap::new()),
            reverse: RwLock::new(HashMap::new()),
            stats: NetworkStats::new(),
            faults: FaultController::new(),
            shutdown: AtomicBool::new(false),
            threads: Mutex::new(Vec::new()),
        });
        if let Some(listener) = listener {
            let inner2 = Arc::clone(&inner);
            inner.spawn("tcp-acceptor".into(), move || {
                acceptor(&inner2, listener);
            });
        }
        TcpTransport { inner }
    }

    /// Binds `n` ephemeral loopback listeners and returns the resulting
    /// peer map plus the listeners (pass each to
    /// [`TcpTransport::with_listener`] via its replica's config).
    ///
    /// # Errors
    /// Returns the first bind error.
    pub fn bind_loopback_cluster(n: usize) -> io::Result<(PeerMap, Vec<TcpListener>)> {
        let mut peers = PeerMap::new();
        let mut listeners = Vec::with_capacity(n);
        for i in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            peers.insert(ReplicaId(i as u32), listener.local_addr()?);
            listeners.push(listener);
        }
        Ok((peers, listeners))
    }

    /// The actually bound listen address, if this transport listens.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.inner.local_addr
    }

    /// A [`NetHandle`] over this transport.
    pub fn handle(&self) -> NetHandle {
        NetHandle::new(Arc::new(self.clone()))
    }

    /// Registers `addr`, returning its endpoint (convenience mirroring the
    /// in-memory backend).
    ///
    /// # Panics
    /// Panics if `addr` is already registered on this transport.
    pub fn register(&self, addr: Sender) -> Endpoint {
        self.handle().register(addr)
    }

    /// The shared fault controller (send-side evaluation).
    pub fn faults(&self) -> &FaultController {
        &self.inner.faults
    }

    /// The shared delivery statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.inner.stats
    }

    /// Routes one envelope to one destination: local mailboxes
    /// short-circuit the socket entirely (a transport can host several
    /// endpoints; self-sends behave like in-memory), everything else
    /// goes through a peer link. `payload` memoizes the serialized bytes
    /// so a broadcast encodes once no matter how many link destinations.
    ///
    /// The one copy of the stats/fault/routing sequence shared by
    /// `send_from` and `broadcast_from`.
    fn dispatch_one(
        &self,
        from: Sender,
        to: Sender,
        msg: &SignedMessage,
        payload: &mut Option<Arc<Vec<u8>>>,
    ) -> Result<(), NetworkError> {
        let local = self.inner.mailboxes.read().contains_key(&to);
        let link = if local { None } else { self.inner.route_to(to) };
        if !local && link.is_none() {
            self.inner.stats.record_dropped();
            return Err(NetworkError::UnknownDestination(format!("{to:?}")));
        }
        self.inner.stats.record_sent(msg.kind(), msg.encoded_len());
        if self.inner.faults.should_drop(from, to) {
            self.inner.stats.record_dropped();
            return Ok(()); // silently dropped, like a real network
        }
        match link {
            None => self.inner.deliver(to, msg.clone()),
            Some(link) => {
                // Send-side twin of the reader's MAX_FRAME guard: an
                // envelope the receiver is guaranteed to reject must not
                // reach the wire — a dialed writer would otherwise retry
                // the same doomed frame through endless reconnects,
                // wedging the link. Dropping it (counted) is the only
                // deliverable outcome.
                if msg.encoded_len() + MSG_HEADER_MAX > frame::MAX_FRAME {
                    self.inner.stats.record_dropped();
                    return Ok(());
                }
                let shared = payload
                    .get_or_insert_with(|| Arc::new(msg.encode()))
                    .clone();
                self.inner.push_out(&link, to, shared);
            }
        }
        Ok(())
    }

    /// Stops the acceptor, readers and writers, and joins them.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for link in self.inner.dialed.read().values() {
            link.close();
        }
        for link in self.inner.reverse.read().values() {
            link.close();
        }
        // Reader threads spawn writer threads, so drain until quiescent.
        loop {
            let handles: Vec<JoinHandle<()>> = self.inner.threads.lock().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
    }
}

impl Transport for TcpTransport {
    fn register_mailbox(&self, addr: Sender) -> Receiver<SignedMessage> {
        let (tx, rx) = channel::unbounded();
        let prev = self.inner.mailboxes.write().insert(addr, tx);
        assert!(prev.is_none(), "address {addr:?} registered twice");
        self.inner.local_addrs.write().push(addr);
        // A client eagerly dials every replica and announces itself, so
        // replicas it has never messaged (PBFT backups replying to a
        // request sent only to the primary) still have a reply route.
        if matches!(addr, Sender::Client(_)) {
            let peers: Vec<(ReplicaId, SocketAddr)> = self.inner.cfg.peers.iter().collect();
            for (id, peer_addr) in peers {
                let link = self.inner.dialed_link(id, peer_addr);
                link.push_reliable(OutFrame::Hello(addr));
            }
        }
        rx
    }

    fn deregister(&self, addr: Sender) {
        self.inner.mailboxes.write().remove(&addr);
        self.inner.local_addrs.write().retain(|a| *a != addr);
    }

    fn send_from(&self, from: Sender, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        self.dispatch_one(from, to, &msg, &mut None)
    }

    fn broadcast_from(
        &self,
        from: Sender,
        to: &[Sender],
        msg: &SignedMessage,
    ) -> Result<(), NetworkError> {
        // Encode once, lazily: a broadcast that is entirely dropped by
        // fault injection never serializes at all, and n live peers share
        // one buffer.
        let mut payload: Option<Arc<Vec<u8>>> = None;
        let mut first_err = None;
        for &dest in to {
            if dest == from {
                continue; // no self-delivery on broadcast
            }
            if let Err(e) = self.dispatch_one(from, dest, msg, &mut payload) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn stats(&self) -> &NetworkStats {
        &self.inner.stats
    }

    fn faults(&self) -> &FaultController {
        &self.inner.faults
    }

    fn shutdown(&self) {
        TcpTransport::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::messages::Message;
    use rdb_common::{ClientId, SignatureBytes};

    fn r(i: u32) -> Sender {
        Sender::Replica(ReplicaId(i))
    }

    fn msg(from: Sender) -> SignedMessage {
        SignedMessage::new(
            Message::ClientRequest { txns: vec![] },
            from,
            SignatureBytes(vec![3; 8]),
        )
    }

    /// Two replica transports wired through a loopback peer map.
    fn pair() -> (TcpTransport, TcpTransport) {
        let (peers, mut listeners) = TcpTransport::bind_loopback_cluster(2).unwrap();
        let t1 = TcpTransport::with_listener(
            TcpConfig {
                peers: peers.clone(),
                ..TcpConfig::default()
            },
            Some(listeners.remove(1)),
        );
        let t0 = TcpTransport::with_listener(
            TcpConfig {
                peers,
                ..TcpConfig::default()
            },
            Some(listeners.remove(0)),
        );
        (t0, t1)
    }

    #[test]
    fn replica_to_replica_over_sockets() {
        let (t0, t1) = pair();
        let a = t0.register(r(0));
        let b = t1.register(r(1));
        a.send(r(1), msg(r(0))).unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.sender(), r(0));
        assert_eq!(t0.stats().total_sent(), 1);
        assert_eq!(t1.stats().total_delivered(), 1);
        t0.shutdown();
        t1.shutdown();
    }

    #[test]
    fn client_reply_routes_over_reverse_link() {
        let (t0, t1) = pair();
        let replica = t0.register(r(0));
        let client_net =
            TcpTransport::new(TcpConfig::for_client(t0.inner.cfg.peers.clone())).unwrap();
        let client = client_net.register(Sender::Client(ClientId(7)));
        // Client → replica over a dialed link…
        client.send(r(0), msg(Sender::Client(ClientId(7)))).unwrap();
        let got = replica.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.sender(), Sender::Client(ClientId(7)));
        // …and the replica can reply without the client being in any map,
        // even though the client never listens.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match replica.send(Sender::Client(ClientId(7)), msg(r(0))) {
                Ok(()) => break,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("no reverse route established: {e}"),
            }
        }
        assert!(client.recv_timeout(Duration::from_secs(5)).is_ok());
        t0.shutdown();
        t1.shutdown();
        client_net.shutdown();
    }

    #[test]
    fn local_endpoints_short_circuit() {
        let t = TcpTransport::new(TcpConfig::default()).unwrap();
        let a = t.register(Sender::Client(ClientId(1)));
        let b = t.register(Sender::Client(ClientId(2)));
        a.send(
            Sender::Client(ClientId(2)),
            msg(Sender::Client(ClientId(1))),
        )
        .unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
        t.shutdown();
    }

    #[test]
    fn unknown_destination_errors() {
        let t = TcpTransport::new(TcpConfig::default()).unwrap();
        let a = t.register(r(0));
        assert!(matches!(
            a.send(Sender::Client(ClientId(99)), msg(r(0))),
            Err(NetworkError::UnknownDestination(_))
        ));
        t.shutdown();
    }

    #[test]
    fn gossip_overflow_sheds_messages_never_hellos() {
        let stats = NetworkStats::new();
        let link = Link::new(2);
        link.push_reliable(OutFrame::Hello(Sender::Client(ClientId(1))));
        let msg_frame = |b: u8| OutFrame::Msg {
            to: r(1),
            payload: Arc::new(vec![b]),
        };
        link.push_gossip(msg_frame(1), &stats);
        // Queue is at capacity: the overflow victim must be the Msg, not
        // the routing announcement sitting in front of it.
        link.push_gossip(msg_frame(2), &stats);
        assert_eq!(stats.dropped(), 1);
        match link.pop_wait(Duration::from_millis(10)) {
            Popped::Frame(OutFrame::Hello(from)) => {
                assert_eq!(from, Sender::Client(ClientId(1)));
            }
            other => panic!(
                "hello must survive gossip overflow, got {:?}",
                matches!(other, Popped::Frame(_))
            ),
        }
    }

    #[test]
    fn shutdown_joins_threads_quickly() {
        let (t0, t1) = pair();
        let _a = t0.register(r(0));
        let _b = t1.register(r(1));
        let start = Instant::now();
        t0.shutdown();
        t1.shutdown();
        assert!(start.elapsed() < Duration::from_secs(10));
    }
}
