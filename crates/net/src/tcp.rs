//! Real TCP transport: the in-memory switchboard's semantics over sockets,
//! driven by a nonblocking reactor.
//!
//! One [`TcpTransport`] is one node of a multi-process deployment (it can
//! host several local endpoints, e.g. thousands of client sessions in a
//! swarm process). Architecture:
//!
//! - **Event loops**: a small fixed pool of reactor threads
//!   ([`crate::reactor::Poller`], level-triggered) owns every socket.
//!   Connections are distributed round-robin across loops; each loop
//!   multiplexes accept, read and write readiness, so one process holds
//!   tens of thousands of sockets on a handful of threads instead of two
//!   threads per connection.
//! - **Outbound**: senders push frames onto a per-link bounded queue and
//!   notify the owning loop (once — an armed link is never re-notified).
//!   The loop drains the queue into a per-connection pending list and
//!   writes it with **vectored writes**, coalescing up to 64 frames per
//!   syscall. Replica-destined traffic (consensus gossip) uses a
//!   *drop-oldest* policy on overflow — the protocol tolerates loss and
//!   retransmits by design — while client-path traffic is *never* shed:
//!   the sender blocks on the queue (backpressure) until space frees up.
//!   Broadcasts serialize the envelope **once** and share the encoded
//!   buffer across every destination's queue.
//! - **Inbound**: frames decode through [`SignedMessage::decode`]'s
//!   memo-seeding path, so the zero-copy envelope (canonical bytes
//!   memoized, verified without re-serialization) survives the socket.
//! - **Routing**: replicas are dialed from the [`PeerMap`] by a single
//!   dialer thread (reconnect with exponential backoff, so a restarted
//!   replica rejoins without coordination). Clients are *not* in the map —
//!   a client dials every replica and announces itself with a HELLO frame,
//!   and replies travel back over the client-initiated connection (learned
//!   as a *reverse link*). In swarm mode ([`TcpConfig::dedicated_to`])
//!   each client endpoint instead gets its own *dedicated* connection to
//!   one replica, so an N-client swarm exercises N real sockets.
//! - **Reclamation**: closed connections are reaped *eagerly* — the loop
//!   deregisters the fd, frees the slab slot and drops the routes the
//!   moment the socket dies, so churned connections cannot accumulate
//!   (see [`TcpTransport::open_connections`]).
//! - **Faults**: [`FaultController`] is evaluated on the send side, same
//!   as the in-memory backend, so drops and partitions behave identically
//!   over both.

use crate::fault::FaultController;
use crate::frame::{self, Frame, FrameAccumulator};
use crate::reactor::{Event, Interest, Poller, WakeReceiver, Waker};
use crate::stats::NetworkStats;
use crate::transport::{
    ClientTransport, Endpoint, MeshTransport, NetHandle, NetworkError, Transport,
};
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender as ChanSender};
use parking_lot::{Condvar, Mutex, RwLock};
use rdb_common::codec::Wire;
use rdb_common::messages::{Sender, SignedMessage};
use rdb_common::{PeerMap, ReplicaId};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, IoSlice, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration for a [`TcpTransport`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Address to accept peer connections on. `None` for client processes,
    /// which only dial out.
    pub listen: Option<SocketAddr>,
    /// Replica id → address map (clients are learned via HELLO frames).
    pub peers: PeerMap,
    /// Outbound frames buffered per replica (gossip) link before the
    /// drop-oldest policy applies.
    pub queue_capacity: usize,
    /// Outbound frames buffered per client-path link (reverse and
    /// dedicated links) before senders block.
    pub client_queue_capacity: usize,
    /// Reactor threads driving the sockets. More loops add read/decode
    /// parallelism; 2 is plenty for a 4-replica cluster.
    pub event_loops: usize,
    /// Swarm mode: give every locally registered client endpoint its own
    /// dedicated connection to this replica (normally the view-0 primary)
    /// instead of sharing one link per replica. The id must be in `peers`.
    pub dedicated_to: Option<ReplicaId>,
    /// Initial reconnect backoff for dialed links.
    pub reconnect_min: Duration,
    /// Backoff ceiling (doubles from `reconnect_min` up to this).
    pub reconnect_max: Duration,
    /// Connect timeout for the dialer thread.
    pub write_timeout: Duration,
    /// Granularity at which blocked threads re-check for shutdown.
    pub poll_interval: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            listen: None,
            peers: PeerMap::new(),
            queue_capacity: 4096,
            client_queue_capacity: 4096,
            event_loops: 2,
            dedicated_to: None,
            reconnect_min: Duration::from_millis(10),
            reconnect_max: Duration::from_secs(1),
            write_timeout: Duration::from_secs(2),
            poll_interval: Duration::from_millis(50),
        }
    }
}

impl TcpConfig {
    /// Config for replica `id` of `peers`: listens on its map entry.
    ///
    /// # Panics
    /// Panics if `id` is not in the map.
    pub fn for_replica(id: ReplicaId, peers: PeerMap) -> Self {
        let listen = peers.get(id).expect("replica id missing from peer map");
        TcpConfig {
            listen: Some(listen),
            peers,
            ..TcpConfig::default()
        }
    }

    /// Config for a client process: no listener, dials every replica.
    pub fn for_client(peers: PeerMap) -> Self {
        TcpConfig {
            listen: None,
            peers,
            ..TcpConfig::default()
        }
    }

    /// Config for a swarm process: no listener, one dedicated connection
    /// per client endpoint to `primary`, shared links to the rest.
    pub fn for_swarm(peers: PeerMap, primary: ReplicaId) -> Self {
        TcpConfig {
            listen: None,
            peers,
            dedicated_to: Some(primary),
            ..TcpConfig::default()
        }
    }

    /// Applies the transport sizing from a [`NetOptions`]
    /// (`rdb_common::NetOptions`) — the bridge from the unified node
    /// configuration to this backend's knobs.
    pub fn with_options(mut self, net: &rdb_common::NetOptions) -> Self {
        self.event_loops = net.event_loops;
        self.queue_capacity = net.queue_capacity;
        self.client_queue_capacity = net.client_queue_capacity;
        self
    }
}

/// Upper bound of the per-destination MSG frame header (tag + `Sender`),
/// used by the send-side oversize guard.
const MSG_HEADER_MAX: usize = 16;

/// Reserved poller token: the loop's wake pipe.
const WAKER_TOKEN: usize = usize::MAX;
/// Reserved poller token: the accept listener (loop 0 only).
const LISTENER_TOKEN: usize = usize::MAX - 1;

/// Frames coalesced into one vectored write (two iovecs each).
const MAX_WRITE_FRAMES: usize = 64;
/// Pending frames refilled from the link queue per drain.
const REFILL_BATCH: usize = 128;
/// Frames parsed per readiness event before yielding (level-triggered
/// polling re-reports a still-readable socket, so fairness is free).
const MAX_READ_FRAMES: usize = 256;

/// One queued outbound frame.
#[derive(Clone)]
enum OutFrame {
    /// Announce a local endpoint to the peer (routing for replies).
    Hello(Sender),
    /// An envelope for `to`; `payload` is the shared canonical encoding.
    /// `reliable` frames are never shed by the overflow policy.
    Msg {
        to: Sender,
        payload: Arc<Vec<u8>>,
        reliable: bool,
    },
}

impl OutFrame {
    fn sheddable(&self) -> bool {
        matches!(
            self,
            OutFrame::Msg {
                reliable: false,
                ..
            }
        )
    }
}

/// What a link connects to — determines hello policy and teardown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkPeer {
    /// Shared dialed link to a replica in the peer map.
    Replica(ReplicaId),
    /// Dedicated dialed link carrying exactly one client endpoint.
    Dedicated { owner: Sender },
    /// Reverse link bound to one accepted connection.
    Accepted,
}

/// A bounded outbound queue drained by the event loop that owns its
/// connection. Senders push and (at most once while the queue is armed)
/// notify the owner; the loop drains, and disarms only after observing an
/// empty queue under the same lock pushes take — so a push can never be
/// stranded without either a pending notify or a registered write
/// interest.
struct Link {
    peer: LinkPeer,
    /// Dial target; `None` for accepted (reverse) links.
    addr: Option<SocketAddr>,
    capacity: usize,
    state: Mutex<LinkState>,
    space: Condvar,
}

struct LinkState {
    frames: VecDeque<OutFrame>,
    closed: bool,
    /// The owning loop already knows about queued frames (a flush command
    /// is in flight or write interest is registered).
    armed: bool,
    /// Owning connection, if currently bound: (loop index, token).
    owner: Option<(usize, usize)>,
}

enum PushPolicy {
    /// Drop-oldest on overflow — replica gossip tolerates loss.
    Gossip,
    /// Never shed; blocks the sender (backpressure) on overflow.
    Reliable,
}

impl Link {
    fn new(peer: LinkPeer, addr: Option<SocketAddr>, capacity: usize) -> Arc<Link> {
        Arc::new(Link {
            peer,
            addr,
            capacity: capacity.max(1),
            state: Mutex::new(LinkState {
                frames: VecDeque::new(),
                closed: false,
                armed: false,
                owner: None,
            }),
            space: Condvar::new(),
        })
    }

    /// Queues `f`, returning the `(loop, token)` to notify if the link was
    /// not already armed. HELLO frames bypass the capacity check — a
    /// routing announcement is never shed and never a backpressure source
    /// (there are at most as many as local endpoints).
    fn push(
        &self,
        f: OutFrame,
        policy: PushPolicy,
        stats: &NetworkStats,
    ) -> Option<(usize, usize)> {
        let mut s = self.state.lock();
        if s.closed {
            return None;
        }
        if !matches!(f, OutFrame::Hello(_)) {
            loop {
                if s.frames.len() < self.capacity {
                    break;
                }
                // Overflow: shed the oldest sheddable frame. A queued
                // HELLO is a routing announcement and losing one would
                // permanently strand a reply path, so only non-reliable
                // Msg frames are victims.
                if let Some(idx) = s.frames.iter().position(OutFrame::sheddable) {
                    s.frames.remove(idx);
                    stats.record_dropped();
                    break;
                }
                match policy {
                    // Nothing sheddable (hellos/reliable only): gossip may
                    // exceed capacity rather than stall the pipeline.
                    PushPolicy::Gossip => break,
                    PushPolicy::Reliable => {
                        self.space.wait(&mut s);
                        if s.closed {
                            return None;
                        }
                    }
                }
            }
        }
        s.frames.push_back(f);
        if !s.armed {
            if let Some(owner) = s.owner {
                s.armed = true;
                return Some(owner);
            }
        }
        None
    }

    /// Moves up to `max` frames into the connection's pending list.
    fn drain_into(&self, out: &mut VecDeque<PendingFrame>, max: usize) {
        let mut s = self.state.lock();
        let mut n = 0;
        while n < max {
            match s.frames.pop_front() {
                Some(f) => {
                    out.push_back(PendingFrame::new(f));
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.space.notify_all();
        }
    }

    /// Disarms iff the queue is still empty (checked under the push lock,
    /// closing the push/disarm race). Returns whether it disarmed.
    fn disarm_if_empty(&self) -> bool {
        let mut s = self.state.lock();
        if s.frames.is_empty() {
            s.armed = false;
            true
        } else {
            false
        }
    }

    /// Returns unsent frames to the queue front (in order) after a
    /// connection died; they retry on the next connection.
    fn requeue_front(&self, frames: Vec<OutFrame>) {
        let mut s = self.state.lock();
        for f in frames.into_iter().rev() {
            s.frames.push_front(f);
        }
    }

    fn bind(&self, loop_idx: usize, token: usize) {
        let mut s = self.state.lock();
        s.owner = Some((loop_idx, token));
        // The adopting loop flushes immediately; arm so senders skip
        // redundant notifies meanwhile.
        s.armed = true;
    }

    fn unbind(&self, loop_idx: usize, token: usize) {
        let mut s = self.state.lock();
        if s.owner == Some((loop_idx, token)) {
            s.owner = None;
            s.armed = false;
        }
    }

    fn owner(&self) -> Option<(usize, usize)> {
        self.state.lock().owner
    }

    fn close(&self) {
        let mut s = self.state.lock();
        s.closed = true;
        self.space.notify_all();
    }

    fn is_closed(&self) -> bool {
        self.state.lock().closed
    }
}

/// One outbound frame staged on a connection, with partial-write progress.
struct PendingFrame {
    /// Length prefix + (hello body | per-destination MSG header).
    head: Vec<u8>,
    /// The broadcast-shared envelope bytes (MSG frames only).
    payload: Option<Arc<Vec<u8>>>,
    /// The original frame, retained so a dead connection can requeue it.
    frame: OutFrame,
    written: usize,
}

impl PendingFrame {
    fn new(frame: OutFrame) -> PendingFrame {
        let (head, payload) = match &frame {
            OutFrame::Hello(from) => {
                let body = frame::hello_body(*from);
                let mut head = (body.len() as u32).to_le_bytes().to_vec();
                head.extend_from_slice(&body);
                (head, None)
            }
            OutFrame::Msg { to, payload, .. } => {
                let header = frame::msg_header(*to);
                let total = (header.len() + payload.len()) as u32;
                let mut head = total.to_le_bytes().to_vec();
                head.extend_from_slice(&header);
                (head, Some(Arc::clone(payload)))
            }
        };
        PendingFrame {
            head,
            payload,
            frame,
            written: 0,
        }
    }

    fn total_len(&self) -> usize {
        self.head.len() + self.payload.as_ref().map_or(0, |p| p.len())
    }
}

/// One live socket owned by an event loop.
struct Conn {
    stream: TcpStream,
    acc: FrameAccumulator,
    /// The outbound queue this connection drains. Dialed connections use
    /// the persistent (shared or dedicated) link; accepted connections get
    /// a fresh reverse link.
    link: Arc<Link>,
    pending: VecDeque<PendingFrame>,
    /// Endpoints the peer announced over this connection (reverse routes
    /// to drop on teardown).
    announced: Vec<Sender>,
    /// Write interest currently registered with the poller.
    want_write: bool,
    /// Dialed links persist (requeue + redial on death); accepted links
    /// die with their connection.
    dialed: bool,
}

/// Token-indexed connection storage with slot reuse.
#[derive(Default)]
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Slab {
    fn insert(&mut self, conn: Conn) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(conn);
                i
            }
            None => {
                self.slots.push(Some(conn));
                self.slots.len() - 1
            }
        }
    }

    fn get_mut(&mut self, token: usize) -> Option<&mut Conn> {
        self.slots.get_mut(token)?.as_mut()
    }

    fn remove(&mut self, token: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(token)?.take();
        if conn.is_some() {
            self.free.push(token);
        }
        conn
    }

    fn tokens(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }
}

enum LoopCmd {
    /// Take ownership of an established connection.
    Adopt {
        stream: TcpStream,
        link: Arc<Link>,
        dialed: bool,
    },
    /// A link owned by connection `token` has queued frames.
    Flush(usize),
    /// Tear down connection `token` now (eager reclamation).
    Close(usize),
}

/// The sending side of one event loop.
struct LoopHandle {
    cmd_tx: ChanSender<LoopCmd>,
    waker: Waker,
    /// True while the loop is (about to be) blocked in the poller; lets
    /// senders skip the wake syscall when the loop is already running.
    sleeping: Arc<AtomicBool>,
}

struct DialRequest {
    link: Arc<Link>,
    /// Wait this long before attempting.
    delay: Duration,
    /// Delay after the next failure (doubles up to `reconnect_max`).
    backoff: Duration,
}

struct TcpInner {
    cfg: TcpConfig,
    local_addr: Option<SocketAddr>,
    mailboxes: RwLock<HashMap<Sender, ChanSender<SignedMessage>>>,
    /// Endpoints hosted by this transport, announced in HELLOs, with
    /// their dedicated-link target (swarm mode) if any.
    locals: RwLock<Vec<(Sender, Option<ReplicaId>)>>,
    /// Shared links to replicas in the peer map, created on first use.
    dialed: RwLock<HashMap<u32, Arc<Link>>>,
    /// Dedicated per-client links (swarm mode).
    dedicated: RwLock<HashMap<Sender, Arc<Link>>>,
    /// Links learned from inbound HELLOs (clients, chiefly).
    reverse: RwLock<HashMap<Sender, Arc<Link>>>,
    loops: OnceLock<Vec<LoopHandle>>,
    dial_tx: OnceLock<ChanSender<DialRequest>>,
    stats: NetworkStats,
    faults: FaultController,
    shutdown: AtomicBool,
    /// Live socket gauge across all loops (readable via
    /// [`TcpTransport::open_connections`]).
    open_conns: AtomicUsize,
    /// Round-robin cursor for assigning connections to loops.
    rr: AtomicUsize,
    threads: Mutex<Vec<JoinHandle<()>>>,
    /// Deadline heap for fault-injected delay jitter (spawned on demand).
    delay: Mutex<DelayState>,
    delay_signal: Condvar,
    delay_started: std::sync::Once,
}

/// One jitter-delayed envelope awaiting re-dispatch.
struct DelayEntry {
    due: Instant,
    seq: u64,
    from: Sender,
    to: Sender,
    msg: SignedMessage,
    reliable: bool,
}

impl PartialEq for DelayEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DelayEntry {}
impl PartialOrd for DelayEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DelayEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so the BinaryHeap pops the earliest deadline first;
        // tie-break on sequence for FIFO between equal deadlines.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct DelayState {
    heap: std::collections::BinaryHeap<DelayEntry>,
    next_seq: u64,
}

impl TcpInner {
    fn loops(&self) -> &[LoopHandle] {
        self.loops.get().expect("event loops started")
    }

    fn deliver(&self, to: Sender, msg: SignedMessage) {
        let kind = msg.kind();
        if let Some(tx) = self.mailboxes.read().get(&to) {
            if tx.send(msg).is_ok() {
                self.stats.record_delivered(kind);
                return;
            }
        }
        self.stats.record_dropped();
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Hands a flush/close/adopt command to loop `li`, waking it only if
    /// it is parked in the poller.
    fn send_loop_cmd(&self, li: usize, cmd: LoopCmd) {
        let h = &self.loops()[li];
        let _ = h.cmd_tx.send(cmd);
        if h.sleeping.load(Ordering::SeqCst) {
            h.waker.wake();
        }
    }

    fn notify_owner(&self, owner: Option<(usize, usize)>) {
        if let Some((li, token)) = owner {
            self.send_loop_cmd(li, LoopCmd::Flush(token));
        }
    }

    fn push_link(&self, link: &Link, f: OutFrame, policy: PushPolicy) {
        let owner = link.push(f, policy, &self.stats);
        self.notify_owner(owner);
    }

    /// Round-robin loop assignment for new connections.
    fn next_loop(&self) -> usize {
        self.rr.fetch_add(1, Ordering::Relaxed) % self.loops().len()
    }

    fn request_dial(&self, link: Arc<Link>, delay: Duration) {
        let backoff = self.cfg.reconnect_min.max(Duration::from_millis(1));
        if let Some(tx) = self.dial_tx.get() {
            let _ = tx.send(DialRequest {
                link,
                delay,
                backoff,
            });
        }
    }

    /// Get-or-create the shared dialed link for a mapped replica.
    /// Read-locked fast path: after the first message to a peer this is a
    /// shared-lock map lookup, so concurrent senders do not serialize.
    fn dialed_link(&self, id: ReplicaId, addr: SocketAddr) -> Arc<Link> {
        if let Some(link) = self.dialed.read().get(&id.0) {
            return Arc::clone(link);
        }
        let mut dialed = self.dialed.write();
        // Double-check: another sender may have raced the upgrade.
        if let Some(link) = dialed.get(&id.0) {
            return Arc::clone(link);
        }
        let link = Link::new(LinkPeer::Replica(id), Some(addr), self.cfg.queue_capacity);
        dialed.insert(id.0, Arc::clone(&link));
        drop(dialed);
        self.request_dial(Arc::clone(&link), Duration::ZERO);
        link
    }

    /// The outbound link for `from → to`, if any route exists.
    fn route_to(&self, from: Sender, to: Sender) -> Option<Arc<Link>> {
        if let (Some(primary), Sender::Replica(r)) = (self.cfg.dedicated_to, to) {
            if r == primary {
                if let Some(link) = self.dedicated.read().get(&from) {
                    return Some(Arc::clone(link));
                }
            }
        }
        if let Sender::Replica(r) = to {
            if let Some(addr) = self.cfg.peers.get(r) {
                return Some(self.dialed_link(r, addr));
            }
        }
        self.reverse.read().get(&to).cloned()
    }

    /// Whether a dial for `link` must wait: the remote replica — or the
    /// local node itself — is currently crash-faulted, so re-establishing
    /// the socket would undo the injected failure. The dialer keeps the
    /// request in its backoff queue, which is exactly the reconnect path
    /// a recovery then exercises.
    fn dial_blocked(&self, link: &Link) -> bool {
        let target = match link.peer {
            LinkPeer::Replica(r) => Some(Sender::Replica(r)),
            LinkPeer::Dedicated { owner } => {
                if self.faults.is_crashed(owner) {
                    return true;
                }
                self.cfg.dedicated_to.map(Sender::Replica)
            }
            LinkPeer::Accepted => None,
        };
        if target.is_some_and(|t| self.faults.is_crashed(t)) {
            return true;
        }
        // A crashed local replica endpoint must not keep dialing out.
        self.locals
            .read()
            .iter()
            .any(|(a, _)| matches!(a, Sender::Replica(_)) && self.faults.is_crashed(*a))
    }

    /// Tears down every live socket touching `node` (crash fault). Dialed
    /// links are *not* closed: `close_conn` requeues their unsent frames
    /// and re-enters the dialer, which stalls in backoff until the node
    /// recovers — so recovery rides the real reconnect path. Accepted
    /// (reverse) links are closed by `close_conn` itself; the remote
    /// re-dials and re-announces after its own recovery.
    fn teardown_sockets(&self, node: Sender) {
        let mut links: Vec<Arc<Link>> = Vec::new();
        let local = self.locals.read().iter().any(|(a, _)| *a == node);
        if local {
            // The node itself crashed: drop every connection it owns.
            links.extend(self.dialed.read().values().cloned());
            links.extend(self.dedicated.read().values().cloned());
            links.extend(self.reverse.read().values().cloned());
        } else {
            if let Sender::Replica(r) = node {
                if let Some(l) = self.dialed.read().get(&r.0) {
                    links.push(Arc::clone(l));
                }
                if self.cfg.dedicated_to == Some(r) {
                    links.extend(self.dedicated.read().values().cloned());
                }
            }
            if let Some(l) = self.reverse.read().get(&node) {
                links.push(Arc::clone(l));
            }
        }
        for link in links {
            if let Some((li, token)) = link.owner() {
                self.send_loop_cmd(li, LoopCmd::Close(token));
            }
        }
    }

    /// Routes one (possibly jitter-delayed) envelope: local mailboxes
    /// short-circuit the socket, everything else rides a link. Stats and
    /// fault decisions already happened at send time.
    fn dispatch_now(
        &self,
        from: Sender,
        to: Sender,
        msg: &SignedMessage,
        payload: &mut Option<Arc<Vec<u8>>>,
        reliable: bool,
    ) {
        if self.mailboxes.read().contains_key(&to) {
            self.deliver(to, msg.clone());
            return;
        }
        let Some(link) = self.route_to(from, to) else {
            self.stats.record_dropped();
            return;
        };
        // Send-side twin of the reader's MAX_FRAME guard: an envelope the
        // receiver is guaranteed to reject must not reach the wire — the
        // link would otherwise retry the same doomed frame through endless
        // reconnects, wedging it. Dropping it (counted) is the only
        // deliverable outcome.
        if msg.encoded_len() + MSG_HEADER_MAX > frame::MAX_FRAME {
            self.stats.record_dropped();
            return;
        }
        let shared = payload
            .get_or_insert_with(|| Arc::new(msg.encode()))
            .clone();
        // Replies to clients stay reliable even over the mesh path,
        // matching the pre-reactor backend.
        let reliable = reliable || matches!(to, Sender::Client(_));
        let policy = if reliable {
            PushPolicy::Reliable
        } else {
            PushPolicy::Gossip
        };
        self.push_link(
            &link,
            OutFrame::Msg {
                to,
                payload: shared,
                reliable,
            },
            policy,
        );
    }

    /// The HELLOs a freshly connected dialed link announces. A dedicated
    /// link announces exactly its one client; a shared link to replica `r`
    /// announces every local endpoint *except* clients whose dedicated
    /// link targets `r` (those announce themselves on their own
    /// connection — announcing them here too would flap the peer's
    /// latest-wins reverse route between the two sockets).
    fn hellos_for(&self, link: &Link) -> Vec<Sender> {
        match link.peer {
            LinkPeer::Dedicated { owner } => vec![owner],
            LinkPeer::Replica(r) => self
                .locals
                .read()
                .iter()
                .filter(|(_, dedicated)| *dedicated != Some(r))
                .map(|(addr, _)| *addr)
                .collect(),
            LinkPeer::Accepted => Vec::new(),
        }
    }
}

fn configure_stream(stream: &TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_nonblocking(true)
}

/// The single dialer thread: establishes outbound connections (blocking
/// `connect_timeout` — `std` has no nonblocking connect) from a deadline
/// queue with per-link exponential backoff, then hands each socket to an
/// event loop. Dials are serialized, so a cluster of unreachable peers
/// with filtered ports can delay each other by up to the connect timeout;
/// on loopback (and healthy networks) refusal is immediate.
fn dialer(inner: &Arc<TcpInner>, rx: &Receiver<DialRequest>) {
    let mut pending: Vec<(Instant, DialRequest)> = Vec::new();
    while !inner.is_shutdown() {
        let now = Instant::now();
        let mut next_due = now + inner.cfg.poll_interval;
        let mut i = 0;
        while i < pending.len() {
            if pending[i].0 <= now {
                let (_, req) = pending.swap_remove(i);
                attempt_dial(inner, req, &mut pending);
            } else {
                next_due = next_due.min(pending[i].0);
                i += 1;
            }
        }
        let wait = next_due
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        match rx.recv_timeout(wait) {
            Ok(req) => {
                let due = Instant::now() + req.delay;
                pending.push((due, req));
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

fn attempt_dial(
    inner: &Arc<TcpInner>,
    req: DialRequest,
    pending: &mut Vec<(Instant, DialRequest)>,
) {
    if req.link.is_closed() || inner.is_shutdown() {
        return;
    }
    if inner.dial_blocked(&req.link) {
        // A crash fault is pinning this link down; keep backing off so
        // recovery reconnects through the normal retry path.
        pending.push((
            Instant::now() + req.backoff,
            DialRequest {
                link: req.link,
                delay: req.backoff,
                backoff: (req.backoff * 2).min(inner.cfg.reconnect_max),
            },
        ));
        return;
    }
    let addr = req.link.addr.expect("dialed link has an address");
    match TcpStream::connect_timeout(&addr, inner.cfg.write_timeout) {
        Ok(stream) if configure_stream(&stream).is_ok() => {
            let li = inner.next_loop();
            inner.send_loop_cmd(
                li,
                LoopCmd::Adopt {
                    stream,
                    link: req.link,
                    dialed: true,
                },
            );
        }
        _ => {
            pending.push((
                Instant::now() + req.backoff,
                DialRequest {
                    link: req.link,
                    delay: req.backoff,
                    backoff: (req.backoff * 2).min(inner.cfg.reconnect_max),
                },
            ));
        }
    }
}

/// One reactor thread: owns a poller, a slab of connections, and (for
/// loop 0) the accept listener.
struct EventLoop {
    idx: usize,
    inner: Arc<TcpInner>,
    poller: Poller,
    conns: Slab,
    cmd_rx: Receiver<LoopCmd>,
    wake_rx: WakeReceiver,
    sleeping: Arc<AtomicBool>,
    listener: Option<TcpListener>,
}

impl EventLoop {
    fn run(mut self) {
        if self
            .poller
            .register(self.wake_rx.raw_fd(), WAKER_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        if let Some(listener) = &self.listener {
            if listener.set_nonblocking(true).is_err()
                || self
                    .poller
                    .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                    .is_err()
            {
                return;
            }
        }
        let mut events: Vec<Event> = Vec::new();
        loop {
            while let Ok(cmd) = self.cmd_rx.try_recv() {
                self.handle_cmd(cmd);
            }
            if self.inner.is_shutdown() {
                break;
            }
            // Sleep/wake protocol: publish "sleeping", then re-check the
            // command queue — a sender that enqueued after our check will
            // observe sleeping=true and wake us; one that enqueued before
            // is caught by this re-check.
            self.sleeping.store(true, Ordering::SeqCst);
            if !self.cmd_rx.is_empty() || self.inner.is_shutdown() {
                self.sleeping.store(false, Ordering::SeqCst);
                continue;
            }
            let res = self.poller.wait(&mut events, self.inner.cfg.poll_interval);
            self.sleeping.store(false, Ordering::SeqCst);
            if res.is_err() {
                break;
            }
            for &ev in &events {
                match ev.token {
                    WAKER_TOKEN => self.wake_rx.drain(),
                    LISTENER_TOKEN => self.accept_burst(),
                    token => self.conn_event(token, ev),
                }
            }
        }
        self.teardown_all();
    }

    fn handle_cmd(&mut self, cmd: LoopCmd) {
        match cmd {
            LoopCmd::Adopt {
                stream,
                link,
                dialed,
            } => self.adopt(stream, link, dialed),
            LoopCmd::Flush(token) => {
                // If write interest is registered the poller is already
                // driving this connection; a flush attempt would just
                // collect another WouldBlock.
                if let Some(conn) = self.conns.get_mut(token) {
                    if conn.want_write {
                        return;
                    }
                }
                self.flush_conn(token);
            }
            LoopCmd::Close(token) => self.close_conn(token),
        }
    }

    fn adopt(&mut self, stream: TcpStream, link: Arc<Link>, dialed: bool) {
        if self.inner.is_shutdown() || (dialed && link.is_closed()) {
            return; // dropping the stream closes it
        }
        let hellos = if dialed {
            self.inner.hellos_for(&link)
        } else {
            Vec::new()
        };
        let fd = stream.as_raw_fd();
        let token = self.conns.insert(Conn {
            stream,
            acc: FrameAccumulator::new(),
            link: Arc::clone(&link),
            pending: hellos
                .into_iter()
                .map(|from| PendingFrame::new(OutFrame::Hello(from)))
                .collect(),
            announced: Vec::new(),
            want_write: false,
            dialed,
        });
        if self.poller.register(fd, token, Interest::READ).is_err() {
            self.conns.remove(token);
            if dialed {
                self.inner.request_dial(link, self.inner.cfg.reconnect_min);
            }
            return;
        }
        link.bind(self.idx, token);
        self.inner.open_conns.fetch_add(1, Ordering::Relaxed);
        self.flush_conn(token);
    }

    fn accept_burst(&mut self) {
        loop {
            let accepted = match &self.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    if configure_stream(&stream).is_err() {
                        continue;
                    }
                    let link = Link::new(
                        LinkPeer::Accepted,
                        None,
                        self.inner.cfg.client_queue_capacity,
                    );
                    // Spread accepted connections across all loops; the
                    // command is drained at the top of each iteration, so
                    // self-assignment works too.
                    let li = self.inner.next_loop();
                    self.inner.send_loop_cmd(
                        li,
                        LoopCmd::Adopt {
                            stream,
                            link,
                            dialed: false,
                        },
                    );
                }
                Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // Transient accept failure (e.g. EMFILE): level-triggered
                // polling retries on the next tick.
                Err(_) => return,
            }
        }
    }

    fn conn_event(&mut self, token: usize, ev: Event) {
        let dead = if let Some(conn) = self.conns.get_mut(token) {
            // A pure hangup (no pending bytes) kills the connection; if
            // it is also readable, drain first so the final frames are
            // not lost, and let the read error/EOF report the death.
            let dead = (ev.hangup && !ev.readable)
                || (ev.readable && read_burst(&self.inner, conn).is_err());
            if !dead && ev.writable {
                self.flush_conn(token);
                return;
            }
            dead
        } else {
            return; // torn down earlier in this batch
        };
        if dead {
            self.close_conn(token);
        }
    }

    /// Drains the connection's link through vectored writes until the
    /// socket blocks or the queue is empty, maintaining write interest
    /// and the link's armed flag.
    fn flush_conn(&mut self, token: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            if conn.pending.len() < MAX_WRITE_FRAMES {
                let room = REFILL_BATCH - conn.pending.len().min(REFILL_BATCH);
                conn.link.drain_into(&mut conn.pending, room);
            }
            if conn.pending.is_empty() {
                if conn.link.disarm_if_empty() {
                    if conn.want_write {
                        conn.want_write = false;
                        let fd = conn.stream.as_raw_fd();
                        let _ = self.poller.reregister(fd, token, Interest::READ);
                    }
                    return;
                }
                continue; // frames landed between drain and disarm
            }
            match write_pending(conn) {
                Ok(true) => {
                    // Socket is full: register write interest and let the
                    // poller resume us. The link stays armed — senders
                    // need not notify while the kernel drives the flush.
                    if !conn.want_write {
                        conn.want_write = true;
                        let fd = conn.stream.as_raw_fd();
                        let _ = self.poller.reregister(fd, token, Interest::READ_WRITE);
                    }
                    return;
                }
                Ok(false) => continue,
                // Write error: fall through to teardown (the only way out
                // of the loop other than return).
                Err(_) => break,
            }
        }
        self.close_conn(token);
    }

    /// Eagerly reclaims a dead connection: poller slot, slab slot, gauge,
    /// reverse routes; requeues + redials for dialed links, closes
    /// accepted links so senders stop routing to them.
    fn close_conn(&mut self, token: usize) {
        let Some(conn) = self.conns.remove(token) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        self.inner.open_conns.fetch_sub(1, Ordering::Relaxed);
        conn.link.unbind(self.idx, token);
        if !conn.announced.is_empty() {
            let mut reverse = self.inner.reverse.write();
            for addr in &conn.announced {
                if reverse
                    .get(addr)
                    .is_some_and(|l| Arc::ptr_eq(l, &conn.link))
                {
                    reverse.remove(addr);
                }
            }
        }
        if conn.dialed {
            // A partially written frame is safe to resend in full: the
            // receiver saw a truncated frame and discarded the connection
            // state with it.
            let unsent: Vec<OutFrame> = conn.pending.into_iter().map(|pf| pf.frame).collect();
            conn.link.requeue_front(unsent);
            if !conn.link.is_closed() && !self.inner.is_shutdown() {
                self.inner
                    .request_dial(conn.link, self.inner.cfg.reconnect_min);
            }
        } else {
            conn.link.close();
        }
    }

    fn teardown_all(&mut self) {
        for token in self.conns.tokens() {
            self.close_conn(token);
        }
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
    }
}

/// Parses inbound frames until the socket would block (bounded per event;
/// level-triggered polling re-reports leftover readability).
fn read_burst(inner: &Arc<TcpInner>, conn: &mut Conn) -> io::Result<()> {
    for _ in 0..MAX_READ_FRAMES {
        match conn.acc.poll(&mut (&conn.stream)) {
            Ok(Some(body)) => handle_frame(inner, conn, &body)?,
            Ok(None) => return Ok(()),
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn handle_frame(inner: &Arc<TcpInner>, conn: &mut Conn, body: &[u8]) -> io::Result<()> {
    match frame::parse_frame(body)? {
        Frame::Hello(from) => {
            // Latest announcement wins: a restarted client's new
            // connection replaces the stale route. Only accepted links
            // are closed when replaced — a shared dialed link may carry
            // other endpoints' traffic and must survive.
            if let Some(old) = inner.reverse.write().insert(from, Arc::clone(&conn.link)) {
                if !Arc::ptr_eq(&old, &conn.link) && old.peer == LinkPeer::Accepted {
                    old.close();
                }
            }
            conn.announced.push(from);
        }
        Frame::Msg { to, msg } => inner.deliver(to, msg),
    }
    Ok(())
}

/// Writes a vectored burst from the pending list. Returns `Ok(true)` if
/// the socket blocked, `Ok(false)` if progress was made.
fn write_pending(conn: &mut Conn) -> io::Result<bool> {
    let mut slices: Vec<IoSlice<'_>> =
        Vec::with_capacity(2 * conn.pending.len().min(MAX_WRITE_FRAMES));
    for (i, pf) in conn.pending.iter().take(MAX_WRITE_FRAMES).enumerate() {
        let mut off = if i == 0 { pf.written } else { 0 };
        if off < pf.head.len() {
            slices.push(IoSlice::new(&pf.head[off..]));
            off = 0;
        } else {
            off -= pf.head.len();
        }
        if let Some(payload) = &pf.payload {
            if off < payload.len() {
                slices.push(IoSlice::new(&payload[off..]));
            }
        }
    }
    match (&conn.stream).write_vectored(&slices) {
        Ok(0) => Err(io::ErrorKind::WriteZero.into()),
        Ok(mut n) => {
            while n > 0 {
                let pf = conn
                    .pending
                    .front_mut()
                    .expect("wrote more bytes than were pending");
                let remaining = pf.total_len() - pf.written;
                if n >= remaining {
                    n -= remaining;
                    conn.pending.pop_front();
                } else {
                    pf.written += n;
                    n = 0;
                }
            }
            Ok(false)
        }
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(true),
        Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(false),
        Err(e) => Err(e),
    }
}

/// Binds a listener with `SO_REUSEADDR` set, so a replica restarted onto
/// its old address does not trip over the TIME_WAIT sockets its killed
/// predecessor left behind (std's `TcpListener::bind` leaves the option
/// off, which makes a quick kill-and-restart fail with `EADDRINUSE` for
/// up to a minute). Non-IPv4 addresses and non-Linux targets fall back
/// to the std bind.
#[cfg(target_os = "linux")]
fn bind_reuseaddr(addr: SocketAddr) -> io::Result<TcpListener> {
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::FromRawFd;

    let SocketAddr::V4(v4) = addr else {
        return TcpListener::bind(addr);
    };

    const AF_INET: c_int = 2;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;

    /// Mirrors the kernel's `struct sockaddr_in` (16 bytes, no padding).
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        /// Network byte order.
        port: u16,
        /// Network byte order.
        addr: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: u32,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const SockaddrIn, len: u32) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    // SAFETY: plain syscalls on a socket fd this function owns until it
    // is wrapped into a TcpListener (or closed on the error paths).
    let fd = unsafe { socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    let fail = |fd: c_int| -> io::Error {
        let e = io::Error::last_os_error();
        unsafe { close(fd) };
        e
    };
    let one: c_int = 1;
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_REUSEADDR,
            (&one as *const c_int).cast(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(fail(fd));
    }
    let sa = SockaddrIn {
        family: AF_INET as u16,
        port: v4.port().to_be(),
        addr: u32::from(*v4.ip()).to_be(),
        zero: [0; 8],
    };
    if unsafe { bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) } < 0 {
        return Err(fail(fd));
    }
    if unsafe { listen(fd, 1024) } < 0 {
        return Err(fail(fd));
    }
    Ok(unsafe { TcpListener::from_raw_fd(fd) })
}

#[cfg(not(target_os = "linux"))]
fn bind_reuseaddr(addr: SocketAddr) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

/// A TCP-backed [`Transport`]: one instance per OS process/node.
///
/// Call [`TcpTransport::shutdown`] (or `NetHandle::shutdown`) when done —
/// background threads hold the transport alive until then.
#[derive(Clone)]
pub struct TcpTransport {
    inner: Arc<TcpInner>,
}

impl fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TcpTransport")
            .field("listen", &self.inner.local_addr)
            .field("peers", &self.inner.cfg.peers.len())
            .field("event_loops", &self.inner.cfg.event_loops)
            .finish()
    }
}

impl TcpTransport {
    /// Starts a transport, binding the listener named in `cfg.listen` (if
    /// any) and spawning the reactor threads.
    ///
    /// # Errors
    /// Returns the bind error if the listen address is taken or invalid.
    pub fn new(cfg: TcpConfig) -> io::Result<TcpTransport> {
        let listener = match cfg.listen {
            Some(addr) => Some(bind_reuseaddr(addr)?),
            None => None,
        };
        Ok(Self::with_listener(cfg, listener))
    }

    /// Starts a transport over a pre-bound listener (or none). Useful when
    /// ports are allocated by the OS first (`127.0.0.1:0`) and the peer
    /// map is assembled from the actual bound addresses.
    pub fn with_listener(cfg: TcpConfig, listener: Option<TcpListener>) -> TcpTransport {
        let local_addr = listener.as_ref().and_then(|l| l.local_addr().ok());
        let loops_n = cfg.event_loops.max(1);
        let inner = Arc::new(TcpInner {
            cfg,
            local_addr,
            mailboxes: RwLock::new(HashMap::new()),
            locals: RwLock::new(Vec::new()),
            dialed: RwLock::new(HashMap::new()),
            dedicated: RwLock::new(HashMap::new()),
            reverse: RwLock::new(HashMap::new()),
            loops: OnceLock::new(),
            dial_tx: OnceLock::new(),
            stats: NetworkStats::new(),
            faults: FaultController::new(),
            shutdown: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            rr: AtomicUsize::new(0),
            threads: Mutex::new(Vec::new()),
            delay: Mutex::new(DelayState::default()),
            delay_signal: Condvar::new(),
            delay_started: std::sync::Once::new(),
        });
        // Crash faults tear real sockets down (recovery then re-dials);
        // the listener holds a weak ref so the controller never keeps the
        // transport alive.
        let weak = Arc::downgrade(&inner);
        inner.faults.add_listener(Arc::new(move |node, down| {
            if down {
                if let Some(inner) = weak.upgrade() {
                    inner.teardown_sockets(node);
                }
            }
        }));
        let mut handles = Vec::with_capacity(loops_n);
        let mut threads = Vec::with_capacity(loops_n + 1);
        let mut listener = listener;
        for idx in 0..loops_n {
            let (cmd_tx, cmd_rx) = channel::unbounded();
            let (waker, wake_rx) = crate::reactor::wake_pair().expect("create reactor wake pipe");
            let sleeping = Arc::new(AtomicBool::new(false));
            handles.push(LoopHandle {
                cmd_tx,
                waker,
                sleeping: Arc::clone(&sleeping),
            });
            let ev_loop = EventLoop {
                idx,
                inner: Arc::clone(&inner),
                poller: Poller::new().expect("create reactor poller"),
                conns: Slab::default(),
                cmd_rx,
                wake_rx,
                sleeping,
                listener: listener.take(), // loop 0 gets the listener
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("tcp-loop-{idx}"))
                    .spawn(move || ev_loop.run())
                    .expect("spawn tcp event loop"),
            );
        }
        inner.loops.set(handles).ok().expect("loops set once");
        let (dial_tx, dial_rx) = channel::unbounded();
        inner.dial_tx.set(dial_tx).expect("dialer set once");
        let dial_inner = Arc::clone(&inner);
        threads.push(
            std::thread::Builder::new()
                .name("tcp-dialer".into())
                .spawn(move || dialer(&dial_inner, &dial_rx))
                .expect("spawn tcp dialer"),
        );
        *inner.threads.lock() = threads;
        TcpTransport { inner }
    }

    /// Binds `n` ephemeral loopback listeners and returns the resulting
    /// peer map plus the listeners (pass each to
    /// [`TcpTransport::with_listener`] via its replica's config).
    ///
    /// # Errors
    /// Returns the first bind error.
    pub fn bind_loopback_cluster(n: usize) -> io::Result<(PeerMap, Vec<TcpListener>)> {
        let mut peers = PeerMap::new();
        let mut listeners = Vec::with_capacity(n);
        for i in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")?;
            peers.insert(ReplicaId(i as u32), listener.local_addr()?);
            listeners.push(listener);
        }
        Ok((peers, listeners))
    }

    /// The actually bound listen address, if this transport listens.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.inner.local_addr
    }

    /// Live sockets currently owned by this transport's event loops —
    /// the observable for connection-reclamation tests and swarm sizing.
    pub fn open_connections(&self) -> usize {
        self.inner.open_conns.load(Ordering::Relaxed)
    }

    /// A [`NetHandle`] over this transport.
    pub fn handle(&self) -> NetHandle {
        NetHandle::new(Arc::new(self.clone()))
    }

    /// Registers `addr`, returning its endpoint (convenience mirroring the
    /// in-memory backend).
    ///
    /// # Panics
    /// Panics if `addr` is already registered on this transport.
    pub fn register(&self, addr: Sender) -> Endpoint {
        self.handle().register(addr)
    }

    /// The shared fault controller (send-side evaluation).
    pub fn faults(&self) -> &FaultController {
        &self.inner.faults
    }

    /// The shared delivery statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.inner.stats
    }

    /// Routes one envelope to one destination: local mailboxes
    /// short-circuit the socket entirely (a transport can host several
    /// endpoints; self-sends behave like in-memory), everything else
    /// goes through a peer link. `payload` memoizes the serialized bytes
    /// so a broadcast encodes once no matter how many link destinations.
    /// `reliable` marks client-path traffic that must never be shed.
    ///
    /// The one copy of the stats/fault/routing sequence shared by
    /// `send_from`, `broadcast_from` and `send_direct`.
    fn dispatch_one(
        &self,
        from: Sender,
        to: Sender,
        msg: &SignedMessage,
        payload: &mut Option<Arc<Vec<u8>>>,
        reliable: bool,
    ) -> Result<(), NetworkError> {
        let local = self.inner.mailboxes.read().contains_key(&to);
        if !local && self.inner.route_to(from, to).is_none() {
            self.inner.stats.record_dropped();
            return Err(NetworkError::UnknownDestination(format!("{to:?}")));
        }
        self.inner.stats.record_sent(msg.kind(), msg.encoded_len());
        if self.inner.faults.should_drop(from, to) {
            self.inner.stats.record_dropped();
            return Ok(()); // silently dropped, like a real network
        }
        // Fault-injected jitter parks the envelope on the delay heap; it
        // re-routes when due (links may have churned meanwhile).
        if let Some(extra) = self.inner.faults.delay_for(from, to) {
            self.delay_dispatch(from, to, msg.clone(), reliable, extra);
            return Ok(());
        }
        self.inner.dispatch_now(from, to, msg, payload, reliable);
        Ok(())
    }

    /// Parks one envelope on the delay heap and ensures the delay thread
    /// is running.
    fn delay_dispatch(
        &self,
        from: Sender,
        to: Sender,
        msg: SignedMessage,
        reliable: bool,
        extra: Duration,
    ) {
        let weak = Arc::downgrade(&self.inner);
        self.inner.delay_started.call_once(move || {
            let _ = std::thread::Builder::new()
                .name("tcp-delay".into())
                .spawn(move || {
                    while let Some(inner) = weak.upgrade() {
                        if inner.is_shutdown() {
                            return;
                        }
                        let mut due_msgs = Vec::new();
                        {
                            let mut st = inner.delay.lock();
                            let now = Instant::now();
                            while st.heap.peek().is_some_and(|e| e.due <= now) {
                                due_msgs.push(st.heap.pop().expect("peeked entry exists"));
                            }
                            if due_msgs.is_empty() {
                                let wait = match st.heap.peek().map(|e| e.due) {
                                    Some(due) => due.saturating_duration_since(Instant::now()),
                                    None => Duration::from_millis(50),
                                };
                                inner.delay_signal.wait_for(&mut st, wait);
                            }
                        }
                        for e in due_msgs {
                            inner.dispatch_now(e.from, e.to, &e.msg, &mut None, e.reliable);
                        }
                        drop(inner);
                    }
                });
        });
        let mut st = self.inner.delay.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(DelayEntry {
            due: Instant::now() + extra,
            seq,
            from,
            to,
            msg,
            reliable,
        });
        self.inner.delay_signal.notify_one();
    }

    /// Stops the reactor threads and the dialer, and joins them.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        for link in self.inner.dialed.read().values() {
            link.close();
        }
        for link in self.inner.dedicated.read().values() {
            link.close();
        }
        for link in self.inner.reverse.read().values() {
            link.close();
        }
        for h in self.inner.loops() {
            h.waker.wake();
        }
        let handles: Vec<JoinHandle<()>> = self.inner.threads.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

impl MeshTransport for TcpTransport {
    fn send_from(&self, from: Sender, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        self.dispatch_one(from, to, &msg, &mut None, false)
    }

    fn broadcast_from(
        &self,
        from: Sender,
        to: &[Sender],
        msg: &SignedMessage,
    ) -> Result<(), NetworkError> {
        // Encode once, lazily: a broadcast that is entirely dropped by
        // fault injection never serializes at all, and n live peers share
        // one buffer.
        let mut payload: Option<Arc<Vec<u8>>> = None;
        let mut first_err = None;
        for &dest in to {
            if dest == from {
                continue; // no self-delivery on broadcast
            }
            if let Err(e) = self.dispatch_one(from, dest, msg, &mut payload, false) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl ClientTransport for TcpTransport {
    fn send_direct(
        &self,
        from: Sender,
        to: Sender,
        msg: SignedMessage,
    ) -> Result<(), NetworkError> {
        self.dispatch_one(from, to, &msg, &mut None, true)
    }
}

impl Transport for TcpTransport {
    fn register_mailbox(&self, addr: Sender) -> Receiver<SignedMessage> {
        let (tx, rx) = channel::unbounded();
        let prev = self.inner.mailboxes.write().insert(addr, tx);
        assert!(prev.is_none(), "address {addr:?} registered twice");
        // Swarm mode: this client gets its own connection to the primary.
        let dedicated_target = match (self.inner.cfg.dedicated_to, addr) {
            (Some(t), Sender::Client(_)) if self.inner.cfg.peers.get(t).is_some() => Some(t),
            _ => None,
        };
        self.inner.locals.write().push((addr, dedicated_target));
        if let Some(target) = dedicated_target {
            let link = Link::new(
                LinkPeer::Dedicated { owner: addr },
                self.inner.cfg.peers.get(target),
                self.inner.cfg.client_queue_capacity,
            );
            self.inner.dedicated.write().insert(addr, Arc::clone(&link));
            self.inner.request_dial(link, Duration::ZERO);
        }
        // A client eagerly dials every replica and announces itself, so
        // replicas it has never messaged (PBFT backups replying to a
        // request sent only to the primary) still have a reply route.
        // The dedicated target (if any) is skipped: its own connection
        // announces the endpoint at adoption.
        if matches!(addr, Sender::Client(_)) {
            let peers: Vec<(ReplicaId, SocketAddr)> = self.inner.cfg.peers.iter().collect();
            for (id, peer_addr) in peers {
                if Some(id) == dedicated_target {
                    continue;
                }
                let link = self.inner.dialed_link(id, peer_addr);
                self.inner
                    .push_link(&link, OutFrame::Hello(addr), PushPolicy::Reliable);
            }
        }
        rx
    }

    fn deregister(&self, addr: Sender) {
        self.inner.mailboxes.write().remove(&addr);
        self.inner.locals.write().retain(|(a, _)| *a != addr);
        // Eagerly reclaim the dedicated connection (swarm churn): close
        // the link so senders stop using it, then tell the owning loop to
        // tear the socket down now rather than at peer-side EOF.
        if let Some(link) = self.inner.dedicated.write().remove(&addr) {
            link.close();
            if let Some((li, token)) = link.owner() {
                self.inner.send_loop_cmd(li, LoopCmd::Close(token));
            }
        }
    }

    fn stats(&self) -> &NetworkStats {
        &self.inner.stats
    }

    fn faults(&self) -> &FaultController {
        &self.inner.faults
    }

    fn shutdown(&self) {
        TcpTransport::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::messages::Message;
    use rdb_common::{ClientId, SignatureBytes};

    fn r(i: u32) -> Sender {
        Sender::Replica(ReplicaId(i))
    }

    fn msg(from: Sender) -> SignedMessage {
        SignedMessage::new(
            Message::ClientRequest { txns: vec![] },
            from,
            SignatureBytes(vec![3; 8]),
        )
    }

    /// Two replica transports wired through a loopback peer map.
    fn pair() -> (TcpTransport, TcpTransport) {
        let (peers, mut listeners) = TcpTransport::bind_loopback_cluster(2).unwrap();
        let t1 = TcpTransport::with_listener(
            TcpConfig {
                peers: peers.clone(),
                ..TcpConfig::default()
            },
            Some(listeners.remove(1)),
        );
        let t0 = TcpTransport::with_listener(
            TcpConfig {
                peers,
                ..TcpConfig::default()
            },
            Some(listeners.remove(0)),
        );
        (t0, t1)
    }

    /// A restarted replica must rebind its old address immediately even
    /// though the predecessor's served connections left TIME_WAIT
    /// sockets on the same local port (the kill-and-restart path of the
    /// durable-recovery smoke test).
    #[test]
    fn rebind_survives_time_wait_from_a_served_connection() {
        let listener = bind_reuseaddr("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (served, _) = listener.accept().unwrap();
        // Server closes first: its side of the connection ends up owning
        // the port in FIN_WAIT/TIME_WAIT.
        drop(served);
        drop(listener);
        drop(client);
        bind_reuseaddr(addr).expect("rebind onto the lingering port");
    }

    #[test]
    fn replica_to_replica_over_sockets() {
        let (t0, t1) = pair();
        let a = t0.register(r(0));
        let b = t1.register(r(1));
        a.send(r(1), msg(r(0))).unwrap();
        let got = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.sender(), r(0));
        assert_eq!(t0.stats().total_sent(), 1);
        // The mailbox push happens before the counter bump, so the recv
        // above can race ahead of the event loop's record_delivered.
        let deadline = Instant::now() + Duration::from_secs(5);
        while t1.stats().total_delivered() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(t1.stats().total_delivered(), 1);
        t0.shutdown();
        t1.shutdown();
    }

    #[test]
    fn crash_tears_down_socket_and_recover_redials() {
        let (t0, t1) = pair();
        let a = t0.register(r(0));
        let b = t1.register(r(1));
        a.send(r(1), msg(r(0))).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(5)).is_ok());
        let connected = |t: &TcpTransport| t.open_connections() > 0;
        assert!(connected(&t0), "send established a dialed connection");

        // Crash the remote: the dialed socket must actually close, and
        // the dialer must not re-establish it while the fault holds.
        t0.faults().crash(r(1));
        let deadline = Instant::now() + Duration::from_secs(5);
        while t0.open_connections() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(t0.open_connections(), 0, "crash must tear the socket down");
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(t0.open_connections(), 0, "no redial while crashed");

        // Recovery rides the reconnect/backoff path and traffic flows
        // again over a fresh socket.
        t0.faults().recover(r(1));
        a.send(r(1), msg(r(0))).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while Instant::now() < deadline {
            if b.recv_timeout(Duration::from_millis(200)).is_ok() {
                delivered = true;
                break;
            }
            // The torn-down frame may have been requeued before the drop
            // filter engaged; keep nudging.
            let _ = a.send(r(1), msg(r(0)));
        }
        assert!(delivered, "recovered link must deliver over a new socket");
        t0.shutdown();
        t1.shutdown();
    }

    #[test]
    fn delay_jitter_defers_socket_delivery() {
        let (t0, t1) = pair();
        let a = t0.register(r(0));
        let b = t1.register(r(1));
        t0.faults().set_seed(3);
        t0.faults().set_delay_jitter(Duration::from_millis(80));
        let start = Instant::now();
        for _ in 0..8 {
            a.send(r(1), msg(r(0))).unwrap();
        }
        for _ in 0..8 {
            assert!(b.recv_timeout(Duration::from_secs(5)).is_ok());
        }
        // At least one of 8 uniform draws from [0, 80ms) lands late
        // enough that the batch cannot complete instantly.
        assert!(
            start.elapsed() >= Duration::from_millis(10),
            "jitter must defer delivery, elapsed {:?}",
            start.elapsed()
        );
        t0.shutdown();
        t1.shutdown();
    }

    #[test]
    fn client_reply_routes_over_reverse_link() {
        let (t0, t1) = pair();
        let replica = t0.register(r(0));
        let client_net =
            TcpTransport::new(TcpConfig::for_client(t0.inner.cfg.peers.clone())).unwrap();
        let client = client_net.register(Sender::Client(ClientId(7)));
        // Client → replica over a dialed link…
        client.send(r(0), msg(Sender::Client(ClientId(7)))).unwrap();
        let got = replica.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(got.sender(), Sender::Client(ClientId(7)));
        // …and the replica can reply without the client being in any map,
        // even though the client never listens.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match replica.send(Sender::Client(ClientId(7)), msg(r(0))) {
                Ok(()) => break,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("no reverse route established: {e}"),
            }
        }
        assert!(client.recv_timeout(Duration::from_secs(5)).is_ok());
        t0.shutdown();
        t1.shutdown();
        client_net.shutdown();
    }

    #[test]
    fn local_endpoints_short_circuit() {
        let t = TcpTransport::new(TcpConfig::default()).unwrap();
        let a = t.register(Sender::Client(ClientId(1)));
        let b = t.register(Sender::Client(ClientId(2)));
        a.send(
            Sender::Client(ClientId(2)),
            msg(Sender::Client(ClientId(1))),
        )
        .unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
        t.shutdown();
    }

    #[test]
    fn unknown_destination_errors() {
        let t = TcpTransport::new(TcpConfig::default()).unwrap();
        let a = t.register(r(0));
        assert!(matches!(
            a.send(Sender::Client(ClientId(99)), msg(r(0))),
            Err(NetworkError::UnknownDestination(_))
        ));
        t.shutdown();
    }

    #[test]
    fn gossip_overflow_sheds_messages_never_hellos() {
        let stats = NetworkStats::new();
        let link = Link::new(LinkPeer::Accepted, None, 2);
        link.push(
            OutFrame::Hello(Sender::Client(ClientId(1))),
            PushPolicy::Reliable,
            &stats,
        );
        let msg_frame = |b: u8| OutFrame::Msg {
            to: r(1),
            payload: Arc::new(vec![b]),
            reliable: false,
        };
        link.push(msg_frame(1), PushPolicy::Gossip, &stats);
        // Queue is at capacity: the overflow victim must be the Msg, not
        // the routing announcement sitting in front of it.
        link.push(msg_frame(2), PushPolicy::Gossip, &stats);
        assert_eq!(stats.dropped(), 1);
        let s = link.state.lock();
        assert_eq!(s.frames.len(), 2);
        assert!(matches!(s.frames[0], OutFrame::Hello(_)));
        match &s.frames[1] {
            OutFrame::Msg { payload, .. } => assert_eq!(***payload, vec![2]),
            other => panic!(
                "expected msg frame, got hello={}",
                matches!(other, OutFrame::Hello(_))
            ),
        }
    }

    #[test]
    fn reliable_overflow_sheds_gossip_to_make_room() {
        let stats = NetworkStats::new();
        let link = Link::new(LinkPeer::Accepted, None, 1);
        let frame = |reliable| OutFrame::Msg {
            to: r(1),
            payload: Arc::new(vec![0]),
            reliable,
        };
        link.push(frame(false), PushPolicy::Gossip, &stats);
        // The reliable push must not block: the queued gossip frame is
        // sheddable and yields its slot.
        link.push(frame(true), PushPolicy::Reliable, &stats);
        assert_eq!(stats.dropped(), 1);
        let s = link.state.lock();
        assert_eq!(s.frames.len(), 1);
        assert!(matches!(s.frames[0], OutFrame::Msg { reliable: true, .. }));
    }

    #[test]
    fn dedicated_mode_uses_one_connection_per_client() {
        let (peers, mut listeners) = TcpTransport::bind_loopback_cluster(1).unwrap();
        let server = TcpTransport::with_listener(
            TcpConfig {
                peers: peers.clone(),
                ..TcpConfig::default()
            },
            Some(listeners.remove(0)),
        );
        let replica = server.register(r(0));
        let swarm = TcpTransport::new(TcpConfig::for_swarm(peers, ReplicaId(0))).unwrap();
        let c1 = swarm.register(Sender::Client(ClientId(1)));
        let c2 = swarm.register(Sender::Client(ClientId(2)));
        c1.send(r(0), msg(Sender::Client(ClientId(1)))).unwrap();
        c2.send(r(0), msg(Sender::Client(ClientId(2)))).unwrap();
        for _ in 0..2 {
            replica.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        // One dedicated socket per client on the swarm side (and no
        // shared link: the only replica is the dedicated target).
        let deadline = Instant::now() + Duration::from_secs(5);
        while swarm.open_connections() != 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(swarm.open_connections(), 2);
        // Replies route over each client's own connection.
        replica
            .send(Sender::Client(ClientId(1)), msg(r(0)))
            .unwrap();
        replica
            .send(Sender::Client(ClientId(2)), msg(r(0)))
            .unwrap();
        assert!(c1.recv_timeout(Duration::from_secs(5)).is_ok());
        assert!(c2.recv_timeout(Duration::from_secs(5)).is_ok());
        // Deregistering reclaims the dedicated socket eagerly.
        drop(c1);
        swarm.handle().deregister(Sender::Client(ClientId(1)));
        let deadline = Instant::now() + Duration::from_secs(5);
        while swarm.open_connections() != 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(swarm.open_connections(), 1);
        server.shutdown();
        swarm.shutdown();
    }

    #[test]
    fn shutdown_joins_threads_quickly() {
        let (t0, t1) = pair();
        let _a = t0.register(r(0));
        let _b = t1.register(r(1));
        let start = Instant::now();
        t0.shutdown();
        t1.shutdown();
        assert!(start.elapsed() < Duration::from_secs(10));
    }
}
