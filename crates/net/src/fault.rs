//! Fault injection: crashes, probabilistic drops, delay jitter, and
//! partitions.
//!
//! Drop and delay decisions are deterministic: each directed link keeps
//! its own message counter, and the decision for message `k` on link
//! `(from, to)` is a pure hash of `(seed, from, to, k)`. Because every
//! transport evaluates a link's messages in send order, a scenario with
//! a fixed seed makes the same drop/delay choices run after run, no
//! matter how OS threads interleave across links — unlike the old
//! shared global counter, whose decisions depended on cross-thread
//! arrival order.

use parking_lot::RwLock;
use rdb_common::messages::Sender;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Callback invoked when a node is crashed or recovered via the
/// controller. Transports register one to mirror the logical fault onto
/// physical resources (e.g. tearing down TCP sockets so recovery
/// exercises the reconnect path).
pub type FaultListener = Arc<dyn Fn(Sender, bool) + Send + Sync>;

/// Controls which messages the network discards or delays.
///
/// Cloneable handle; all clones share state, so tests can hold the
/// controller while the system holds the network.
#[derive(Debug, Default, Clone)]
pub struct FaultController {
    inner: Arc<FaultInner>,
}

#[derive(Default)]
struct FaultInner {
    crashed: RwLock<HashSet<Sender>>,
    /// Pairs (a, b) that cannot communicate, stored in both directions.
    severed: RwLock<HashSet<(Sender, Sender)>>,
    /// Drop probability in units of 1/10000 (0 = reliable).
    drop_per_10k: AtomicU64,
    /// Maximum extra one-way delay in microseconds (0 = none).
    delay_jitter_us: AtomicU64,
    /// Scenario seed mixed into every drop/delay hash.
    seed: AtomicU64,
    /// Per-directed-link message counters driving the decision hashes.
    links: RwLock<HashMap<(Sender, Sender), Arc<LinkCounters>>>,
    /// Crash/recover observers (socket teardown, logging, ...).
    listeners: RwLock<Vec<FaultListener>>,
}

impl std::fmt::Debug for FaultInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInner")
            .field("crashed", &self.crashed.read().len())
            .field("severed", &self.severed.read().len())
            .field("drop_per_10k", &self.drop_per_10k.load(Ordering::Relaxed))
            .field(
                "delay_jitter_us",
                &self.delay_jitter_us.load(Ordering::Relaxed),
            )
            .field("seed", &self.seed.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[derive(Debug, Default)]
struct LinkCounters {
    drop_seq: AtomicU64,
    delay_seq: AtomicU64,
}

/// SplitMix64 finalizer: a full-avalanche mix of one 64-bit word.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Packs a sender into a distinct 64-bit tag (replica ids and client
/// ids occupy disjoint ranges).
fn sender_tag(s: Sender) -> u64 {
    match s {
        Sender::Replica(id) => id.0 as u64,
        Sender::Client(id) => (1u64 << 32) | id.0,
    }
}

impl FaultInner {
    fn link(&self, from: Sender, to: Sender) -> Arc<LinkCounters> {
        if let Some(c) = self.links.read().get(&(from, to)) {
            return Arc::clone(c);
        }
        Arc::clone(self.links.write().entry((from, to)).or_default())
    }

    /// Pure decision hash for message `seq` on the directed link.
    fn link_hash(&self, from: Sender, to: Sender, seq: u64) -> u64 {
        let seed = self.seed.load(Ordering::Relaxed);
        let key = mix64(sender_tag(from).wrapping_mul(0x517c_c1b7_2722_0a95) ^ sender_tag(to));
        mix64(seed ^ key ^ seq.wrapping_mul(0x2545_f491_4f6c_dd1d))
    }
}

impl FaultController {
    /// Creates a controller with no faults active.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the scenario seed mixed into every drop/delay decision.
    /// Changing the seed replays a different — but equally
    /// deterministic — fault pattern.
    pub fn set_seed(&self, seed: u64) {
        self.inner.seed.store(seed, Ordering::Relaxed);
    }

    /// Registers a crash/recover observer. The callback receives the
    /// node and `true` on crash / `false` on recovery, synchronously
    /// under the caller of [`crash`](Self::crash) /
    /// [`recover`](Self::recover).
    pub fn add_listener(&self, listener: FaultListener) {
        self.inner.listeners.write().push(listener);
    }

    /// Crashes `node`: all traffic to and from it is discarded until
    /// [`FaultController::recover`].
    pub fn crash(&self, node: Sender) {
        let newly = self.inner.crashed.write().insert(node);
        if newly {
            let listeners: Vec<_> = self.inner.listeners.read().clone();
            for l in listeners {
                l(node, true);
            }
        }
    }

    /// Recovers a crashed node.
    pub fn recover(&self, node: Sender) {
        let was = self.inner.crashed.write().remove(&node);
        if was {
            let listeners: Vec<_> = self.inner.listeners.read().clone();
            for l in listeners {
                l(node, false);
            }
        }
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: Sender) -> bool {
        self.inner.crashed.read().contains(&node)
    }

    /// Number of currently crashed nodes.
    pub fn crashed_count(&self) -> usize {
        self.inner.crashed.read().len()
    }

    /// Severs the link between `a` and `b` in both directions.
    pub fn sever(&self, a: Sender, b: Sender) {
        let mut s = self.inner.severed.write();
        s.insert((a, b));
        s.insert((b, a));
    }

    /// Heals the link between `a` and `b`.
    pub fn heal(&self, a: Sender, b: Sender) {
        let mut s = self.inner.severed.write();
        s.remove(&(a, b));
        s.remove(&(b, a));
    }

    /// Partitions the membership into two groups that cannot talk across
    /// the cut.
    pub fn partition(&self, group_a: &[Sender], group_b: &[Sender]) {
        for &a in group_a {
            for &b in group_b {
                self.sever(a, b);
            }
        }
    }

    /// Heals every severed link.
    pub fn heal_all(&self) {
        self.inner.severed.write().clear();
    }

    /// Sets a uniform message-drop probability (0.0 ..= 1.0).
    pub fn set_drop_rate(&self, rate: f64) {
        let per_10k = (rate.clamp(0.0, 1.0) * 10_000.0) as u64;
        self.inner.drop_per_10k.store(per_10k, Ordering::Relaxed);
    }

    /// Sets the maximum extra one-way delay applied per message.
    /// Each message on a link draws a deterministic uniform delay in
    /// `[0, max)`; zero disables jitter.
    pub fn set_delay_jitter(&self, max: Duration) {
        self.inner
            .delay_jitter_us
            .store(max.as_micros() as u64, Ordering::Relaxed);
    }

    /// The deterministic extra delay for the next message from `from`
    /// to `to`, or `None` when jitter is disabled. Advances the link's
    /// delay counter, so call exactly once per sent message.
    pub fn delay_for(&self, from: Sender, to: Sender) -> Option<Duration> {
        let max_us = self.inner.delay_jitter_us.load(Ordering::Relaxed);
        if max_us == 0 {
            return None;
        }
        let seq = self
            .inner
            .link(from, to)
            .delay_seq
            .fetch_add(1, Ordering::Relaxed);
        let h = self.inner.link_hash(from, to, seq ^ 0xdead_beef_0bad_f00d);
        Some(Duration::from_micros(h % max_us))
    }

    /// Decides whether a message from `from` to `to` should be dropped.
    ///
    /// Rate-based decisions are a pure hash of `(seed, from, to, k)`
    /// where `k` is the link's own message counter, so replays are
    /// identical run-to-run regardless of thread interleaving.
    pub fn should_drop(&self, from: Sender, to: Sender) -> bool {
        if self.is_crashed(from) || self.is_crashed(to) {
            return true;
        }
        if self.inner.severed.read().contains(&(from, to)) {
            return true;
        }
        let rate = self.inner.drop_per_10k.load(Ordering::Relaxed);
        if rate == 0 {
            return false;
        }
        let seq = self
            .inner
            .link(from, to)
            .drop_seq
            .fetch_add(1, Ordering::Relaxed);
        self.inner.link_hash(from, to, seq) % 10_000 < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::{ClientId, ReplicaId};
    use std::sync::atomic::AtomicUsize;

    fn r(i: u32) -> Sender {
        Sender::Replica(ReplicaId(i))
    }

    #[test]
    fn crash_blocks_both_directions() {
        let fc = FaultController::new();
        fc.crash(r(1));
        assert!(fc.should_drop(r(0), r(1)));
        assert!(fc.should_drop(r(1), r(0)));
        assert!(!fc.should_drop(r(0), r(2)));
        assert_eq!(fc.crashed_count(), 1);
        fc.recover(r(1));
        assert!(!fc.should_drop(r(0), r(1)));
    }

    #[test]
    fn sever_and_heal() {
        let fc = FaultController::new();
        fc.sever(r(0), r(1));
        assert!(fc.should_drop(r(0), r(1)));
        assert!(fc.should_drop(r(1), r(0)));
        fc.heal(r(0), r(1));
        assert!(!fc.should_drop(r(0), r(1)));
    }

    #[test]
    fn partition_cuts_cross_traffic_only() {
        let fc = FaultController::new();
        let a = [r(0), r(1)];
        let b = [r(2), r(3)];
        fc.partition(&a, &b);
        assert!(fc.should_drop(r(0), r(2)));
        assert!(fc.should_drop(r(3), r(1)));
        assert!(!fc.should_drop(r(0), r(1)));
        assert!(!fc.should_drop(r(2), r(3)));
        fc.heal_all();
        assert!(!fc.should_drop(r(0), r(2)));
    }

    #[test]
    fn drop_rate_statistics() {
        let fc = FaultController::new();
        fc.set_drop_rate(0.5);
        let drops = (0..10_000).filter(|_| fc.should_drop(r(0), r(1))).count();
        // Deterministic mixing should land near 50%.
        assert!((3_000..7_000).contains(&drops), "drops={drops}");
        fc.set_drop_rate(0.0);
        assert!(!fc.should_drop(r(0), r(1)));
    }

    #[test]
    fn drop_decisions_replay_per_link() {
        // Same seed → identical decision sequence on each link, even
        // when another link's traffic interleaves arbitrarily.
        let run = |interleave: bool| -> Vec<bool> {
            let fc = FaultController::new();
            fc.set_seed(7);
            fc.set_drop_rate(0.3);
            let mut out = Vec::new();
            for i in 0..1_000 {
                if interleave && i % 3 == 0 {
                    // Foreign-link traffic must not perturb (0 → 1).
                    fc.should_drop(r(2), r(3));
                    fc.should_drop(r(1), r(0));
                }
                out.push(fc.should_drop(r(0), r(1)));
            }
            out
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn different_seeds_differ_and_links_decorrelate() {
        let decisions = |seed: u64, from: Sender, to: Sender| -> Vec<bool> {
            let fc = FaultController::new();
            fc.set_seed(seed);
            fc.set_drop_rate(0.5);
            (0..256).map(|_| fc.should_drop(from, to)).collect()
        };
        assert_ne!(decisions(1, r(0), r(1)), decisions(2, r(0), r(1)));
        assert_ne!(decisions(1, r(0), r(1)), decisions(1, r(1), r(0)));
    }

    #[test]
    fn delay_jitter_is_bounded_and_deterministic() {
        let fc = FaultController::new();
        assert!(fc.delay_for(r(0), r(1)).is_none());
        fc.set_seed(11);
        fc.set_delay_jitter(Duration::from_micros(500));
        let a: Vec<_> = (0..64).map(|_| fc.delay_for(r(0), r(1)).unwrap()).collect();
        assert!(a.iter().all(|d| *d < Duration::from_micros(500)));
        assert!(a.iter().any(|d| *d > Duration::ZERO));

        let fc2 = FaultController::new();
        fc2.set_seed(11);
        fc2.set_delay_jitter(Duration::from_micros(500));
        let b: Vec<_> = (0..64)
            .map(|_| fc2.delay_for(r(0), r(1)).unwrap())
            .collect();
        assert_eq!(a, b, "same seed must replay the same jitter");

        fc.set_delay_jitter(Duration::ZERO);
        assert!(fc.delay_for(r(0), r(1)).is_none());
    }

    #[test]
    fn listeners_fire_on_crash_and_recover() {
        let fc = FaultController::new();
        let crashes = Arc::new(AtomicUsize::new(0));
        let recoveries = Arc::new(AtomicUsize::new(0));
        let (c, v) = (Arc::clone(&crashes), Arc::clone(&recoveries));
        fc.add_listener(Arc::new(move |_, down| {
            if down {
                c.fetch_add(1, Ordering::Relaxed);
            } else {
                v.fetch_add(1, Ordering::Relaxed);
            }
        }));
        fc.crash(r(1));
        fc.crash(r(1)); // idempotent: no second notification
        fc.recover(r(1));
        fc.recover(r(1));
        assert_eq!(crashes.load(Ordering::Relaxed), 1);
        assert_eq!(recoveries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clients_can_crash_too() {
        let fc = FaultController::new();
        let c = Sender::Client(ClientId(7));
        fc.crash(c);
        assert!(fc.should_drop(c, r(0)));
    }
}
