//! Fault injection: crashes, probabilistic drops, and partitions.

use parking_lot::RwLock;
use rdb_common::messages::Sender;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Controls which messages the network discards.
///
/// Cloneable handle; all clones share state, so tests can hold the
/// controller while the system holds the network.
#[derive(Debug, Default, Clone)]
pub struct FaultController {
    inner: Arc<FaultInner>,
}

#[derive(Debug, Default)]
struct FaultInner {
    crashed: RwLock<HashSet<Sender>>,
    /// Pairs (a, b) that cannot communicate, stored in both directions.
    severed: RwLock<HashSet<(Sender, Sender)>>,
    /// Drop probability in units of 1/10000 (0 = reliable).
    drop_per_10k: AtomicU64,
    /// Deterministic counter-based "randomness" for drop decisions.
    counter: AtomicU64,
}

impl FaultController {
    /// Creates a controller with no faults active.
    pub fn new() -> Self {
        Self::default()
    }

    /// Crashes `node`: all traffic to and from it is discarded until
    /// [`FaultController::recover`].
    pub fn crash(&self, node: Sender) {
        self.inner.crashed.write().insert(node);
    }

    /// Recovers a crashed node.
    pub fn recover(&self, node: Sender) {
        self.inner.crashed.write().remove(&node);
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: Sender) -> bool {
        self.inner.crashed.read().contains(&node)
    }

    /// Number of currently crashed nodes.
    pub fn crashed_count(&self) -> usize {
        self.inner.crashed.read().len()
    }

    /// Severs the link between `a` and `b` in both directions.
    pub fn sever(&self, a: Sender, b: Sender) {
        let mut s = self.inner.severed.write();
        s.insert((a, b));
        s.insert((b, a));
    }

    /// Heals the link between `a` and `b`.
    pub fn heal(&self, a: Sender, b: Sender) {
        let mut s = self.inner.severed.write();
        s.remove(&(a, b));
        s.remove(&(b, a));
    }

    /// Partitions the membership into two groups that cannot talk across
    /// the cut.
    pub fn partition(&self, group_a: &[Sender], group_b: &[Sender]) {
        for &a in group_a {
            for &b in group_b {
                self.sever(a, b);
            }
        }
    }

    /// Heals every severed link.
    pub fn heal_all(&self) {
        self.inner.severed.write().clear();
    }

    /// Sets a uniform message-drop probability (0.0 ..= 1.0).
    pub fn set_drop_rate(&self, rate: f64) {
        let per_10k = (rate.clamp(0.0, 1.0) * 10_000.0) as u64;
        self.inner.drop_per_10k.store(per_10k, Ordering::Relaxed);
    }

    /// Decides whether a message from `from` to `to` should be dropped.
    pub fn should_drop(&self, from: Sender, to: Sender) -> bool {
        if self.is_crashed(from) || self.is_crashed(to) {
            return true;
        }
        if self.inner.severed.read().contains(&(from, to)) {
            return true;
        }
        let rate = self.inner.drop_per_10k.load(Ordering::Relaxed);
        if rate == 0 {
            return false;
        }
        // Cheap deterministic hash of a counter: evenly spreads drops
        // without a seeded RNG behind a lock.
        let tick = self.inner.counter.fetch_add(1, Ordering::Relaxed);
        let mixed = tick.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        mixed % 10_000 < rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::{ClientId, ReplicaId};

    fn r(i: u32) -> Sender {
        Sender::Replica(ReplicaId(i))
    }

    #[test]
    fn crash_blocks_both_directions() {
        let fc = FaultController::new();
        fc.crash(r(1));
        assert!(fc.should_drop(r(0), r(1)));
        assert!(fc.should_drop(r(1), r(0)));
        assert!(!fc.should_drop(r(0), r(2)));
        assert_eq!(fc.crashed_count(), 1);
        fc.recover(r(1));
        assert!(!fc.should_drop(r(0), r(1)));
    }

    #[test]
    fn sever_and_heal() {
        let fc = FaultController::new();
        fc.sever(r(0), r(1));
        assert!(fc.should_drop(r(0), r(1)));
        assert!(fc.should_drop(r(1), r(0)));
        fc.heal(r(0), r(1));
        assert!(!fc.should_drop(r(0), r(1)));
    }

    #[test]
    fn partition_cuts_cross_traffic_only() {
        let fc = FaultController::new();
        let a = [r(0), r(1)];
        let b = [r(2), r(3)];
        fc.partition(&a, &b);
        assert!(fc.should_drop(r(0), r(2)));
        assert!(fc.should_drop(r(3), r(1)));
        assert!(!fc.should_drop(r(0), r(1)));
        assert!(!fc.should_drop(r(2), r(3)));
        fc.heal_all();
        assert!(!fc.should_drop(r(0), r(2)));
    }

    #[test]
    fn drop_rate_statistics() {
        let fc = FaultController::new();
        fc.set_drop_rate(0.5);
        let drops = (0..10_000).filter(|_| fc.should_drop(r(0), r(1))).count();
        // Deterministic mixing should land near 50%.
        assert!((3_000..7_000).contains(&drops), "drops={drops}");
        fc.set_drop_rate(0.0);
        assert!(!fc.should_drop(r(0), r(1)));
    }

    #[test]
    fn clients_can_crash_too() {
        let fc = FaultController::new();
        let c = Sender::Client(ClientId(7));
        fc.crash(c);
        assert!(fc.should_drop(c, r(0)));
    }
}
