//! Readiness polling for the reactor-based TCP transport.
//!
//! A [`Poller`] multiplexes many nonblocking sockets onto one event-loop
//! thread: sockets are registered with a `usize` token and an interest set
//! (read and/or write), and [`Poller::wait`] blocks until at least one is
//! ready — the classic epoll shape, wrapped thinly enough that the event
//! loop above it stays portable.
//!
//! On Linux this is raw `epoll` via FFI (the workspace vendors no `libc`
//! crate, but `std` already links the C library, so the four syscall
//! wrappers are declared directly). Readiness is **level-triggered**: an
//! event repeats every wait until the handler drains the socket to
//! `WouldBlock`, which is exactly the contract the connection handlers are
//! written against.
//!
//! On other platforms a degraded fallback reports every registered socket
//! as ready after a short sleep. That is semantically correct for
//! level-triggered consumers of nonblocking sockets (handlers simply see
//! `WouldBlock` and move on) but burns CPU proportional to connection
//! count — it exists so the crate builds and tests pass off-Linux, not for
//! production swarms.
//!
//! A [`Waker`] lets other threads interrupt a blocked [`Poller::wait`]:
//! it is a nonblocking `UnixStream` pair whose read end is registered like
//! any other socket under a caller-chosen token.

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the file descriptor was registered with.
    pub token: usize,
    /// Reading would make progress (includes EOF — a read returning 0).
    pub readable: bool,
    /// Writing would make progress.
    pub writable: bool,
    /// Error or hangup: the connection is dead and should be torn down.
    pub hangup: bool,
}

/// Interest set for a registered file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest — a connection with a blocked outbound burst.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Mirrors the kernel's `struct epoll_event`; packed on x86-64, where
    /// the kernel ABI has no padding between the fields.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// Level-triggered epoll instance owned by one event-loop thread.
    pub struct Poller {
        epfd: RawFd,
        /// Scratch buffer reused across waits (kernel fills it in place).
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest_bits(interest),
                data: token as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            out.clear();
            let ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
            let n = match cvt(unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    ms,
                )
            }) {
                Ok(n) => n as usize,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => return Ok(()),
                Err(e) => return Err(e),
            };
            for ev in &self.buf[..n] {
                // Copy out of the (possibly packed) struct by value.
                let bits = ev.events;
                let token = ev.data as usize;
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// Degraded fallback: after a short sleep, report every registered fd
    /// ready per its interest set. Correct for level-triggered consumers
    /// of nonblocking sockets; wasteful, and only used off-Linux.
    pub struct Poller {
        registered: HashMap<RawFd, (usize, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: HashMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn reregister(
            &mut self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
            out.clear();
            std::thread::sleep(timeout.min(Duration::from_millis(1)));
            for (&_fd, &(token, interest)) in &self.registered {
                out.push(Event {
                    token,
                    readable: interest.readable,
                    writable: interest.writable,
                    hangup: false,
                });
            }
            Ok(())
        }
    }
}

/// Readiness poller: one per event-loop thread.
///
/// All methods take `&mut self` — a poller has exactly one owner, the loop
/// thread; cross-thread interruption goes through a [`Waker`] instead.
pub struct Poller {
    sys: sys::Poller,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Poller")
    }
}

impl Poller {
    /// Creates a poller.
    ///
    /// # Errors
    /// Returns the OS error if the epoll instance cannot be created.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            sys: sys::Poller::new()?,
        })
    }

    /// Starts watching `fd` under `token`.
    ///
    /// # Errors
    /// Returns the OS error (e.g. the fd is already registered).
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.sys.register(fd, token, interest)
    }

    /// Changes the interest set of an already-registered `fd`.
    ///
    /// # Errors
    /// Returns the OS error (e.g. the fd was never registered).
    pub fn reregister(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        self.sys.reregister(fd, token, interest)
    }

    /// Stops watching `fd`. Must be called before the fd is closed.
    ///
    /// # Errors
    /// Returns the OS error.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.sys.deregister(fd)
    }

    /// Blocks until readiness or `timeout`, filling `out` (cleared first).
    /// A signal-interrupted wait returns `Ok` with no events.
    ///
    /// # Errors
    /// Returns the OS error from the underlying wait.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Duration) -> io::Result<()> {
        self.sys.wait(out, timeout)
    }
}

/// The sending half of a wake pipe; clone freely across threads.
#[derive(Debug, Clone)]
pub struct Waker {
    tx: std::sync::Arc<std::os::unix::net::UnixStream>,
}

impl Waker {
    /// Interrupts the paired poller's current (or next) wait. Lossy by
    /// design: if the pipe is already full the poller is overdue for a
    /// wakeup anyway.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.tx).write(&[1]);
    }
}

/// The receiving half of a wake pipe; register its fd with the poller and
/// drain it whenever its token fires.
#[derive(Debug)]
pub struct WakeReceiver {
    rx: std::os::unix::net::UnixStream,
}

impl WakeReceiver {
    /// The fd to register with the poller (read interest).
    pub fn raw_fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// Consumes queued wake bytes so a level-triggered poller stops
    /// reporting the pipe readable.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        while matches!((&self.rx).read(&mut buf), Ok(n) if n > 0) {}
    }
}

/// Creates a connected waker pair (both ends nonblocking).
///
/// # Errors
/// Returns the OS error if the socket pair cannot be created.
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((
        Waker {
            tx: std::sync::Arc::new(tx),
        },
        WakeReceiver { rx },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    const T: Duration = Duration::from_secs(5);

    fn nonblocking_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    fn wait_for(poller: &mut Poller, token: usize) -> Event {
        let mut events = Vec::new();
        let deadline = Instant::now() + T;
        while Instant::now() < deadline {
            poller.wait(&mut events, Duration::from_millis(50)).unwrap();
            if let Some(ev) = events.iter().find(|e| e.token == token) {
                return *ev;
            }
        }
        panic!("no event for token {token} within {T:?}");
    }

    #[test]
    fn readable_when_bytes_arrive() {
        let (mut a, b) = nonblocking_pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 3, Interest::READ).unwrap();
        a.write_all(b"hi").unwrap();
        let ev = wait_for(&mut poller, 3);
        assert!(ev.readable);
        let mut buf = [0u8; 8];
        assert_eq!((&b).read(&mut buf).unwrap(), 2);
    }

    #[test]
    fn write_interest_reports_writable() {
        let (a, _b) = nonblocking_pair();
        let mut poller = Poller::new().unwrap();
        poller
            .register(a.as_raw_fd(), 9, Interest::READ_WRITE)
            .unwrap();
        let ev = wait_for(&mut poller, 9);
        assert!(ev.writable);
    }

    #[test]
    fn waker_interrupts_wait() {
        let mut poller = Poller::new().unwrap();
        let (waker, wake_rx) = wake_pair().unwrap();
        poller
            .register(wake_rx.raw_fd(), 7, Interest::READ)
            .unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let ev = wait_for(&mut poller, 7);
        assert!(ev.readable);
        wake_rx.drain();
        handle.join().unwrap();
    }

    #[test]
    fn deregister_stops_events() {
        let (mut a, b) = nonblocking_pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        a.write_all(b"x").unwrap();
        wait_for(&mut poller, 1);
        poller.deregister(b.as_raw_fd()).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_millis(50)).unwrap();
        assert!(events.iter().all(|e| e.token != 1));
    }

    #[test]
    fn peer_close_reports_readable_or_hangup() {
        let (a, b) = nonblocking_pair();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 4, Interest::READ).unwrap();
        drop(a);
        let ev = wait_for(&mut poller, 4);
        assert!(ev.readable || ev.hangup);
    }
}
