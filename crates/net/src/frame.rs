//! Length-prefixed framing for the TCP transport.
//!
//! Every frame is `u32 len (LE)` followed by `len` body bytes:
//!
//! ```text
//! body := 0x01 ‖ Sender                      HELLO — announces a local
//!                                            endpoint of the writing node
//!       | 0x02 ‖ Sender(to) ‖ SignedMessage  MSG — one envelope for `to`
//! ```
//!
//! The `SignedMessage` bytes are the exact canonical [`Wire`] encoding, so
//! a broadcast serializes the envelope **once** and every peer's writer
//! reuses the same shared buffer; only the tiny per-destination header
//! differs. On the receive side [`SignedMessage::decode`] seeds the
//! envelope's memo from the socket buffer, so verification after a decode
//! costs zero re-serializations — the zero-copy path survives the wire.
//!
//! [`read_frame`] is a resumable state machine: reader threads run with a
//! socket read timeout so they can observe shutdown, and a timeout in the
//! middle of a frame must not lose synchronization.

use rdb_common::codec::{Wire, WireReader, WireWriter};
use rdb_common::messages::{Sender, SignedMessage};
use std::io::{self, Read};
use std::net::TcpStream;

/// Upper bound on a frame body, guarding the reader against corrupt or
/// hostile length prefixes. Generous enough for a multi-megabyte batch.
pub const MAX_FRAME: usize = 64 << 20;

const TAG_HELLO: u8 = 0x01;
const TAG_MSG: u8 = 0x02;

/// A decoded inbound frame.
#[derive(Debug)]
pub enum Frame {
    /// The writing node hosts endpoint `from`; replies to it can use this
    /// connection.
    Hello(Sender),
    /// An envelope addressed to local endpoint `to`.
    Msg { to: Sender, msg: SignedMessage },
}

/// Encodes a HELLO body (no length prefix; the writer adds it).
pub fn hello_body(from: Sender) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(1 + from.encoded_len());
    w.put_u8(TAG_HELLO);
    from.write(&mut w);
    w.into_bytes()
}

/// Encodes the per-destination MSG header (tag + destination). The message
/// payload itself is written separately so broadcasts can share one
/// serialization across all destinations.
pub fn msg_header(to: Sender) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(1 + to.encoded_len());
    w.put_u8(TAG_MSG);
    to.write(&mut w);
    w.into_bytes()
}

/// Parses a complete frame body.
///
/// # Errors
/// Returns an [`io::Error`] of kind `InvalidData` on unknown tags or a
/// malformed payload.
pub fn parse_frame(body: &[u8]) -> io::Result<Frame> {
    let bad = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
    let mut r = WireReader::new(body);
    match r.get_u8().map_err(|e| bad(e.to_string()))? {
        TAG_HELLO => {
            let from = Sender::read(&mut r).map_err(|e| bad(e.to_string()))?;
            r.finish().map_err(|e| bad(e.to_string()))?;
            Ok(Frame::Hello(from))
        }
        TAG_MSG => {
            let to = Sender::read(&mut r).map_err(|e| bad(e.to_string()))?;
            // `SignedMessage::read` seeds the canonical-bytes memo from
            // this buffer — the receiver never re-serializes to verify.
            let msg = SignedMessage::read(&mut r).map_err(|e| bad(e.to_string()))?;
            r.finish().map_err(|e| bad(e.to_string()))?;
            Ok(Frame::Msg { to, msg })
        }
        t => Err(bad(format!("unknown frame tag {t:#x}"))),
    }
}

/// Resumable frame parser with no stream of its own: the caller supplies
/// the `Read` on every poll, so the same state machine serves both the
/// blocking-with-timeout [`FrameReader`] and the reactor's nonblocking
/// connections (which own their socket and lend it per readiness event).
///
/// `poll` returns `Ok(Some(body))` when a full frame has arrived,
/// `Ok(None)` when the read would block (or timed out) mid-frame, and
/// `Err` on EOF or a transport error. Partial header or body bytes are
/// kept across polls, so frame synchronization survives arbitrarily slow
/// senders.
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    header: [u8; 4],
    filled: usize,
    body: Vec<u8>,
    in_body: bool,
}

impl FrameAccumulator {
    /// An accumulator positioned at a frame boundary.
    pub fn new() -> Self {
        FrameAccumulator::default()
    }

    /// Advances the frame state machine; see the type docs for the return
    /// contract.
    ///
    /// # Errors
    /// Returns an [`io::Error`] on EOF (`UnexpectedEof`), oversized or
    /// zero-length frames (`InvalidData`), or any socket error.
    pub fn poll(&mut self, stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
        loop {
            if !self.in_body {
                match stream.read(&mut self.header[self.filled..]) {
                    Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                    Ok(n) => self.filled += n,
                    Err(e) if would_block(&e) => return Ok(None),
                    Err(e) => return Err(e),
                }
                if self.filled < 4 {
                    continue;
                }
                let len = u32::from_le_bytes(self.header) as usize;
                if len == 0 || len > MAX_FRAME {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame length {len} out of range"),
                    ));
                }
                self.body = vec![0; len];
                self.filled = 0;
                self.in_body = true;
            }
            match stream.read(&mut self.body[self.filled..]) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.filled += n,
                Err(e) if would_block(&e) => return Ok(None),
                Err(e) => return Err(e),
            }
            if self.filled == self.body.len() {
                self.in_body = false;
                self.filled = 0;
                return Ok(Some(std::mem::take(&mut self.body)));
            }
        }
    }
}

/// Resumable frame reader over an owned [`TcpStream`] with a read timeout:
/// a [`FrameAccumulator`] bound to its stream, for threads that block.
pub struct FrameReader {
    stream: TcpStream,
    acc: FrameAccumulator,
}

impl FrameReader {
    /// Wraps `stream` (whose read timeout should already be configured).
    pub fn new(stream: TcpStream) -> Self {
        FrameReader {
            stream,
            acc: FrameAccumulator::new(),
        }
    }

    /// Advances the frame state machine; see [`FrameAccumulator::poll`]
    /// for the return contract.
    ///
    /// # Errors
    /// Returns an [`io::Error`] on EOF (`UnexpectedEof`), oversized or
    /// zero-length frames (`InvalidData`), or any socket error.
    pub fn poll_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        self.acc.poll(&mut self.stream)
    }
}

fn would_block(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::messages::Message;
    use rdb_common::{ClientId, ReplicaId, SignatureBytes};
    use std::io::Write;
    use std::net::TcpListener;
    use std::time::Duration;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_read_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        (tx, rx)
    }

    fn frame_bytes(body: &[u8]) -> Vec<u8> {
        let mut out = (body.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(body);
        out
    }

    #[test]
    fn hello_round_trips() {
        let (mut tx, rx) = loopback_pair();
        let from = Sender::Client(ClientId(42));
        tx.write_all(&frame_bytes(&hello_body(from))).unwrap();
        let mut reader = FrameReader::new(rx);
        let body = loop {
            if let Some(b) = reader.poll_frame().unwrap() {
                break b;
            }
        };
        match parse_frame(&body).unwrap() {
            Frame::Hello(s) => assert_eq!(s, from),
            other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn msg_round_trips_and_seeds_memo() {
        let (mut tx, rx) = loopback_pair();
        let sm = SignedMessage::new(
            Message::ClientRequest { txns: vec![] },
            Sender::Replica(ReplicaId(1)),
            SignatureBytes(vec![9; 16]),
        );
        let to = Sender::Replica(ReplicaId(2));
        let mut body = msg_header(to);
        body.extend_from_slice(&sm.encode());
        tx.write_all(&frame_bytes(&body)).unwrap();
        let mut reader = FrameReader::new(rx);
        let got = loop {
            if let Some(b) = reader.poll_frame().unwrap() {
                break b;
            }
        };
        match parse_frame(&got).unwrap() {
            Frame::Msg { to: t, msg } => {
                assert_eq!(t, to);
                assert_eq!(msg, sm);
                assert_eq!(msg.signing_bytes(), sm.signing_bytes());
            }
            other => panic!("expected msg, got {other:?}"),
        }
    }

    #[test]
    fn partial_frames_survive_timeouts() {
        let (mut tx, rx) = loopback_pair();
        let body = hello_body(Sender::Replica(ReplicaId(7)));
        let bytes = frame_bytes(&body);
        let mut reader = FrameReader::new(rx);
        // Dribble the frame one byte at a time, polling after every byte:
        // the reader times out between bytes (returning None) but must not
        // lose its place mid-header or mid-body.
        let mut out = None;
        for b in &bytes {
            tx.write_all(std::slice::from_ref(b)).unwrap();
            tx.flush().unwrap();
            if let Some(f) = reader.poll_frame().unwrap() {
                out = Some(f);
            }
        }
        // The last poll may race the final byte's arrival; drain to finish.
        while out.is_none() {
            out = reader.poll_frame().unwrap();
        }
        match parse_frame(&out.unwrap()).unwrap() {
            Frame::Hello(s) => assert_eq!(s, Sender::Replica(ReplicaId(7))),
            other => panic!("expected hello, got {other:?}"),
        }
    }

    #[test]
    fn oversized_and_zero_frames_rejected() {
        let (mut tx, rx) = loopback_pair();
        tx.write_all(&(0u32).to_le_bytes()).unwrap();
        let mut reader = FrameReader::new(rx);
        let err = loop {
            match reader.poll_frame() {
                Ok(None) => continue,
                Ok(Some(_)) => panic!("zero frame accepted"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn eof_is_an_error() {
        let (tx, rx) = loopback_pair();
        drop(tx);
        let mut reader = FrameReader::new(rx);
        let err = loop {
            match reader.poll_frame() {
                Ok(None) => continue,
                Ok(Some(_)) => panic!("frame from nowhere"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(parse_frame(&[0x77, 0, 0]).is_err());
    }
}
