//! Delivery statistics for the in-memory network.

use parking_lot::Mutex;
use rdb_common::MessageKind;
use std::collections::HashMap;
use std::sync::Arc;

/// Counters shared by all endpoints of one [`crate::Network`].
#[derive(Debug, Default, Clone)]
pub struct NetworkStats {
    inner: Arc<Mutex<StatsInner>>,
}

#[derive(Debug, Default)]
struct StatsInner {
    sent: HashMap<MessageKind, u64>,
    delivered: HashMap<MessageKind, u64>,
    dropped: u64,
    bytes_sent: u64,
}

impl NetworkStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_sent(&self, kind: MessageKind, bytes: usize) {
        let mut s = self.inner.lock();
        *s.sent.entry(kind).or_insert(0) += 1;
        s.bytes_sent += bytes as u64;
    }

    pub(crate) fn record_delivered(&self, kind: MessageKind) {
        *self.inner.lock().delivered.entry(kind).or_insert(0) += 1;
    }

    pub(crate) fn record_dropped(&self) {
        self.inner.lock().dropped += 1;
    }

    /// Messages sent of `kind`.
    pub fn sent(&self, kind: MessageKind) -> u64 {
        self.inner.lock().sent.get(&kind).copied().unwrap_or(0)
    }

    /// Messages delivered of `kind`.
    pub fn delivered(&self, kind: MessageKind) -> u64 {
        self.inner.lock().delivered.get(&kind).copied().unwrap_or(0)
    }

    /// Messages discarded by fault injection or missing destinations.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Total payload bytes offered to the network.
    pub fn bytes_sent(&self) -> u64 {
        self.inner.lock().bytes_sent
    }

    /// Total messages sent across all kinds.
    pub fn total_sent(&self) -> u64 {
        self.inner.lock().sent.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetworkStats::new();
        s.record_sent(MessageKind::Prepare, 100);
        s.record_sent(MessageKind::Prepare, 50);
        s.record_sent(MessageKind::Commit, 10);
        s.record_delivered(MessageKind::Prepare);
        s.record_dropped();
        assert_eq!(s.sent(MessageKind::Prepare), 2);
        assert_eq!(s.sent(MessageKind::Commit), 1);
        assert_eq!(s.delivered(MessageKind::Prepare), 1);
        assert_eq!(s.delivered(MessageKind::Commit), 0);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.bytes_sent(), 160);
        assert_eq!(s.total_sent(), 3);
    }

    #[test]
    fn clones_share_state() {
        let s = NetworkStats::new();
        let s2 = s.clone();
        s.record_sent(MessageKind::Checkpoint, 5);
        assert_eq!(s2.sent(MessageKind::Checkpoint), 1);
    }
}
