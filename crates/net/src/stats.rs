//! Delivery statistics for the in-memory network.
//!
//! Counters are per-[`MessageKind`] atomics indexed through
//! [`MessageKind::index`] — the old `Mutex<HashMap>` was taken on every
//! send *and* every delivery, serializing all endpoints of a busy network
//! through one lock just to bump an integer.

use rdb_common::MessageKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters shared by all endpoints of one [`crate::Network`].
#[derive(Debug, Default, Clone)]
pub struct NetworkStats {
    inner: Arc<StatsInner>,
}

#[derive(Debug, Default)]
struct StatsInner {
    sent: KindCounters,
    delivered: KindCounters,
    /// Bytes-on-wire per kind, from the exact `Wire::encoded_len` of each
    /// sent envelope — both transport backends record the same number for
    /// the same message, so in-memory and TCP runs are comparable.
    bytes: KindCounters,
    dropped: AtomicU64,
    /// Fetch-protocol accounting (recorded by the replica runtime, not the
    /// transport): holes served to peers vs. requests shed by the
    /// anti-amplification cap.
    fetch_served: AtomicU64,
    fetch_dropped: AtomicU64,
}

/// One atomic counter per message kind, indexed densely.
#[derive(Debug, Default)]
struct KindCounters([AtomicU64; MessageKind::COUNT]);

impl KindCounters {
    fn add(&self, kind: MessageKind) {
        self.add_n(kind, 1);
    }

    fn add_n(&self, kind: MessageKind, n: u64) {
        self.0[kind.index()].fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self, kind: MessageKind) -> u64 {
        self.0[kind.index()].load(Ordering::Relaxed)
    }

    fn total(&self) -> u64 {
        self.0.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

impl NetworkStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_sent(&self, kind: MessageKind, bytes: usize) {
        self.inner.sent.add(kind);
        self.inner.bytes.add_n(kind, bytes as u64);
    }

    pub(crate) fn record_delivered(&self, kind: MessageKind) {
        self.inner.delivered.add(kind);
    }

    pub(crate) fn record_dropped(&self) {
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Messages sent of `kind`.
    pub fn sent(&self, kind: MessageKind) -> u64 {
        self.inner.sent.get(kind)
    }

    /// Messages delivered of `kind`.
    pub fn delivered(&self, kind: MessageKind) -> u64 {
        self.inner.delivered.get(kind)
    }

    /// Bytes-on-wire offered to the network for `kind` (exact canonical
    /// encoding sizes, including signatures).
    pub fn bytes_for(&self, kind: MessageKind) -> u64 {
        self.inner.bytes.get(kind)
    }

    /// Messages discarded by fault injection or missing destinations.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Records `n` sequences served in response to a `FetchRequest`.
    /// Public because the replica runtime (which owns the committed
    /// batches) does the serving, not the transport.
    pub fn note_fetch_served(&self, n: u64) {
        self.inner.fetch_served.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` requested sequences shed by the per-request serving cap
    /// (an abusive fetcher cannot amplify traffic past it).
    pub fn note_fetch_dropped(&self, n: u64) {
        self.inner.fetch_dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Sequences served to fetching peers.
    pub fn fetch_served(&self) -> u64 {
        self.inner.fetch_served.load(Ordering::Relaxed)
    }

    /// Requested sequences shed by the serving cap.
    pub fn fetch_dropped(&self) -> u64 {
        self.inner.fetch_dropped.load(Ordering::Relaxed)
    }

    /// Total payload bytes offered to the network (sum over all kinds).
    pub fn bytes_sent(&self) -> u64 {
        self.inner.bytes.total()
    }

    /// Total messages sent across all kinds.
    pub fn total_sent(&self) -> u64 {
        self.inner.sent.total()
    }

    /// Total messages delivered across all kinds.
    pub fn total_delivered(&self) -> u64 {
        self.inner.delivered.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = NetworkStats::new();
        s.record_sent(MessageKind::Prepare, 100);
        s.record_sent(MessageKind::Prepare, 50);
        s.record_sent(MessageKind::Commit, 10);
        s.record_delivered(MessageKind::Prepare);
        s.record_dropped();
        assert_eq!(s.sent(MessageKind::Prepare), 2);
        assert_eq!(s.sent(MessageKind::Commit), 1);
        assert_eq!(s.delivered(MessageKind::Prepare), 1);
        assert_eq!(s.delivered(MessageKind::Commit), 0);
        assert_eq!(s.dropped(), 1);
        assert_eq!(s.bytes_sent(), 160);
        assert_eq!(s.bytes_for(MessageKind::Prepare), 150);
        assert_eq!(s.bytes_for(MessageKind::Commit), 10);
        assert_eq!(s.bytes_for(MessageKind::Checkpoint), 0);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.total_delivered(), 1);
    }

    #[test]
    fn clones_share_state() {
        let s = NetworkStats::new();
        let s2 = s.clone();
        s.record_sent(MessageKind::Checkpoint, 5);
        assert_eq!(s2.sent(MessageKind::Checkpoint), 1);
    }

    #[test]
    fn fetch_counters_accumulate() {
        let s = NetworkStats::new();
        s.note_fetch_served(3);
        s.note_fetch_served(2);
        s.note_fetch_dropped(7);
        assert_eq!(s.fetch_served(), 5);
        assert_eq!(s.clone().fetch_dropped(), 7);
    }

    #[test]
    fn every_kind_has_a_counter() {
        let s = NetworkStats::new();
        for k in MessageKind::ALL {
            s.record_sent(k, 1);
            s.record_delivered(k);
        }
        for k in MessageKind::ALL {
            assert_eq!(s.sent(k), 1);
            assert_eq!(s.delivered(k), 1);
        }
        assert_eq!(s.total_sent(), MessageKind::COUNT as u64);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let s = NetworkStats::new();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_sent(MessageKind::Prepare, 1);
                        s.record_delivered(MessageKind::Prepare);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.sent(MessageKind::Prepare), 4000);
        assert_eq!(s.delivered(MessageKind::Prepare), 4000);
        assert_eq!(s.bytes_sent(), 4000);
    }
}
