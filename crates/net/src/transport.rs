//! The pluggable transport abstraction.
//!
//! [`Transport`] is what the replica pipeline and client sessions program
//! against: register an address, get an [`Endpoint`], send/broadcast
//! [`SignedMessage`]s, observe [`NetworkStats`], inject faults through a
//! [`FaultController`]. Two backends implement it:
//!
//! - [`crate::Network`] — the in-memory switchboard (zero-copy channel
//!   hand-off, optional modeled latency). The default for tests, examples
//!   and the simulator-adjacent threaded runtime.
//! - [`crate::TcpTransport`] — real sockets with length-prefixed framing
//!   over the canonical [`Wire`](rdb_common::Wire) encoding, one writer
//!   thread per peer, and reconnect-with-backoff. The substrate for
//!   multi-process deployments (`rdb-node`).
//!
//! Backends deliver inbound messages into per-address crossbeam mailboxes,
//! so an [`Endpoint`]'s receive side is backend-agnostic and multiple
//! input threads can drain one mailbox concurrently.

use crate::fault::FaultController;
use crate::stats::NetworkStats;
use crossbeam::channel::{Receiver, RecvTimeoutError};
use rdb_common::messages::{Sender, SignedMessage};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors returned by network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Destination address was never registered (in-memory) or has no
    /// route — not in the peer map and no connection announced it (TCP).
    UnknownDestination(String),
    /// The network has been shut down.
    Closed,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownDestination(d) => write!(f, "unknown destination: {d}"),
            NetworkError::Closed => write!(f, "network closed"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// The replica-facing transport surface: consensus gossip between peers
/// in the replica map.
///
/// Mesh traffic is *droppable* — the protocol tolerates loss and
/// retransmits by design, so backends may shed it under backpressure
/// (the TCP backend's drop-oldest link policy).
pub trait MeshTransport: Send + Sync + fmt::Debug {
    /// Sends `msg` from `from` to `to`.
    ///
    /// # Errors
    /// Returns [`NetworkError::UnknownDestination`] if the backend has no
    /// route to `to`. Messages discarded by fault injection do *not*
    /// error — like a real network, the sender cannot tell.
    fn send_from(&self, from: Sender, to: Sender, msg: SignedMessage) -> Result<(), NetworkError>;

    /// Sends `msg` to every address in `to`, skipping `from` itself.
    ///
    /// The default forwards to [`MeshTransport::send_from`] per
    /// destination (cheap for the in-memory backend: a clone is
    /// reference-count bumps). The TCP backend overrides this to
    /// serialize the envelope once and share the encoded bytes across
    /// every peer's queue.
    ///
    /// # Errors
    /// Returns the first error encountered; remaining destinations are
    /// still attempted.
    fn broadcast_from(
        &self,
        from: Sender,
        to: &[Sender],
        msg: &SignedMessage,
    ) -> Result<(), NetworkError> {
        let mut first_err = None;
        for &dest in to {
            if dest == from {
                continue; // no self-delivery on broadcast
            }
            if let Err(e) = self.send_from(from, dest, msg.clone()) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// The client-facing transport surface: request submission and reply
/// routing.
///
/// Direct traffic is *reliable* — never shed by backpressure policies;
/// the sender blocks until the backend accepts it. This is the half that
/// lets backends size client resources (dedicated connections, separate
/// queue capacities) independently of the replica mesh.
pub trait ClientTransport: Send + Sync + fmt::Debug {
    /// Sends `msg` from `from` to `to` on the reliable client path
    /// (client → replica requests, replica → client replies).
    ///
    /// # Errors
    /// Returns [`NetworkError::UnknownDestination`] if the backend has no
    /// route to `to`. Messages discarded by fault injection do *not*
    /// error — like a real network, the sender cannot tell.
    fn send_direct(&self, from: Sender, to: Sender, msg: SignedMessage)
        -> Result<(), NetworkError>;
}

/// A message transport connecting replicas and clients: the mesh and
/// client sub-surfaces plus endpoint lifecycle and observability.
///
/// Object-safe so deployments can choose a backend at runtime; consumers
/// hold a [`NetHandle`] rather than a concrete network type. Fault
/// injection is evaluated on the **send side** for both backends: a
/// message is discarded when the sender's controller says
/// [`FaultController::should_drop`], which makes drop/partition semantics
/// identical whether the link is a channel or a socket.
pub trait Transport: MeshTransport + ClientTransport {
    /// Creates the inbound mailbox for `addr` and returns its receiver.
    ///
    /// # Panics
    /// Panics if `addr` is already registered on this transport.
    fn register_mailbox(&self, addr: Sender) -> Receiver<SignedMessage>;

    /// Removes `addr`; future sends to it fail or are dropped.
    fn deregister(&self, addr: Sender);

    /// The shared delivery statistics.
    fn stats(&self) -> &NetworkStats;

    /// The shared fault controller.
    fn faults(&self) -> &FaultController;

    /// Stops background threads (wire thread, reactors, dialers).
    fn shutdown(&self);
}

/// Cloneable handle to a [`Transport`] backend — the currency passed to
/// `spawn_replica`, client sessions and the fabric.
#[derive(Clone)]
pub struct NetHandle {
    transport: Arc<dyn Transport>,
}

impl fmt::Debug for NetHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("NetHandle").field(&self.transport).finish()
    }
}

impl NetHandle {
    /// Wraps a transport backend.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        NetHandle { transport }
    }

    /// Registers `addr`, returning its endpoint.
    ///
    /// # Panics
    /// Panics if `addr` is already registered.
    pub fn register(&self, addr: Sender) -> Endpoint {
        Endpoint {
            addr,
            rx: self.transport.register_mailbox(addr),
            net: self.clone(),
        }
    }

    /// Removes `addr` (future sends to it error or drop).
    pub fn deregister(&self, addr: Sender) {
        self.transport.deregister(addr);
    }

    /// The shared fault controller.
    pub fn faults(&self) -> &FaultController {
        self.transport.faults()
    }

    /// The shared delivery statistics.
    pub fn stats(&self) -> &NetworkStats {
        self.transport.stats()
    }

    /// Shuts down the backend's threads.
    pub fn shutdown(&self) {
        self.transport.shutdown();
    }

    /// The underlying transport object.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }
}

/// A registered node's handle for sending and receiving messages.
pub struct Endpoint {
    addr: Sender,
    rx: Receiver<SignedMessage>,
    net: NetHandle,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("addr", &self.addr)
            .finish()
    }
}

impl Endpoint {
    /// This endpoint's address.
    pub fn addr(&self) -> Sender {
        self.addr
    }

    /// Sends `msg` to `to`.
    ///
    /// # Errors
    /// Returns [`NetworkError::UnknownDestination`] if the backend has no
    /// route to `to`. Messages discarded by fault injection do *not*
    /// error — like a real network, the sender cannot tell.
    pub fn send(&self, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        self.net.transport.send_from(self.addr, to, msg)
    }

    /// Sends `msg` to every address in `to`.
    ///
    /// The envelope is a shared handle: the in-memory backend bumps a
    /// reference count per destination, the TCP backend serializes once
    /// and shares the bytes across all peer writer queues.
    ///
    /// # Errors
    /// Returns the first [`NetworkError`] encountered; remaining
    /// destinations are still attempted.
    pub fn broadcast(&self, to: &[Sender], msg: &SignedMessage) -> Result<(), NetworkError> {
        self.net.transport.broadcast_from(self.addr, to, msg)
    }

    /// Sends `msg` to `to` on the reliable client path (requests and
    /// replies) — see [`ClientTransport::send_direct`].
    ///
    /// # Errors
    /// Returns [`NetworkError::UnknownDestination`] if the backend has no
    /// route to `to`.
    pub fn send_direct(&self, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        self.net.transport.send_direct(self.addr, to, msg)
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    /// Returns [`NetworkError::Closed`] if the network is gone.
    pub fn recv(&self) -> Result<SignedMessage, NetworkError> {
        self.rx.recv().map_err(|_| NetworkError::Closed)
    }

    /// Blocks up to `timeout` for a message; errors on timeout.
    ///
    /// # Errors
    /// Returns [`NetworkError::Closed`] if the network is gone or nothing
    /// arrived in time.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<SignedMessage, NetworkError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(NetworkError::Closed),
            Err(RecvTimeoutError::Disconnected) => Err(NetworkError::Closed),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<SignedMessage> {
        self.rx.try_recv().ok()
    }

    /// A clone of the inbound receiver, for feeding multiple input threads
    /// (crossbeam channels are multi-consumer).
    pub fn receiver(&self) -> Receiver<SignedMessage> {
        self.rx.clone()
    }

    /// A cloneable send-only handle, for distributing the transmit side
    /// across multiple output threads.
    pub fn sender(&self) -> EndpointSender {
        EndpointSender {
            addr: self.addr,
            net: self.net.clone(),
        }
    }

    /// The transport this endpoint belongs to.
    pub fn network(&self) -> &NetHandle {
        &self.net
    }
}

/// Send-only clone of an [`Endpoint`], usable from many threads at once.
#[derive(Clone)]
pub struct EndpointSender {
    addr: Sender,
    net: NetHandle,
}

impl fmt::Debug for EndpointSender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EndpointSender")
            .field("addr", &self.addr)
            .finish()
    }
}

impl EndpointSender {
    /// The sending address.
    pub fn addr(&self) -> Sender {
        self.addr
    }

    /// Sends `msg` to `to`.
    ///
    /// # Errors
    /// Returns [`NetworkError::UnknownDestination`] if the backend has no
    /// route to `to`.
    pub fn send(&self, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        self.net.transport.send_from(self.addr, to, msg)
    }

    /// Sends `msg` to every address in `to` (skipping this sender).
    ///
    /// # Errors
    /// Returns the first [`NetworkError`] encountered; remaining
    /// destinations are still attempted.
    pub fn broadcast(&self, to: &[Sender], msg: &SignedMessage) -> Result<(), NetworkError> {
        self.net.transport.broadcast_from(self.addr, to, msg)
    }

    /// Sends `msg` to `to` on the reliable client path — see
    /// [`ClientTransport::send_direct`].
    ///
    /// # Errors
    /// Returns [`NetworkError::UnknownDestination`] if the backend has no
    /// route to `to`.
    pub fn send_direct(&self, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        self.net.transport.send_direct(self.addr, to, msg)
    }
}
