//! The in-memory switchboard: endpoints, delivery, latency shaping.
//!
//! Delivery is direct channel hand-off when latency is zero; with a
//! configured latency a background *wire thread* holds messages in a
//! deadline heap and releases them when due, preserving per-link FIFO
//! ordering for equal deadlines.

use crate::fault::FaultController;
use crate::stats::NetworkStats;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender as ChanSender};
use parking_lot::{Condvar, Mutex, RwLock};
use rdb_common::messages::{Sender, SignedMessage};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors returned by network operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// Destination address was never registered.
    UnknownDestination(String),
    /// The network has been shut down.
    Closed,
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::UnknownDestination(d) => write!(f, "unknown destination: {d}"),
            NetworkError::Closed => write!(f, "network closed"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Configuration for an in-memory network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// One-way delivery latency applied to every message.
    pub latency: Duration,
    /// Per-endpoint inbound queue bound (`None` = unbounded).
    pub queue_capacity: Option<usize>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: Duration::ZERO,
            queue_capacity: None,
        }
    }
}

struct WireEntry {
    due: Instant,
    seq: u64,
    to: Sender,
    msg: SignedMessage,
}

impl PartialEq for WireEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for WireEntry {}
impl PartialOrd for WireEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WireEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so the BinaryHeap pops the earliest deadline first;
        // tie-break on sequence for FIFO between equal deadlines.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

struct NetInner {
    config: NetworkConfig,
    mailboxes: RwLock<HashMap<Sender, ChanSender<SignedMessage>>>,
    stats: NetworkStats,
    faults: FaultController,
    wire: Mutex<WireState>,
    wire_signal: Condvar,
}

impl NetInner {
    fn deliver(&self, to: Sender, msg: SignedMessage) {
        let kind = msg.kind();
        let mailboxes = self.mailboxes.read();
        if let Some(tx) = mailboxes.get(&to) {
            if tx.send(msg).is_ok() {
                self.stats.record_delivered(kind);
                return;
            }
        }
        self.stats.record_dropped();
    }
}

struct WireState {
    heap: BinaryHeap<WireEntry>,
    next_seq: u64,
    shutdown: bool,
}

/// An in-memory network connecting replicas and clients.
///
/// Cloneable handle; all clones refer to the same switchboard.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetInner>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("endpoints", &self.inner.mailboxes.read().len())
            .field("latency", &self.inner.config.latency)
            .finish()
    }
}

impl Network {
    /// Creates a network; if `config.latency` is non-zero, spawns the wire
    /// thread that delays deliveries.
    pub fn new(config: NetworkConfig) -> Self {
        let needs_wire = !config.latency.is_zero();
        let inner = Arc::new(NetInner {
            config,
            mailboxes: RwLock::new(HashMap::new()),
            stats: NetworkStats::new(),
            faults: FaultController::new(),
            wire: Mutex::new(WireState {
                heap: BinaryHeap::new(),
                next_seq: 0,
                shutdown: false,
            }),
            wire_signal: Condvar::new(),
        });
        if needs_wire {
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name("rdb-net-wire".into())
                .spawn(move || {
                    while let Some(inner) = weak.upgrade() {
                        let mut due_msgs = Vec::new();
                        {
                            let mut wire = inner.wire.lock();
                            if wire.shutdown {
                                return;
                            }
                            let now = Instant::now();
                            while wire.heap.peek().is_some_and(|e| e.due <= now) {
                                let e = wire.heap.pop().expect("peeked entry exists");
                                due_msgs.push((e.to, e.msg));
                            }
                            if due_msgs.is_empty() {
                                match wire.heap.peek().map(|e| e.due) {
                                    Some(due) => {
                                        let wait = due.saturating_duration_since(Instant::now());
                                        inner.wire_signal.wait_for(&mut wire, wait);
                                    }
                                    None => {
                                        inner
                                            .wire_signal
                                            .wait_for(&mut wire, Duration::from_millis(50));
                                    }
                                }
                                if wire.shutdown {
                                    return;
                                }
                            }
                        }
                        for (to, msg) in due_msgs {
                            inner.deliver(to, msg);
                        }
                        // Drop the strong reference before looping so the
                        // network can be freed while the thread sleeps.
                        drop(inner);
                    }
                })
                .expect("spawn wire thread");
        }
        Network { inner }
    }

    /// Registers `addr`, returning its endpoint.
    ///
    /// # Panics
    /// Panics if `addr` is already registered.
    pub fn register(&self, addr: Sender) -> Endpoint {
        let (tx, rx) = match self.inner.config.queue_capacity {
            Some(cap) => channel::bounded(cap),
            None => channel::unbounded(),
        };
        let prev = self.inner.mailboxes.write().insert(addr, tx);
        assert!(prev.is_none(), "address {addr:?} registered twice");
        Endpoint {
            addr,
            rx,
            net: self.clone(),
        }
    }

    /// Removes `addr` from the switchboard (future sends to it error).
    pub fn deregister(&self, addr: Sender) {
        self.inner.mailboxes.write().remove(&addr);
    }

    /// The shared fault controller.
    pub fn faults(&self) -> &FaultController {
        &self.inner.faults
    }

    /// The shared delivery statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.inner.stats
    }

    fn send_from(&self, from: Sender, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        if !self.inner.mailboxes.read().contains_key(&to) {
            self.inner.stats.record_dropped();
            return Err(NetworkError::UnknownDestination(format!("{to:?}")));
        }
        // `wire_size` is memoized in the envelope, so pricing a broadcast
        // walks the batch once, not once per destination.
        self.inner.stats.record_sent(msg.kind(), msg.wire_size());
        if self.inner.faults.should_drop(from, to) {
            self.inner.stats.record_dropped();
            return Ok(()); // silently dropped, like a real network
        }
        if self.inner.config.latency.is_zero() {
            self.inner.deliver(to, msg);
        } else {
            let mut wire = self.inner.wire.lock();
            let seq = wire.next_seq;
            wire.next_seq += 1;
            wire.heap.push(WireEntry {
                due: Instant::now() + self.inner.config.latency,
                seq,
                to,
                msg,
            });
            self.inner.wire_signal.notify_one();
        }
        Ok(())
    }

    /// Shuts down the wire thread (no-op for zero-latency networks).
    pub fn shutdown(&self) {
        let mut wire = self.inner.wire.lock();
        wire.shutdown = true;
        self.inner.wire_signal.notify_all();
    }
}

/// A registered node's handle for sending and receiving messages.
pub struct Endpoint {
    addr: Sender,
    rx: Receiver<SignedMessage>,
    net: Network,
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("addr", &self.addr)
            .finish()
    }
}

impl Endpoint {
    /// This endpoint's address.
    pub fn addr(&self) -> Sender {
        self.addr
    }

    /// Sends `msg` to `to`.
    ///
    /// # Errors
    /// Returns [`NetworkError::UnknownDestination`] if `to` was never
    /// registered. Messages discarded by fault injection do *not* error —
    /// like a real network, the sender cannot tell.
    pub fn send(&self, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        self.net.send_from(self.addr, to, msg)
    }

    /// Sends `msg` to every address in `to`.
    ///
    /// The envelope is a shared handle, so the per-destination clone is a
    /// reference-count bump — one serialization and one batch allocation
    /// regardless of fan-out.
    ///
    /// # Errors
    /// Returns the first [`NetworkError`] encountered; remaining
    /// destinations are still attempted.
    pub fn broadcast(&self, to: &[Sender], msg: &SignedMessage) -> Result<(), NetworkError> {
        let mut first_err = None;
        for &dest in to {
            if dest == self.addr {
                continue; // no self-delivery on broadcast
            }
            if let Err(e) = self.send(dest, msg.clone()) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Blocks until a message arrives.
    ///
    /// # Errors
    /// Returns [`NetworkError::Closed`] if the network is gone.
    pub fn recv(&self) -> Result<SignedMessage, NetworkError> {
        self.rx.recv().map_err(|_| NetworkError::Closed)
    }

    /// Blocks up to `timeout` for a message; `Ok(None)` on timeout.
    ///
    /// # Errors
    /// Returns [`NetworkError::Closed`] if the network is gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<SignedMessage, NetworkError> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Ok(m),
            Err(RecvTimeoutError::Timeout) => Err(NetworkError::Closed),
            Err(RecvTimeoutError::Disconnected) => Err(NetworkError::Closed),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<SignedMessage> {
        self.rx.try_recv().ok()
    }

    /// A clone of the inbound receiver, for feeding multiple input threads
    /// (crossbeam channels are multi-consumer).
    pub fn receiver(&self) -> Receiver<SignedMessage> {
        self.rx.clone()
    }

    /// A cloneable send-only handle, for distributing the transmit side
    /// across multiple output threads.
    pub fn sender(&self) -> EndpointSender {
        EndpointSender {
            addr: self.addr,
            net: self.net.clone(),
        }
    }

    /// The network this endpoint belongs to.
    pub fn network(&self) -> &Network {
        &self.net
    }
}

/// Send-only clone of an [`Endpoint`], usable from many threads at once.
#[derive(Clone)]
pub struct EndpointSender {
    addr: Sender,
    net: Network,
}

impl fmt::Debug for EndpointSender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EndpointSender")
            .field("addr", &self.addr)
            .finish()
    }
}

impl EndpointSender {
    /// The sending address.
    pub fn addr(&self) -> Sender {
        self.addr
    }

    /// Sends `msg` to `to`.
    ///
    /// # Errors
    /// Returns [`NetworkError::UnknownDestination`] if `to` was never
    /// registered.
    pub fn send(&self, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        self.net.send_from(self.addr, to, msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::messages::Message;
    use rdb_common::{ReplicaId, SignatureBytes};

    fn r(i: u32) -> Sender {
        Sender::Replica(ReplicaId(i))
    }

    fn msg(from: Sender) -> SignedMessage {
        SignedMessage::new(
            Message::ClientRequest { txns: vec![] },
            from,
            SignatureBytes::empty(),
        )
    }

    #[test]
    fn point_to_point_delivery() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        let b = net.register(r(1));
        a.send(r(1), msg(r(0))).unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.sender(), r(0));
        assert_eq!(net.stats().total_sent(), 1);
    }

    #[test]
    fn broadcast_skips_self() {
        let net = Network::new(NetworkConfig::default());
        let eps: Vec<Endpoint> = (0..4).map(|i| net.register(r(i))).collect();
        let all: Vec<Sender> = (0..4).map(r).collect();
        eps[0].broadcast(&all, &msg(r(0))).unwrap();
        assert!(eps[0].try_recv().is_none(), "no self-delivery");
        for ep in &eps[1..] {
            assert!(ep.recv_timeout(Duration::from_secs(1)).is_ok());
        }
    }

    #[test]
    fn unknown_destination_errors() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        assert!(matches!(
            a.send(r(9), msg(r(0))),
            Err(NetworkError::UnknownDestination(_))
        ));
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        let b = net.register(r(1));
        net.faults().crash(r(1));
        a.send(r(1), msg(r(0))).unwrap(); // no error: silent drop
        assert!(b.try_recv().is_none());
        assert_eq!(net.stats().dropped(), 1);
        net.faults().recover(r(1));
        a.send(r(1), msg(r(0))).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn latency_delays_delivery() {
        let net = Network::new(NetworkConfig {
            latency: Duration::from_millis(30),
            queue_capacity: None,
        });
        let a = net.register(r(0));
        let b = net.register(r(1));
        let start = Instant::now();
        a.send(r(1), msg(r(0))).unwrap();
        assert!(b.try_recv().is_none(), "must not arrive instantly");
        let got = b.recv_timeout(Duration::from_secs(2));
        assert!(got.is_ok());
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(25),
            "arrived after {elapsed:?}"
        );
        net.shutdown();
    }

    #[test]
    fn latency_preserves_fifo_per_link() {
        let net = Network::new(NetworkConfig {
            latency: Duration::from_millis(5),
            queue_capacity: None,
        });
        let a = net.register(r(0));
        let b = net.register(r(1));
        for i in 0..20u64 {
            let m = SignedMessage::new(
                Message::Checkpoint {
                    seq: rdb_common::SeqNum(i),
                    state_digest: rdb_common::Digest::ZERO,
                    replica: ReplicaId(0),
                },
                r(0),
                SignatureBytes::empty(),
            );
            a.send(r(1), m).unwrap();
        }
        for i in 0..20u64 {
            let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(got.msg().seq(), Some(rdb_common::SeqNum(i)));
        }
        net.shutdown();
    }

    #[test]
    fn deregister_stops_delivery() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        let _b = net.register(r(1));
        net.deregister(r(1));
        assert!(a.send(r(1), msg(r(0))).is_err());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let net = Network::new(NetworkConfig::default());
        let _a = net.register(r(0));
        let _a2 = net.register(r(0));
    }

    #[test]
    fn multi_consumer_receiver() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        let b = net.register(r(1));
        let rx2 = b.receiver();
        a.send(r(1), msg(r(0))).unwrap();
        a.send(r(1), msg(r(0))).unwrap();
        // Both receivers drain from the same queue.
        let m1 = b.recv_timeout(Duration::from_secs(1));
        let m2 = rx2.recv_timeout(Duration::from_secs(1));
        assert!(m1.is_ok());
        assert!(m2.is_ok());
    }
}
