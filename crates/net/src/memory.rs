//! The in-memory switchboard: endpoints, delivery, latency shaping.
//!
//! Delivery is direct channel hand-off when latency is zero; with a
//! configured latency a background *wire thread* holds messages in a
//! deadline heap and releases them when due, preserving per-link FIFO
//! ordering for equal deadlines.

use crate::fault::FaultController;
use crate::stats::NetworkStats;
use crate::transport::{
    ClientTransport, Endpoint, MeshTransport, NetHandle, NetworkError, Transport,
};
use crossbeam::channel::{self, Receiver, Sender as ChanSender};
use parking_lot::{Condvar, Mutex, RwLock};
use rdb_common::codec::Wire;
use rdb_common::messages::{Sender, SignedMessage};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for an in-memory network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// One-way delivery latency applied to every message.
    pub latency: Duration,
    /// Per-endpoint inbound queue bound (`None` = unbounded).
    pub queue_capacity: Option<usize>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: Duration::ZERO,
            queue_capacity: None,
        }
    }
}

struct WireEntry {
    due: Instant,
    seq: u64,
    to: Sender,
    msg: SignedMessage,
}

impl PartialEq for WireEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for WireEntry {}
impl PartialOrd for WireEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for WireEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so the BinaryHeap pops the earliest deadline first;
        // tie-break on sequence for FIFO between equal deadlines.
        other.due.cmp(&self.due).then(other.seq.cmp(&self.seq))
    }
}

struct NetInner {
    config: NetworkConfig,
    mailboxes: RwLock<HashMap<Sender, ChanSender<SignedMessage>>>,
    stats: NetworkStats,
    faults: FaultController,
    wire: Mutex<WireState>,
    wire_signal: Condvar,
    /// Spawns the wire thread at most once; delay jitter can demand it
    /// long after construction.
    wire_started: std::sync::Once,
}

impl NetInner {
    fn deliver(&self, to: Sender, msg: SignedMessage) {
        let kind = msg.kind();
        let mailboxes = self.mailboxes.read();
        if let Some(tx) = mailboxes.get(&to) {
            if tx.send(msg).is_ok() {
                self.stats.record_delivered(kind);
                return;
            }
        }
        self.stats.record_dropped();
    }
}

struct WireState {
    heap: BinaryHeap<WireEntry>,
    next_seq: u64,
    shutdown: bool,
}

/// An in-memory network connecting replicas and clients.
///
/// Cloneable handle; all clones refer to the same switchboard. Implements
/// [`Transport`], so a [`NetHandle`] over it is interchangeable with the
/// TCP backend.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetInner>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("endpoints", &self.inner.mailboxes.read().len())
            .field("latency", &self.inner.config.latency)
            .finish()
    }
}

impl Network {
    /// Creates a network; if `config.latency` is non-zero, spawns the wire
    /// thread that delays deliveries. (Fault-injected delay jitter spawns
    /// it on demand later.)
    pub fn new(config: NetworkConfig) -> Self {
        let needs_wire = !config.latency.is_zero();
        let inner = Arc::new(NetInner {
            config,
            mailboxes: RwLock::new(HashMap::new()),
            stats: NetworkStats::new(),
            faults: FaultController::new(),
            wire: Mutex::new(WireState {
                heap: BinaryHeap::new(),
                next_seq: 0,
                shutdown: false,
            }),
            wire_signal: Condvar::new(),
            wire_started: std::sync::Once::new(),
        });
        let net = Network { inner };
        if needs_wire {
            net.ensure_wire_thread();
        }
        net
    }

    /// Spawns the delayed-delivery wire thread exactly once.
    fn ensure_wire_thread(&self) {
        let weak = Arc::downgrade(&self.inner);
        self.inner.wire_started.call_once(move || {
            std::thread::Builder::new()
                .name("rdb-net-wire".into())
                .spawn(move || {
                    while let Some(inner) = weak.upgrade() {
                        let mut due_msgs = Vec::new();
                        {
                            let mut wire = inner.wire.lock();
                            if wire.shutdown {
                                return;
                            }
                            let now = Instant::now();
                            while wire.heap.peek().is_some_and(|e| e.due <= now) {
                                let e = wire.heap.pop().expect("peeked entry exists");
                                due_msgs.push((e.to, e.msg));
                            }
                            if due_msgs.is_empty() {
                                match wire.heap.peek().map(|e| e.due) {
                                    Some(due) => {
                                        let wait = due.saturating_duration_since(Instant::now());
                                        inner.wire_signal.wait_for(&mut wire, wait);
                                    }
                                    None => {
                                        inner
                                            .wire_signal
                                            .wait_for(&mut wire, Duration::from_millis(50));
                                    }
                                }
                                if wire.shutdown {
                                    return;
                                }
                            }
                        }
                        for (to, msg) in due_msgs {
                            inner.deliver(to, msg);
                        }
                        // Drop the strong reference before looping so the
                        // network can be freed while the thread sleeps.
                        drop(inner);
                    }
                })
                .expect("spawn wire thread");
        });
    }

    /// A [`NetHandle`] over this switchboard, for APIs that take the
    /// backend-agnostic transport handle.
    pub fn handle(&self) -> NetHandle {
        NetHandle::new(Arc::new(self.clone()))
    }

    /// Registers `addr`, returning its endpoint.
    ///
    /// # Panics
    /// Panics if `addr` is already registered.
    pub fn register(&self, addr: Sender) -> Endpoint {
        self.handle().register(addr)
    }

    /// Removes `addr` from the switchboard (future sends to it error).
    pub fn deregister(&self, addr: Sender) {
        self.inner.mailboxes.write().remove(&addr);
    }

    /// The shared fault controller.
    pub fn faults(&self) -> &FaultController {
        &self.inner.faults
    }

    /// The shared delivery statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.inner.stats
    }

    /// Shuts down the wire thread (no-op for zero-latency networks).
    pub fn shutdown(&self) {
        let mut wire = self.inner.wire.lock();
        wire.shutdown = true;
        self.inner.wire_signal.notify_all();
    }
}

impl MeshTransport for Network {
    fn send_from(&self, from: Sender, to: Sender, msg: SignedMessage) -> Result<(), NetworkError> {
        if !self.inner.mailboxes.read().contains_key(&to) {
            self.inner.stats.record_dropped();
            return Err(NetworkError::UnknownDestination(format!("{to:?}")));
        }
        // Exact bytes-on-wire accounting: `encoded_len` is memoized in the
        // envelope, so pricing a broadcast walks the batch once, not once
        // per destination — and both transport backends report the same
        // number for the same message.
        self.inner.stats.record_sent(msg.kind(), msg.encoded_len());
        if self.inner.faults.should_drop(from, to) {
            self.inner.stats.record_dropped();
            return Ok(()); // silently dropped, like a real network
        }
        // Total one-way delay: configured base latency plus any
        // fault-injected deterministic jitter for this link message.
        let delay = self.inner.config.latency
            + self
                .inner
                .faults
                .delay_for(from, to)
                .unwrap_or(Duration::ZERO);
        if delay.is_zero() {
            self.inner.deliver(to, msg);
        } else {
            self.ensure_wire_thread();
            let mut wire = self.inner.wire.lock();
            let seq = wire.next_seq;
            wire.next_seq += 1;
            wire.heap.push(WireEntry {
                due: Instant::now() + delay,
                seq,
                to,
                msg,
            });
            self.inner.wire_signal.notify_one();
        }
        Ok(())
    }
}

impl ClientTransport for Network {
    fn send_direct(
        &self,
        from: Sender,
        to: Sender,
        msg: SignedMessage,
    ) -> Result<(), NetworkError> {
        // Channel hand-off never sheds, so the reliable client path is
        // the same code path as mesh traffic in this backend.
        self.send_from(from, to, msg)
    }
}

impl Transport for Network {
    fn register_mailbox(&self, addr: Sender) -> Receiver<SignedMessage> {
        let (tx, rx) = match self.inner.config.queue_capacity {
            Some(cap) => channel::bounded(cap),
            None => channel::unbounded(),
        };
        let prev = self.inner.mailboxes.write().insert(addr, tx);
        assert!(prev.is_none(), "address {addr:?} registered twice");
        rx
    }

    fn deregister(&self, addr: Sender) {
        Network::deregister(self, addr);
    }

    fn stats(&self) -> &NetworkStats {
        &self.inner.stats
    }

    fn faults(&self) -> &FaultController {
        &self.inner.faults
    }

    fn shutdown(&self) {
        Network::shutdown(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::messages::Message;
    use rdb_common::{ReplicaId, SignatureBytes};

    fn r(i: u32) -> Sender {
        Sender::Replica(ReplicaId(i))
    }

    fn msg(from: Sender) -> SignedMessage {
        SignedMessage::new(
            Message::ClientRequest { txns: vec![] },
            from,
            SignatureBytes::empty(),
        )
    }

    #[test]
    fn point_to_point_delivery() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        let b = net.register(r(1));
        a.send(r(1), msg(r(0))).unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(got.sender(), r(0));
        assert_eq!(net.stats().total_sent(), 1);
    }

    #[test]
    fn broadcast_skips_self() {
        let net = Network::new(NetworkConfig::default());
        let eps: Vec<Endpoint> = (0..4).map(|i| net.register(r(i))).collect();
        let all: Vec<Sender> = (0..4).map(r).collect();
        eps[0].broadcast(&all, &msg(r(0))).unwrap();
        assert!(eps[0].try_recv().is_none(), "no self-delivery");
        for ep in &eps[1..] {
            assert!(ep.recv_timeout(Duration::from_secs(1)).is_ok());
        }
    }

    #[test]
    fn unknown_destination_errors() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        assert!(matches!(
            a.send(r(9), msg(r(0))),
            Err(NetworkError::UnknownDestination(_))
        ));
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        let b = net.register(r(1));
        net.faults().crash(r(1));
        a.send(r(1), msg(r(0))).unwrap(); // no error: silent drop
        assert!(b.try_recv().is_none());
        assert_eq!(net.stats().dropped(), 1);
        net.faults().recover(r(1));
        a.send(r(1), msg(r(0))).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(1)).is_ok());
    }

    #[test]
    fn latency_delays_delivery() {
        let net = Network::new(NetworkConfig {
            latency: Duration::from_millis(30),
            queue_capacity: None,
        });
        let a = net.register(r(0));
        let b = net.register(r(1));
        let start = Instant::now();
        a.send(r(1), msg(r(0))).unwrap();
        assert!(b.try_recv().is_none(), "must not arrive instantly");
        let got = b.recv_timeout(Duration::from_secs(2));
        assert!(got.is_ok());
        let elapsed = start.elapsed();
        assert!(
            elapsed >= Duration::from_millis(25),
            "arrived after {elapsed:?}"
        );
        net.shutdown();
    }

    #[test]
    fn latency_preserves_fifo_per_link() {
        let net = Network::new(NetworkConfig {
            latency: Duration::from_millis(5),
            queue_capacity: None,
        });
        let a = net.register(r(0));
        let b = net.register(r(1));
        for i in 0..20u64 {
            let m = SignedMessage::new(
                Message::Checkpoint {
                    seq: rdb_common::SeqNum(i),
                    state_digest: rdb_common::Digest::ZERO,
                    replica: ReplicaId(0),
                },
                r(0),
                SignatureBytes::empty(),
            );
            a.send(r(1), m).unwrap();
        }
        for i in 0..20u64 {
            let got = b.recv_timeout(Duration::from_secs(2)).unwrap();
            assert_eq!(got.msg().seq(), Some(rdb_common::SeqNum(i)));
        }
        net.shutdown();
    }

    #[test]
    fn deregister_stops_delivery() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        let _b = net.register(r(1));
        net.deregister(r(1));
        assert!(a.send(r(1), msg(r(0))).is_err());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let net = Network::new(NetworkConfig::default());
        let _a = net.register(r(0));
        let _a2 = net.register(r(0));
    }

    #[test]
    fn multi_consumer_receiver() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        let b = net.register(r(1));
        let rx2 = b.receiver();
        a.send(r(1), msg(r(0))).unwrap();
        a.send(r(1), msg(r(0))).unwrap();
        // Both receivers drain from the same queue.
        let m1 = b.recv_timeout(Duration::from_secs(1));
        let m2 = rx2.recv_timeout(Duration::from_secs(1));
        assert!(m1.is_ok());
        assert!(m2.is_ok());
    }

    #[test]
    fn bytes_accounted_exactly() {
        let net = Network::new(NetworkConfig::default());
        let a = net.register(r(0));
        let _b = net.register(r(1));
        let m = msg(r(0));
        let want = m.encoded_len() as u64;
        a.send(r(1), m).unwrap();
        assert_eq!(net.stats().bytes_sent(), want);
        assert_eq!(
            net.stats()
                .bytes_for(rdb_common::MessageKind::ClientRequest),
            want
        );
    }
}
