//! Transport-conformance suite: every test runs against both backends
//! through the [`Transport`] trait, pinning the semantics the replica
//! pipeline depends on — framing round-trips (including batches far past
//! 64 KiB), per-link FIFO ordering, send-side fault injection, reply
//! routing for clients, and byte-exact `NetworkStats` accounting.
//! TCP-only behaviors (reconnect after a peer restart, late peer start)
//! get dedicated tests at the bottom.

use rdb_common::messages::{Message, MessageKind, Sender, SignedMessage};
use rdb_common::{
    Batch, ClientId, Digest, Operation, PeerMap, ReplicaId, SeqNum, SignatureBytes, Transaction,
    ViewNum, Wire,
};
use rdb_net::{Endpoint, NetHandle, Network, NetworkConfig, NetworkError, TcpConfig, TcpTransport};
use std::sync::Arc;
use std::time::{Duration, Instant};

const RECV_WAIT: Duration = Duration::from_secs(10);

fn r(i: u32) -> Sender {
    Sender::Replica(ReplicaId(i))
}

fn c(i: u64) -> Sender {
    Sender::Client(ClientId(i))
}

/// A cluster of registered replica endpoints over one backend.
struct Cluster {
    /// Transport of each replica (same handle repeated for in-memory).
    nets: Vec<NetHandle>,
    eps: Vec<Endpoint>,
    /// Extra transports to shut down (client-side TCP transports).
    extra: Vec<NetHandle>,
    peers: PeerMap,
}

impl Cluster {
    fn memory(n: usize) -> Cluster {
        let net = Network::new(NetworkConfig::default()).handle();
        let eps = (0..n as u32).map(|i| net.register(r(i))).collect();
        Cluster {
            nets: vec![net; n],
            eps,
            extra: Vec::new(),
            peers: PeerMap::new(),
        }
    }

    fn tcp(n: usize) -> Cluster {
        let (peers, listeners) = TcpTransport::bind_loopback_cluster(n).expect("bind loopback");
        let nets: Vec<NetHandle> = listeners
            .into_iter()
            .map(|listener| {
                TcpTransport::with_listener(
                    TcpConfig {
                        listen: listener.local_addr().ok(),
                        peers: peers.clone(),
                        ..TcpConfig::default()
                    },
                    Some(listener),
                )
                .handle()
            })
            .collect();
        let eps = nets
            .iter()
            .enumerate()
            .map(|(i, net)| net.register(r(i as u32)))
            .collect();
        Cluster {
            nets,
            eps,
            extra: Vec::new(),
            peers,
        }
    }

    /// The transport hosting replica `i` (for fault/stat injection on the
    /// send side).
    fn net(&self, i: usize) -> &NetHandle {
        &self.nets[i]
    }

    /// Registers a client endpoint: on the shared switchboard in memory,
    /// on its own dial-out transport over TCP (as a real client process
    /// would).
    fn add_client(&mut self, id: u64) -> Endpoint {
        if self.peers.is_empty() {
            self.nets[0].register(c(id))
        } else {
            let net = TcpTransport::new(TcpConfig::for_client(self.peers.clone()))
                .expect("client transport")
                .handle();
            let ep = net.register(c(id));
            self.extra.push(net);
            ep
        }
    }

    fn shutdown(self) {
        for net in self.nets.iter().chain(self.extra.iter()) {
            net.shutdown();
        }
    }
}

/// Runs `test` against a fresh cluster of each backend.
fn conformance(n: usize, test: impl Fn(&mut Cluster, &str)) {
    for (name, mut cluster) in [("memory", Cluster::memory(n)), ("tcp", Cluster::tcp(n))] {
        test(&mut cluster, name);
        cluster.shutdown();
    }
}

fn prepare_msg(from: Sender, seq: u64) -> SignedMessage {
    SignedMessage::new(
        Message::Prepare {
            view: ViewNum(0),
            seq: SeqNum(seq),
            digest: Digest([7; 32]),
        },
        from,
        SignatureBytes(vec![9; 32]),
    )
}

fn big_preprepare(from: Sender, txns: usize, payload: usize) -> SignedMessage {
    let batch: Batch = (0..txns as u64)
        .map(|i| {
            Transaction::new(
                ClientId(i % 4),
                i,
                vec![Operation::Write {
                    key: i,
                    value: vec![(i & 0xff) as u8; payload],
                }],
            )
        })
        .collect();
    SignedMessage::new(
        Message::PrePrepare {
            view: ViewNum(0),
            seq: SeqNum(1),
            digest: Digest([3; 32]),
            batch: Arc::new(batch),
        },
        from,
        SignatureBytes(vec![5; 64]),
    )
}

#[test]
fn round_trip_preserves_envelope() {
    conformance(2, |cl, name| {
        let sm = prepare_msg(r(0), 42);
        cl.eps[0].send(r(1), sm.clone()).unwrap();
        let got = cl.eps[1].recv_timeout(RECV_WAIT).unwrap_or_else(|e| {
            panic!("[{name}] no delivery: {e}");
        });
        assert_eq!(got, sm, "[{name}] envelope must survive the link");
        assert_eq!(
            got.signing_bytes(),
            sm.signing_bytes(),
            "[{name}] canonical bytes must be identical (and memo-seeded)"
        );
    });
}

#[test]
fn round_trip_survives_batches_past_64kib() {
    conformance(2, |cl, name| {
        // ~200 txns × 512-byte payloads ≈ 110 KiB on the wire: well past
        // a u16 length field and any single-read framing assumption.
        let sm = big_preprepare(r(0), 200, 512);
        assert!(
            sm.encoded_len() > 64 * 1024,
            "test batch must exceed 64 KiB, got {}",
            sm.encoded_len()
        );
        cl.eps[0].send(r(1), sm.clone()).unwrap();
        let got = cl.eps[1].recv_timeout(RECV_WAIT).unwrap_or_else(|e| {
            panic!("[{name}] no delivery of large frame: {e}");
        });
        assert_eq!(got, sm, "[{name}] large envelope must survive intact");
        assert_eq!(got.encoded_len(), sm.encoded_len());
    });
}

#[test]
fn per_link_delivery_is_fifo() {
    conformance(2, |cl, name| {
        const N: u64 = 200;
        for i in 0..N {
            cl.eps[0].send(r(1), prepare_msg(r(0), i)).unwrap();
        }
        for i in 0..N {
            let got = cl.eps[1].recv_timeout(RECV_WAIT).unwrap_or_else(|e| {
                panic!("[{name}] message {i} missing: {e}");
            });
            assert_eq!(
                got.msg().seq(),
                Some(SeqNum(i)),
                "[{name}] out-of-order delivery"
            );
        }
    });
}

#[test]
fn send_side_crash_faults_drop_traffic() {
    conformance(2, |cl, name| {
        cl.net(0).faults().crash(r(1));
        cl.eps[0].send(r(1), prepare_msg(r(0), 1)).unwrap();
        assert!(
            cl.eps[1].recv_timeout(Duration::from_millis(300)).is_err(),
            "[{name}] crashed destination must receive nothing"
        );
        cl.net(0).faults().recover(r(1));
        cl.eps[0].send(r(1), prepare_msg(r(0), 2)).unwrap();
        let got = cl.eps[1].recv_timeout(RECV_WAIT).unwrap_or_else(|e| {
            panic!("[{name}] recovery must restore delivery: {e}");
        });
        assert_eq!(got.msg().seq(), Some(SeqNum(2)));
    });
}

#[test]
fn partitions_cut_cross_traffic_only() {
    conformance(4, |cl, name| {
        // Partition {0,1} | {2,3} on every sender's controller (one call
        // on the shared controller in memory, one per node over TCP).
        for i in 0..4 {
            cl.net(i).faults().partition(&[r(0), r(1)], &[r(2), r(3)]);
        }
        cl.eps[0].send(r(2), prepare_msg(r(0), 1)).unwrap();
        assert!(
            cl.eps[2].recv_timeout(Duration::from_millis(300)).is_err(),
            "[{name}] cross-partition traffic must drop"
        );
        cl.eps[0].send(r(1), prepare_msg(r(0), 2)).unwrap();
        assert!(
            cl.eps[1].recv_timeout(RECV_WAIT).is_ok(),
            "[{name}] same-side traffic must flow"
        );
        for i in 0..4 {
            cl.net(i).faults().heal_all();
        }
        cl.eps[0].send(r(2), prepare_msg(r(0), 3)).unwrap();
        assert!(
            cl.eps[2].recv_timeout(RECV_WAIT).is_ok(),
            "[{name}] healed partition must deliver"
        );
    });
}

#[test]
fn stats_count_bytes_on_wire_exactly() {
    conformance(2, |cl, name| {
        let prepares: Vec<SignedMessage> = (0..5).map(|i| prepare_msg(r(0), i)).collect();
        let big = big_preprepare(r(0), 50, 128);
        let mut want_prepare_bytes = 0u64;
        for sm in &prepares {
            want_prepare_bytes += sm.encoded_len() as u64;
            cl.eps[0].send(r(1), sm.clone()).unwrap();
        }
        cl.eps[0].send(r(1), big.clone()).unwrap();
        let stats = cl.net(0).stats();
        assert_eq!(
            stats.bytes_for(MessageKind::Prepare),
            want_prepare_bytes,
            "[{name}] per-kind byte accounting must equal Wire::encoded_len"
        );
        assert_eq!(
            stats.bytes_for(MessageKind::PrePrepare),
            big.encoded_len() as u64,
            "[{name}]"
        );
        assert_eq!(stats.sent(MessageKind::Prepare), 5, "[{name}]");
        assert_eq!(stats.sent(MessageKind::PrePrepare), 1, "[{name}]");
        assert_eq!(
            stats.bytes_sent(),
            want_prepare_bytes + big.encoded_len() as u64,
            "[{name}] total bytes are the sum of the kinds"
        );
        // Delivery accounting lands on the receiving node's stats.
        for _ in 0..6 {
            cl.eps[1].recv_timeout(RECV_WAIT).unwrap();
        }
        let delivered = cl.net(1).stats().delivered(MessageKind::Prepare);
        assert_eq!(delivered, 5, "[{name}] deliveries recorded per kind");
    });
}

#[test]
fn broadcast_reaches_every_peer_once() {
    conformance(4, |cl, name| {
        let all: Vec<Sender> = (0..4).map(r).collect();
        let sm = big_preprepare(r(0), 20, 64);
        cl.eps[0].broadcast(&all, &sm).unwrap();
        assert!(
            cl.eps[0].try_recv().is_none(),
            "[{name}] no self-delivery on broadcast"
        );
        for ep in &cl.eps[1..] {
            let got = ep.recv_timeout(RECV_WAIT).unwrap_or_else(|e| {
                panic!("[{name}] broadcast missed {:?}: {e}", ep.addr());
            });
            assert_eq!(got, sm);
        }
        assert_eq!(
            cl.net(0).stats().sent(MessageKind::PrePrepare),
            3,
            "[{name}] one send per destination"
        );
        assert_eq!(
            cl.net(0).stats().bytes_for(MessageKind::PrePrepare),
            3 * sm.encoded_len() as u64,
            "[{name}] broadcast bytes = n × encoded_len"
        );
    });
}

#[test]
fn unknown_destinations_error() {
    conformance(2, |cl, name| {
        // A replica outside the membership and a client nobody announced.
        assert!(
            matches!(
                cl.eps[0].send(r(99), prepare_msg(r(0), 1)),
                Err(NetworkError::UnknownDestination(_))
            ),
            "[{name}]"
        );
        assert!(
            matches!(
                cl.eps[0].send(c(99), prepare_msg(r(0), 1)),
                Err(NetworkError::UnknownDestination(_))
            ),
            "[{name}]"
        );
    });
}

#[test]
fn client_requests_and_replies_route_both_ways() {
    let run = |mut cl: Cluster, name: &str| {
        let client = cl.add_client(7);
        let req = SignedMessage::new(
            Message::ClientRequest { txns: vec![] },
            c(7),
            SignatureBytes(vec![1; 16]),
        );
        client.send(r(0), req).unwrap();
        let got = cl.eps[0].recv_timeout(RECV_WAIT).unwrap_or_else(|e| {
            panic!("[{name}] request must reach the replica: {e}");
        });
        assert_eq!(got.sender(), c(7));
        // The reply route may be learned asynchronously (HELLO in flight
        // over TCP), so retry until the transport knows the client.
        let reply = prepare_msg(r(0), 1);
        let deadline = Instant::now() + RECV_WAIT;
        loop {
            match cl.eps[0].send(c(7), reply.clone()) {
                Ok(()) => break,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("[{name}] no reply route to the client: {e}"),
            }
        }
        assert!(
            client.recv_timeout(RECV_WAIT).is_ok(),
            "[{name}] reply must reach the client"
        );
        cl.shutdown();
    };
    run(Cluster::memory(2), "memory");
    run(Cluster::tcp(2), "tcp");
}

// ---------------------------------------------------------------------------
// TCP-only behaviors.
// ---------------------------------------------------------------------------

/// A peer that starts *after* traffic begins is reached once it binds:
/// the dialed writer retries with backoff and nothing but queue overflow
/// loses messages.
#[test]
fn tcp_late_peer_receives_queued_traffic() {
    let (peers, mut listeners) = TcpTransport::bind_loopback_cluster(2).unwrap();
    let l1 = listeners.remove(1);
    let l0 = listeners.remove(0);
    let t0 = TcpTransport::with_listener(
        TcpConfig {
            listen: l0.local_addr().ok(),
            peers: peers.clone(),
            ..TcpConfig::default()
        },
        Some(l0),
    );
    let a = t0.register(r(0));
    // Peer 1 does not exist yet; sends enqueue and the writer backs off.
    for i in 0..10 {
        a.send(r(1), prepare_msg(r(0), i)).unwrap();
    }
    std::thread::sleep(Duration::from_millis(200));
    let t1 = TcpTransport::with_listener(
        TcpConfig {
            listen: l1.local_addr().ok(),
            peers,
            ..TcpConfig::default()
        },
        Some(l1),
    );
    let b = t1.register(r(1));
    for i in 0..10 {
        let got = b
            .recv_timeout(RECV_WAIT)
            .unwrap_or_else(|e| panic!("queued message {i} lost: {e}"));
        assert_eq!(got.msg().seq(), Some(SeqNum(i)), "FIFO across the backoff");
    }
    t0.shutdown();
    t1.shutdown();
}

/// A restarted replica (same address, fresh process state) rejoins: the
/// peer's writer reconnects with backoff and new traffic flows.
#[test]
fn tcp_reconnects_after_peer_restart() {
    let (peers, mut listeners) = TcpTransport::bind_loopback_cluster(2).unwrap();
    let l1 = listeners.remove(1);
    let l0 = listeners.remove(0);
    let addr1 = peers.get(ReplicaId(1)).unwrap();
    let t0 = TcpTransport::with_listener(
        TcpConfig {
            listen: l0.local_addr().ok(),
            peers: peers.clone(),
            ..TcpConfig::default()
        },
        Some(l0),
    );
    let t1 = TcpTransport::with_listener(
        TcpConfig {
            listen: Some(addr1),
            peers: peers.clone(),
            ..TcpConfig::default()
        },
        Some(l1),
    );
    let a = t0.register(r(0));
    let b = t1.register(r(1));
    a.send(r(1), prepare_msg(r(0), 1)).unwrap();
    assert!(b.recv_timeout(RECV_WAIT).is_ok(), "pre-restart delivery");

    // "Restart" node 1: tear the whole transport down, then bring a fresh
    // one up on the same address (retrying the bind in case the old
    // listener needs a moment to release the port).
    t1.shutdown();
    drop(b);
    let deadline = Instant::now() + RECV_WAIT;
    let t1b = loop {
        match TcpTransport::new(TcpConfig {
            listen: Some(addr1),
            peers: peers.clone(),
            ..TcpConfig::default()
        }) {
            Ok(t) => break t,
            Err(e) if Instant::now() < deadline => {
                eprintln!("rebind pending: {e}");
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("cannot rebind {addr1}: {e}"),
        }
    };
    let b2 = t1b.register(r(1));

    // Keep sending until one lands: messages written into the dead socket
    // during the outage may be lost (that is TCP), but the link must heal.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut healed = false;
    let mut seq = 100;
    while Instant::now() < deadline {
        a.send(r(1), prepare_msg(r(0), seq)).unwrap();
        seq += 1;
        if b2.recv_timeout(Duration::from_millis(200)).is_ok() {
            healed = true;
            break;
        }
    }
    assert!(healed, "restarted peer never rejoined");
    t0.shutdown();
    t1b.shutdown();
}

/// Swarm scale through the reactor: ≥1K concurrent client sessions, each
/// on its own dedicated socket, run a HELLO + request/reply conversation
/// against one replica. Per-link FIFO must hold per client, the stats
/// must stay byte-exact across thousands of links, and the connection
/// gauge must show every socket.
#[test]
fn tcp_many_clients_request_reply_over_dedicated_links() {
    const CLIENTS: u64 = 1_000;
    const PER_CLIENT: u64 = 4;
    let wait = Duration::from_secs(60);

    let (peers, mut listeners) = TcpTransport::bind_loopback_cluster(1).unwrap();
    let l0 = listeners.remove(0);
    let t0 = TcpTransport::with_listener(
        TcpConfig {
            listen: l0.local_addr().ok(),
            peers: peers.clone(),
            ..TcpConfig::default()
        },
        Some(l0),
    );
    let replica = t0.register(r(0));
    // One swarm transport hosts every session; `dedicated_to` gives each
    // registered client endpoint its own connection to replica 0.
    let swarm = TcpTransport::new(TcpConfig::for_swarm(peers, ReplicaId(0))).unwrap();
    let swarm_handle = swarm.handle();
    let sessions: Vec<Endpoint> = (0..CLIENTS).map(|k| swarm_handle.register(c(k))).collect();

    // Every client fires its requests; seq = k * 1000 + i makes per-client
    // FIFO checkable from the replica's interleaved inbox.
    let mut want_bytes = 0u64;
    for (k, ep) in sessions.iter().enumerate() {
        for i in 0..PER_CLIENT {
            let sm = prepare_msg(c(k as u64), k as u64 * 1_000 + i);
            want_bytes += sm.encoded_len() as u64;
            ep.send_direct(r(0), sm).unwrap();
        }
    }

    // Drain at the replica: all requests arrive, in order per client.
    let mut last_seq: Vec<Option<u64>> = vec![None; CLIENTS as usize];
    let deadline = Instant::now() + wait;
    for n in 0..CLIENTS * PER_CLIENT {
        let got = replica
            .recv_timeout(deadline.saturating_duration_since(Instant::now()))
            .unwrap_or_else(|e| panic!("request {n} missing: {e}"));
        let Sender::Client(ClientId(k)) = got.sender() else {
            panic!("unexpected sender {:?}", got.sender());
        };
        let seq = got.msg().seq().expect("prepare has a seq").0;
        assert_eq!(seq / 1_000, k, "seq namespace must match the client");
        let prev = last_seq[k as usize].replace(seq);
        assert!(prev.is_none_or(|p| p < seq), "client {k} out of order");
        // Reply over the learned reverse route (same dedicated socket).
        replica
            .send_direct(got.sender(), prepare_msg(r(0), seq))
            .unwrap();
    }

    // The gauge sees every dedicated socket (+ shared replica link).
    assert!(
        swarm.open_connections() >= CLIENTS as usize,
        "expected ≥{CLIENTS} open connections, gauge says {}",
        swarm.open_connections()
    );

    // Every session collects its own replies, FIFO per link.
    for (k, ep) in sessions.iter().enumerate() {
        for i in 0..PER_CLIENT {
            let got = ep
                .recv_timeout(wait)
                .unwrap_or_else(|e| panic!("client {k} reply {i} missing: {e}"));
            assert_eq!(got.msg().seq(), Some(SeqNum(k as u64 * 1_000 + i)));
        }
    }

    // Byte-exact accounting across 1K links: requests on the swarm
    // transport, replies on the replica's.
    assert_eq!(swarm.stats().bytes_sent(), want_bytes);
    assert_eq!(
        swarm.stats().sent(MessageKind::Prepare),
        CLIENTS * PER_CLIENT
    );
    assert_eq!(t0.stats().sent(MessageKind::Prepare), CLIENTS * PER_CLIENT);

    swarm_handle.shutdown();
    t0.shutdown();
}

#[cfg(target_os = "linux")]
fn open_fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count())
}

/// Reclamation regression: 1K connect/disconnect cycles through the
/// reactor must not leak file descriptors or connection state — closed
/// connections are reaped eagerly on both the dialing and accepting side.
#[test]
fn tcp_connection_churn_reclaims_fds_and_state() {
    const CYCLES: u64 = 1_000;
    let wait = Duration::from_secs(30);

    let (peers, mut listeners) = TcpTransport::bind_loopback_cluster(1).unwrap();
    let l0 = listeners.remove(0);
    let t0 = TcpTransport::with_listener(
        TcpConfig {
            listen: l0.local_addr().ok(),
            peers: peers.clone(),
            ..TcpConfig::default()
        },
        Some(l0),
    );
    let replica = t0.register(r(0));
    let swarm = TcpTransport::new(TcpConfig::for_swarm(peers, ReplicaId(0))).unwrap();
    let swarm_handle = swarm.handle();

    // Warm up the shared link and thread pool before baselining fds.
    let warm = swarm_handle.register(c(u64::MAX));
    warm.send_direct(r(0), prepare_msg(c(u64::MAX), 0)).unwrap();
    replica.recv_timeout(wait).expect("warmup round trip");
    swarm_handle.deregister(c(u64::MAX));
    drop(warm);

    #[cfg(target_os = "linux")]
    let fd_baseline = open_fd_count();

    for k in 0..CYCLES {
        let ep = swarm_handle.register(c(k));
        ep.send_direct(r(0), prepare_msg(c(k), k)).unwrap();
        let got = replica
            .recv_timeout(wait)
            .unwrap_or_else(|e| panic!("cycle {k} round trip failed: {e}"));
        assert_eq!(got.sender(), c(k));
        // Deregistering tears the dedicated connection down eagerly; the
        // replica side reaps the accepted socket on EOF.
        swarm_handle.deregister(c(k));
    }

    // Both gauges converge back to the steady state: the swarm keeps at
    // most its shared replica link, the replica at most that same link.
    let deadline = Instant::now() + wait;
    loop {
        let open = swarm.open_connections() + t0.open_connections();
        if open <= 2 || Instant::now() > deadline {
            assert!(
                open <= 2,
                "churned connections not reclaimed: swarm={} replica={}",
                swarm.open_connections(),
                t0.open_connections()
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // And the process-level fd table shows no growth beyond slack for
    // in-flight reaping.
    #[cfg(target_os = "linux")]
    {
        let deadline = Instant::now() + wait;
        loop {
            let now = open_fd_count();
            if now <= fd_baseline + 8 || Instant::now() > deadline {
                assert!(
                    now <= fd_baseline + 8,
                    "fd leak across churn: {fd_baseline} before, {now} after"
                );
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    swarm_handle.shutdown();
    t0.shutdown();
}
