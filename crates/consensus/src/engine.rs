//! Protocol-agnostic wrapper over the replica state machines.
//!
//! The pipeline and simulator drive consensus through this enum so the
//! protocol is a runtime configuration knob (as in Figures 1, 8 and 17,
//! which swap PBFT for Zyzzyva on the same fabric).

use crate::actions::Action;
use crate::config::ConsensusConfig;
use crate::pbft::Pbft;
use crate::zyzzyva::Zyzzyva;
use rdb_common::block::BlockCertificate;
use rdb_common::messages::SignedMessage;
use rdb_common::{Batch, Digest, ProtocolKind, ReplicaId, SeqNum, ViewNum};
use std::sync::Arc;

/// A replica's consensus engine: PBFT or Zyzzyva behind one interface.
#[derive(Debug)]
pub enum ReplicaEngine {
    /// Three-phase PBFT.
    Pbft(Pbft),
    /// Single-phase speculative Zyzzyva.
    Zyzzyva(Zyzzyva),
}

impl ReplicaEngine {
    /// Creates the engine for `protocol` at replica `id`.
    pub fn new(protocol: ProtocolKind, id: ReplicaId, config: ConsensusConfig) -> Self {
        match protocol {
            ProtocolKind::Pbft => ReplicaEngine::Pbft(Pbft::new(id, config)),
            ProtocolKind::Zyzzyva => ReplicaEngine::Zyzzyva(Zyzzyva::new(id, config)),
        }
    }

    /// Which protocol this engine runs.
    pub fn protocol(&self) -> ProtocolKind {
        match self {
            ReplicaEngine::Pbft(_) => ProtocolKind::Pbft,
            ReplicaEngine::Zyzzyva(_) => ProtocolKind::Zyzzyva,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        match self {
            ReplicaEngine::Pbft(p) => p.id(),
            ReplicaEngine::Zyzzyva(z) => z.id(),
        }
    }

    /// The current view.
    pub fn view(&self) -> ViewNum {
        match self {
            ReplicaEngine::Pbft(p) => p.view(),
            ReplicaEngine::Zyzzyva(z) => z.view(),
        }
    }

    /// The current primary.
    pub fn primary(&self) -> ReplicaId {
        match self {
            ReplicaEngine::Pbft(p) => p.primary(),
            ReplicaEngine::Zyzzyva(z) => z.primary(),
        }
    }

    /// Whether this replica currently leads.
    pub fn is_primary(&self) -> bool {
        match self {
            ReplicaEngine::Pbft(p) => p.is_primary(),
            ReplicaEngine::Zyzzyva(z) => z.is_primary(),
        }
    }

    /// Primary path: propose a digested batch.
    pub fn propose(&mut self, batch: Batch, digest: Digest) -> Vec<Action> {
        match self {
            ReplicaEngine::Pbft(p) => p.propose(batch, digest),
            ReplicaEngine::Zyzzyva(z) => z.propose(batch, digest),
        }
    }

    /// Handles a verified signed message.
    pub fn on_message(&mut self, sm: &SignedMessage) -> Vec<Action> {
        match self {
            ReplicaEngine::Pbft(p) => p.on_message(sm),
            ReplicaEngine::Zyzzyva(z) => z.on_message(sm),
        }
    }

    /// Execution-layer notification that `seq` finished executing.
    pub fn on_executed(&mut self, seq: SeqNum, state_digest: Digest) -> Vec<Action> {
        match self {
            ReplicaEngine::Pbft(p) => p.on_executed(seq, state_digest),
            ReplicaEngine::Zyzzyva(z) => z.on_executed(seq, state_digest),
        }
    }

    /// Whether ordered-but-unfinished work is stuck — the signal the
    /// runtime's suspicion timer combines with client demand to decide the
    /// primary is dead.
    pub fn has_stalled_work(&self) -> bool {
        match self {
            ReplicaEngine::Pbft(p) => p.has_stalled_work(),
            ReplicaEngine::Zyzzyva(z) => z.has_stalled_work(),
        }
    }

    /// Suspicion timer fired: vote to replace the primary.
    pub fn on_timeout(&mut self) -> Vec<Action> {
        match self {
            ReplicaEngine::Pbft(p) => p.on_timeout(),
            ReplicaEngine::Zyzzyva(z) => z.on_timeout(),
        }
    }

    /// The next sequence this engine would assign as primary, when the
    /// protocol exposes it (PBFT only — the multi-primary gap-fill logic
    /// needs it; Zyzzyva never runs with `k > 1`).
    pub fn next_seq(&self) -> Option<SeqNum> {
        match self {
            ReplicaEngine::Pbft(p) => Some(p.next_seq()),
            ReplicaEngine::Zyzzyva(_) => None,
        }
    }

    /// Serves a peer's `FetchRequest` for `seq`: the batch plus whatever
    /// ordering proof the protocol retains (2f+1 commit signatures under
    /// PBFT, an empty certificate under Zyzzyva where the requester relies
    /// on f+1 matching peers instead).
    pub fn serve_fetch(
        &self,
        seq: SeqNum,
    ) -> Option<(ViewNum, Digest, Arc<Batch>, BlockCertificate)> {
        match self {
            ReplicaEngine::Pbft(p) => p.serve_fetch(seq),
            ReplicaEngine::Zyzzyva(z) => z.serve_fetch(seq),
        }
    }

    /// Installs a fetched batch the runtime has validated, filling an
    /// execution hole without a view change.
    pub fn install_fetched(
        &mut self,
        seq: SeqNum,
        view: ViewNum,
        digest: Digest,
        batch: Arc<Batch>,
        certificate: BlockCertificate,
    ) -> Vec<Action> {
        match self {
            ReplicaEngine::Pbft(p) => p.install_fetched(seq, view, digest, batch, certificate),
            ReplicaEngine::Zyzzyva(z) => z.install_fetched(seq, view, digest, batch, certificate),
        }
    }

    /// Adopts a verified snapshot at `base` (with the Zyzzyva rolling
    /// history at that point; ignored under PBFT).
    pub fn install_snapshot(&mut self, base: SeqNum, history: Digest) {
        match self {
            ReplicaEngine::Pbft(p) => p.install_snapshot(base, history),
            ReplicaEngine::Zyzzyva(z) => z.install_snapshot(base, history),
        }
    }

    /// Sequences worth fetching from peers (execution holes below the
    /// commit frontier), oldest first, at most `limit`.
    pub fn fetch_wanted(&self, limit: usize) -> Vec<SeqNum> {
        match self {
            ReplicaEngine::Pbft(p) => p.fetch_wanted(limit),
            ReplicaEngine::Zyzzyva(z) => z.fetch_wanted(limit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_dispatches_by_protocol() {
        let cfg = ConsensusConfig::new(4, 100);
        let p = ReplicaEngine::new(ProtocolKind::Pbft, ReplicaId(0), cfg);
        let z = ReplicaEngine::new(ProtocolKind::Zyzzyva, ReplicaId(1), cfg);
        assert_eq!(p.protocol(), ProtocolKind::Pbft);
        assert_eq!(z.protocol(), ProtocolKind::Zyzzyva);
        assert_eq!(p.id(), ReplicaId(0));
        assert_eq!(z.id(), ReplicaId(1));
        assert!(p.is_primary());
        assert!(!z.is_primary());
        assert_eq!(p.primary(), ReplicaId(0));
    }
}
