//! Sans-io BFT consensus state machines: PBFT and Zyzzyva.
//!
//! Both protocols are implemented as pure state machines — messages in,
//! [`Action`]s out — so the *same* protocol logic runs under the threaded
//! pipeline (`rdb-pipeline`) and the discrete-event simulator (`rdb-sim`).
//! This mirrors the paper's central methodology: hold the protocol fixed
//! and vary the system architecture around it.
//!
//! - [`pbft`] — three-phase PBFT with batching, checkpointing and a
//!   view-change skeleton (Figures 1, 8-17 run this).
//! - [`zyzzyva`] — single-phase speculative Zyzzyva with in-order
//!   speculative execution and the client-driven commit-certificate slow
//!   path (the comparison protocol of Figures 1, 8, 17).
//! - [`client`] — the matching client-side machines.
//! - [`multi`] — multi-primary ordering: k parallel PBFT instances over
//!   one replica set, interleaved into a single global sequence space.
//!
//! # Example
//!
//! ```
//! use rdb_consensus::{ConsensusConfig, ReplicaEngine};
//! use rdb_common::{ProtocolKind, ReplicaId};
//!
//! let cfg = ConsensusConfig::new(4, 100);
//! let engine = ReplicaEngine::new(ProtocolKind::Pbft, ReplicaId(0), cfg);
//! assert!(engine.is_primary());
//! ```

pub mod actions;
pub mod checkpoint;
pub mod client;
pub mod config;
pub mod engine;
pub mod multi;
pub mod pbft;
pub mod zyzzyva;

pub use actions::{Action, ClientAction};
pub use checkpoint::CheckpointTracker;
pub use client::{PbftClient, ZyzzyvaClient};
pub use config::ConsensusConfig;
pub use engine::ReplicaEngine;
pub use multi::MultiEngine;
pub use pbft::Pbft;
pub use zyzzyva::Zyzzyva;
