//! The action vocabulary emitted by the consensus state machines.
//!
//! State machines are *sans-io*: they never touch the network, clocks or
//! crypto. Handlers consume messages and return [`Action`]s; the runtime
//! (threaded pipeline or discrete-event simulator) interprets them — signs
//! and sends messages, executes batches in order, prunes state.

use rdb_common::block::BlockCertificate;
use rdb_common::{Batch, ClientId, Digest, Message, ReplicaId, SeqNum, ViewNum};
use std::sync::Arc;

/// An instruction from a replica state machine to its runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Sign and send `msg` to every other replica.
    Broadcast(Message),
    /// Sign and send `msg` to one replica.
    SendReplica(ReplicaId, Message),
    /// Sign and send `msg` to a client.
    SendClient(ClientId, Message),
    /// The batch at `seq` is committed: execute it **in sequence order**,
    /// append a block certified by `certificate`, and reply to clients.
    CommitBatch {
        /// Committed sequence number.
        seq: SeqNum,
        /// View in which the batch committed.
        view: ViewNum,
        /// Batch digest.
        digest: Digest,
        /// The transactions to execute, shared with the in-flight
        /// `PrePrepare` (no deep copy on commit).
        batch: Arc<Batch>,
        /// 2f+1 commit signatures proving the order.
        certificate: BlockCertificate,
    },
    /// Zyzzyva: execute speculatively (order not yet guaranteed) and send
    /// each client a `SpecResponse` carrying `history`.
    SpecExecute {
        /// Proposed sequence number.
        seq: SeqNum,
        /// Current view.
        view: ViewNum,
        /// Batch digest.
        digest: Digest,
        /// Rolling speculative-history digest after this batch.
        history: Digest,
        /// The transactions to execute, shared with the in-flight
        /// `PrePrepare` (no deep copy on speculative dispatch).
        batch: Arc<Batch>,
    },
    /// A checkpoint at `seq` became stable: state below it may be pruned.
    StableCheckpoint {
        /// The stable sequence number.
        seq: SeqNum,
    },
    /// Zyzzyva mis-speculation: the speculative suffix above `to` diverged
    /// from the authoritative history (view change or certificate
    /// mismatch). The runtime must undo every speculative execution with
    /// `seq > to` — restoring overwritten records and rolling the chain
    /// back — before applying any re-emitted `SpecExecute`/`CommitBatch`
    /// actions for the reconciled history.
    Rollback {
        /// Last sequence number that survives: the committed/checkpointed
        /// prefix both histories agree on.
        to: SeqNum,
    },
    /// The replica moved to a new view (primary may have changed).
    EnterView {
        /// The view now active.
        view: ViewNum,
        /// The consensus instance whose view changed (`0` outside
        /// multi-primary deployments).
        instance: u32,
    },
}

impl Action {
    /// Convenience: the outbound message if this action sends one.
    pub fn message(&self) -> Option<&Message> {
        match self {
            Action::Broadcast(m) | Action::SendReplica(_, m) | Action::SendClient(_, m) => Some(m),
            _ => None,
        }
    }
}

/// An instruction from a *client* state machine to its driver.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Send `msg` to one replica (usually the primary).
    Send(ReplicaId, Message),
    /// Send `msg` to all replicas.
    BroadcastReplicas(Message),
    /// A request completed with the given result.
    Complete {
        /// The finished request.
        txn_counter: u64,
        /// Execution result bytes.
        result: Vec<u8>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accessor() {
        let m = Message::Prepare {
            view: ViewNum(0),
            seq: SeqNum(1),
            digest: Digest::ZERO,
        };
        assert!(Action::Broadcast(m.clone()).message().is_some());
        assert!(Action::SendReplica(ReplicaId(1), m.clone())
            .message()
            .is_some());
        assert!(Action::SendClient(ClientId(0), m).message().is_some());
        assert!(Action::StableCheckpoint { seq: SeqNum(0) }
            .message()
            .is_none());
    }
}
