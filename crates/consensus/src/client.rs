//! Client-side protocol state machines.
//!
//! PBFT clients wait for `f+1` matching replies. Zyzzyva clients implement
//! the protocol's distinctive two paths: complete on `3f+1` matching
//! speculative responses (fast), or — after a timeout with at least `2f+1`
//! matching — assemble a commit certificate from the response signatures,
//! broadcast it, and wait for `2f+1` `LocalCommit` acknowledgements.
//! The timeout-driven slow path is what makes Zyzzyva collapse under a
//! single backup failure (Figure 17).

use crate::actions::ClientAction;
use rdb_common::block::BlockCertificate;
use rdb_common::messages::{Message, Sender, SignedMessage};
use rdb_common::{quorum, ClientId, Digest, ReplicaId, SeqNum, SignatureBytes, ViewNum};
use std::collections::{HashMap, HashSet};

/// PBFT client: collects `f+1` matching replies per request.
#[derive(Debug)]
pub struct PbftClient {
    id: ClientId,
    f: usize,
    outstanding: HashMap<u64, PbftTracker>,
}

#[derive(Debug, Default)]
struct PbftTracker {
    /// result bytes → replicas that reported it.
    replies: HashMap<Vec<u8>, HashSet<ReplicaId>>,
    done: bool,
}

impl PbftClient {
    /// Creates a client for a system tolerating `f` faults.
    pub fn new(id: ClientId, f: usize) -> Self {
        PbftClient {
            id,
            f,
            outstanding: HashMap::new(),
        }
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Registers a request as outstanding (call when sending it).
    pub fn track(&mut self, counter: u64) {
        self.outstanding.entry(counter).or_default();
    }

    /// Number of requests still awaiting a reply quorum.
    pub fn pending(&self) -> usize {
        self.outstanding.values().filter(|t| !t.done).count()
    }

    /// Handles a `ClientReply`. Returns `Complete` once `f+1` distinct
    /// replicas agree on the result.
    pub fn on_reply(&mut self, sm: &SignedMessage) -> Vec<ClientAction> {
        let (
            Message::ClientReply {
                txn_id,
                replica,
                result,
                ..
            },
            Sender::Replica(_),
        ) = (sm.msg(), sm.sender())
        else {
            return Vec::new();
        };
        if txn_id.client != self.id {
            return Vec::new();
        }
        let Some(tracker) = self.outstanding.get_mut(&txn_id.counter) else {
            return Vec::new(); // not ours / already collected
        };
        if tracker.done {
            return Vec::new();
        }
        let voters = tracker.replies.entry(result.clone()).or_default();
        voters.insert(*replica);
        if voters.len() >= quorum::client_reply_quorum(self.f) {
            tracker.done = true;
            let result = result.clone();
            let counter = txn_id.counter;
            self.outstanding.remove(&counter);
            return vec![ClientAction::Complete {
                txn_counter: counter,
                result,
            }];
        }
        Vec::new()
    }
}

/// A matching-group key for speculative responses: sequence, digests and
/// result must agree for responses to count toward the same quorum. The
/// view is deliberately *not* part of the key: after a view change a
/// re-issued sequence executes in different views at different replicas,
/// yet the executions match — the group tracks the highest view seen so
/// the commit certificate names one every replica has reached.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SpecKey {
    seq: SeqNum,
    digest: Digest,
    history: Digest,
    result: Vec<u8>,
}

#[derive(Debug, Default)]
struct SpecTracker {
    groups: HashMap<SpecKey, (ViewNum, Vec<(ReplicaId, SignatureBytes)>)>,
    done: bool,
    cc_sent: bool,
    local_commits: HashSet<ReplicaId>,
    /// Result bytes associated with the certificate we distributed.
    cc_result: Vec<u8>,
}

/// Zyzzyva client: fast path (3f+1 matching) and commit-certificate slow
/// path (2f+1 matching + 2f+1 `LocalCommit`s).
#[derive(Debug)]
pub struct ZyzzyvaClient {
    id: ClientId,
    f: usize,
    outstanding: HashMap<u64, SpecTracker>,
}

impl ZyzzyvaClient {
    /// Creates a client for a system tolerating `f` faults.
    pub fn new(id: ClientId, f: usize) -> Self {
        ZyzzyvaClient {
            id,
            f,
            outstanding: HashMap::new(),
        }
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Registers a request as outstanding (call when sending it).
    pub fn track(&mut self, counter: u64) {
        self.outstanding.entry(counter).or_default();
    }

    /// Number of requests still in flight.
    pub fn pending(&self) -> usize {
        self.outstanding.values().filter(|t| !t.done).count()
    }

    /// Handles a speculative response. Completes on `3f+1` matching.
    pub fn on_spec_response(&mut self, sm: &SignedMessage) -> Vec<ClientAction> {
        let Message::SpecResponse {
            view,
            seq,
            digest,
            history,
            txn_id,
            replica,
            result,
        } = sm.msg()
        else {
            return Vec::new();
        };
        if txn_id.client != self.id {
            return Vec::new();
        }
        let Some(tracker) = self.outstanding.get_mut(&txn_id.counter) else {
            return Vec::new();
        };
        if tracker.done {
            return Vec::new();
        }
        let key = SpecKey {
            seq: *seq,
            digest: *digest,
            history: *history,
            result: result.clone(),
        };
        let (group_view, group) = tracker.groups.entry(key).or_default();
        if group.iter().any(|(r, _)| r == replica) {
            return Vec::new(); // duplicate response from the same replica
        }
        *group_view = (*group_view).max(*view);
        group.push((*replica, sm.sig().clone()));
        if group.len() >= quorum::zyzzyva_fast_quorum(self.f) {
            tracker.done = true;
            let counter = txn_id.counter;
            let result = result.clone();
            self.outstanding.remove(&counter);
            return vec![ClientAction::Complete {
                txn_counter: counter,
                result,
            }];
        }
        Vec::new()
    }

    /// The request timer fired before the fast quorum arrived. With at
    /// least `2f+1` matching responses, distribute a commit certificate;
    /// with fewer, the request must be retransmitted (returned as a
    /// no-action here; the driver handles retransmission policy).
    ///
    /// Re-fires re-distribute the certificate: a lost broadcast or lost
    /// acknowledgements would otherwise wedge the request forever.
    /// `LocalCommit` acknowledgements deduplicate by replica, so re-sends
    /// are idempotent.
    pub fn on_timeout(&mut self, counter: u64) -> Vec<ClientAction> {
        let Some(tracker) = self.outstanding.get_mut(&counter) else {
            return Vec::new();
        };
        if tracker.done {
            return Vec::new();
        }
        let cc_quorum = quorum::zyzzyva_cc_quorum(self.f);
        let Some((key, (view, group))) = tracker
            .groups
            .iter()
            .filter(|(_, (_, g))| g.len() >= cc_quorum)
            .max_by_key(|(_, (_, g))| g.len())
        else {
            return Vec::new(); // not enough agreement: caller retransmits
        };
        tracker.cc_sent = true;
        tracker.cc_result = key.result.clone();
        let cert = BlockCertificate::new(group.clone());
        let msg = Message::CommitCert {
            view: *view,
            seq: key.seq,
            digest: key.digest,
            cert,
            client: self.id,
        };
        vec![ClientAction::BroadcastReplicas(msg)]
    }

    /// One diagnostic line per stuck request: response-group shapes, whether
    /// a commit certificate went out, and how many acknowledgements are in.
    pub fn debug_stuck(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .outstanding
            .iter()
            .filter(|(_, t)| !t.done)
            .map(|(c, t)| {
                let mut groups: Vec<String> = t
                    .groups
                    .iter()
                    .map(|(k, (v, g))| format!("seq={} view={} n={}", k.seq.0, v.0, g.len()))
                    .collect();
                groups.sort();
                format!(
                    "counter={c} cc_sent={} acks={} groups=[{}]",
                    t.cc_sent,
                    t.local_commits.len(),
                    groups.join(", ")
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Handles a `LocalCommit` acknowledging our certificate. Completes on
    /// `2f+1` distinct acknowledgements.
    ///
    /// `counter` identifies which outstanding request the acknowledgement
    /// belongs to (Zyzzyva's `LocalCommit` carries the sequence; the driver
    /// maps it back to its request).
    pub fn on_local_commit(&mut self, counter: u64, sm: &SignedMessage) -> Vec<ClientAction> {
        let (Message::LocalCommit { replica, .. }, Sender::Replica(_)) = (sm.msg(), sm.sender())
        else {
            return Vec::new();
        };
        let Some(tracker) = self.outstanding.get_mut(&counter) else {
            return Vec::new();
        };
        if tracker.done || !tracker.cc_sent {
            return Vec::new();
        }
        tracker.local_commits.insert(*replica);
        if tracker.local_commits.len() >= quorum::zyzzyva_cc_quorum(self.f) {
            tracker.done = true;
            let result = tracker.cc_result.clone();
            self.outstanding.remove(&counter);
            return vec![ClientAction::Complete {
                txn_counter: counter,
                result,
            }];
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::TxnId;

    fn reply(client: u64, counter: u64, replica: u32, result: &[u8]) -> SignedMessage {
        SignedMessage::new(
            Message::ClientReply {
                view: ViewNum(0),
                txn_id: TxnId::new(ClientId(client), counter),
                replica: ReplicaId(replica),
                result: result.to_vec(),
            },
            Sender::Replica(ReplicaId(replica)),
            SignatureBytes::empty(),
        )
    }

    fn spec(client: u64, counter: u64, replica: u32, result: &[u8]) -> SignedMessage {
        SignedMessage::new(
            Message::SpecResponse {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: Digest([1; 32]),
                history: Digest([2; 32]),
                txn_id: TxnId::new(ClientId(client), counter),
                replica: ReplicaId(replica),
                result: result.to_vec(),
            },
            Sender::Replica(ReplicaId(replica)),
            SignatureBytes(vec![replica as u8; 4]),
        )
    }

    fn local_commit(replica: u32) -> SignedMessage {
        SignedMessage::new(
            Message::LocalCommit {
                view: ViewNum(0),
                seq: SeqNum(1),
                replica: ReplicaId(replica),
            },
            Sender::Replica(ReplicaId(replica)),
            SignatureBytes::empty(),
        )
    }

    // ---- PBFT client (f = 1: needs 2 matching replies) ----

    #[test]
    fn pbft_client_completes_at_f_plus_1() {
        let mut c = PbftClient::new(ClientId(7), 1);
        c.track(0);
        assert!(c.on_reply(&reply(7, 0, 0, b"ok")).is_empty());
        let acts = c.on_reply(&reply(7, 0, 1, b"ok"));
        assert!(
            matches!(&acts[..], [ClientAction::Complete { txn_counter: 0, result }] if result == b"ok")
        );
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn pbft_client_requires_matching_results() {
        let mut c = PbftClient::new(ClientId(7), 1);
        c.track(0);
        assert!(c.on_reply(&reply(7, 0, 0, b"ok")).is_empty());
        assert!(c.on_reply(&reply(7, 0, 1, b"bad")).is_empty());
        // A second vote for "ok" completes.
        let acts = c.on_reply(&reply(7, 0, 2, b"ok"));
        assert_eq!(acts.len(), 1);
    }

    #[test]
    fn pbft_client_ignores_duplicates_and_foreign_replies() {
        let mut c = PbftClient::new(ClientId(7), 1);
        c.track(0);
        c.on_reply(&reply(7, 0, 0, b"ok"));
        assert!(
            c.on_reply(&reply(7, 0, 0, b"ok")).is_empty(),
            "same replica twice"
        );
        assert!(
            c.on_reply(&reply(8, 0, 1, b"ok")).is_empty(),
            "another client's reply"
        );
        assert!(
            c.on_reply(&reply(7, 5, 1, b"ok")).is_empty(),
            "untracked counter"
        );
        assert_eq!(c.pending(), 1);
    }

    // ---- Zyzzyva client (f = 1: fast quorum 4, cc quorum 3) ----

    #[test]
    fn zyzzyva_fast_path_needs_all_replicas() {
        let mut c = ZyzzyvaClient::new(ClientId(7), 1);
        c.track(0);
        for r in 0..3 {
            assert!(
                c.on_spec_response(&spec(7, 0, r, b"ok")).is_empty(),
                "replica {r}"
            );
        }
        let acts = c.on_spec_response(&spec(7, 0, 3, b"ok"));
        assert!(
            matches!(&acts[..], [ClientAction::Complete { txn_counter: 0, .. }]),
            "3f+1 matching must complete: {acts:?}"
        );
    }

    #[test]
    fn zyzzyva_slow_path_via_commit_certificate() {
        let mut c = ZyzzyvaClient::new(ClientId(7), 1);
        c.track(0);
        // Only 3 of 4 replicas answer (one crashed) — fast path impossible.
        for r in 0..3 {
            c.on_spec_response(&spec(7, 0, r, b"ok"));
        }
        // Timeout: with 2f+1 = 3 matching the client distributes a CC.
        let acts = c.on_timeout(0);
        match &acts[..] {
            [ClientAction::BroadcastReplicas(Message::CommitCert { cert, seq, .. })] => {
                assert_eq!(cert.signer_count(), 3);
                assert_eq!(*seq, SeqNum(1));
            }
            other => panic!("expected CommitCert broadcast, got {other:?}"),
        }
        // 2f+1 LocalCommits complete the request.
        assert!(c.on_local_commit(0, &local_commit(0)).is_empty());
        assert!(c.on_local_commit(0, &local_commit(1)).is_empty());
        let acts = c.on_local_commit(0, &local_commit(2));
        assert!(
            matches!(&acts[..], [ClientAction::Complete { txn_counter: 0, result }] if result == b"ok")
        );
    }

    #[test]
    fn zyzzyva_timeout_without_cc_quorum_is_noop() {
        let mut c = ZyzzyvaClient::new(ClientId(7), 1);
        c.track(0);
        c.on_spec_response(&spec(7, 0, 0, b"ok"));
        c.on_spec_response(&spec(7, 0, 1, b"ok"));
        // Only 2 < 2f+1 matching: the driver must retransmit instead.
        assert!(c.on_timeout(0).is_empty());
        assert_eq!(c.pending(), 1);
    }

    #[test]
    fn zyzzyva_divergent_histories_do_not_match() {
        let mut c = ZyzzyvaClient::new(ClientId(7), 1);
        c.track(0);
        for r in 0..3 {
            c.on_spec_response(&spec(7, 0, r, b"ok"));
        }
        // Fourth replica diverges on the result: no fast quorum.
        let acts = c.on_spec_response(&spec(7, 0, 3, b"DIFFERENT"));
        assert!(acts.is_empty());
        assert_eq!(c.pending(), 1);
    }

    #[test]
    fn zyzzyva_duplicate_spec_responses_ignored() {
        let mut c = ZyzzyvaClient::new(ClientId(7), 1);
        c.track(0);
        for _ in 0..10 {
            assert!(c.on_spec_response(&spec(7, 0, 0, b"ok")).is_empty());
        }
    }

    #[test]
    fn zyzzyva_timeout_resends_cc_until_acked() {
        let mut c = ZyzzyvaClient::new(ClientId(7), 1);
        c.track(0);
        for r in 0..3 {
            c.on_spec_response(&spec(7, 0, r, b"ok"));
        }
        assert_eq!(c.on_timeout(0).len(), 1);
        // The first certificate (or its acks) may be lost: a later timeout
        // re-distributes it rather than wedging the request.
        assert_eq!(c.on_timeout(0).len(), 1, "re-fire must re-send the CC");
        // Partial acks survive the re-send; completion still needs 2f+1.
        assert!(c.on_local_commit(0, &local_commit(0)).is_empty());
        assert_eq!(c.on_timeout(0).len(), 1);
        assert!(c.on_local_commit(0, &local_commit(1)).is_empty());
        let acts = c.on_local_commit(0, &local_commit(2));
        assert!(matches!(&acts[..], [ClientAction::Complete { .. }]));
    }

    #[test]
    fn zyzzyva_local_commits_before_cc_ignored() {
        let mut c = ZyzzyvaClient::new(ClientId(7), 1);
        c.track(0);
        assert!(c.on_local_commit(0, &local_commit(0)).is_empty());
    }
}
