//! The PBFT replica state machine (Castro & Liskov, OSDI'99), sans-io.
//!
//! Three phases: the primary assigns a sequence number and broadcasts
//! `PrePrepare`; backups broadcast `Prepare`; on 2f matching prepares a
//! replica broadcasts `Commit`; on 2f+1 matching commits the batch is
//! committed and handed to ordered execution. Out-of-order consensus is
//! natural here (Section 4.5 of the paper): instances at different
//! sequence numbers progress independently, and PBFT's quorum logic — not
//! hash-chaining between requests — guarantees a single common order.
//!
//! The view-change subprotocol: timeouts produce `ViewChange` votes that
//! carry the voter's in-flight *batch tail* (sequence, digest and the
//! batch itself for everything above the stable checkpoint). 2f+1 votes
//! install a new view whose primary merges the tails, fills holes with
//! no-op batches, and re-issues every unresolved sequence at its original
//! number — so requests in flight when the old primary died commit exactly
//! once in the new view. The full new-view proof machinery of the original
//! paper is still out of scope (documented in DESIGN.md), but the re-issue
//! path is real and exercised by the failure-scenario matrix.

use crate::actions::Action;
use crate::checkpoint::CheckpointTracker;
use crate::config::ConsensusConfig;
use rdb_common::block::BlockCertificate;
use rdb_common::messages::{BatchTail, Message, Sender, SignedMessage};
use rdb_common::{quorum, Batch, Digest, ReplicaId, SeqNum, SignatureBytes, ViewNum};
use rdb_crypto::digest as batch_digest;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// After this many timer re-fires without the voted view installing, vote
/// for the next view instead (the voted-for primary may itself be down).
const ESCALATE_AFTER: u32 = 3;

/// Bound on parked future-view messages (proposals and votes that raced
/// ahead of our `NewView` processing).
const MAX_PARKED: usize = 4096;

/// A prepare/commit vote that arrived for a view ahead of ours; replayed
/// once the view installs so quorums formed across the change are not
/// lost to message reordering.
#[derive(Debug)]
struct FutureVote {
    view: ViewNum,
    seq: SeqNum,
    from: ReplicaId,
    digest: Digest,
    commit: bool,
    sig: SignatureBytes,
}

/// Per-sequence consensus instance state.
#[derive(Debug, Default)]
struct Instance {
    digest: Option<Digest>,
    /// Shared with the `PrePrepare` that carried it — storing it here is a
    /// reference-count bump, not a copy of the transactions.
    batch: Option<Arc<Batch>>,
    view: ViewNum,
    prepares: HashSet<ReplicaId>,
    commits: HashSet<ReplicaId>,
    commit_sigs: Vec<(ReplicaId, SignatureBytes)>,
    /// Backup has broadcast its own Prepare (broadcasts are not
    /// self-delivered, so the own vote is tracked here).
    sent_prepare: bool,
    sent_commit: bool,
    committed: bool,
}

/// The PBFT replica state machine.
#[derive(Debug)]
pub struct Pbft {
    config: ConsensusConfig,
    id: ReplicaId,
    view: ViewNum,
    /// Next sequence number this primary will assign.
    next_seq: SeqNum,
    instances: HashMap<SeqNum, Instance>,
    checkpoints: CheckpointTracker,
    /// Batches executed since the last checkpoint broadcast.
    executed_since_checkpoint: u64,
    /// Highest sequence this replica has been told was executed.
    last_executed: SeqNum,
    /// View-change votes: new view → voter → the voter's batch tail.
    view_change_votes: HashMap<ViewNum, HashMap<ReplicaId, BatchTail>>,
    /// Set when this replica has voted for a view change.
    voted_view: Option<ViewNum>,
    /// Timer re-fires since the vote for `voted_view` (drives escalation).
    timeout_strikes: u32,
    /// Pre-prepares for views ahead of ours, parked until the view installs.
    future_proposals: BTreeMap<(ViewNum, SeqNum), (ReplicaId, Digest, Arc<Batch>)>,
    /// Prepare/commit votes for views ahead of ours.
    future_votes: Vec<FutureVote>,
}

impl Pbft {
    /// Creates the state machine for replica `id`.
    pub fn new(id: ReplicaId, config: ConsensusConfig) -> Self {
        let quorum = quorum::checkpoint_quorum(config.f);
        Pbft {
            config,
            id,
            view: ViewNum(0),
            next_seq: config.first_seq(),
            instances: HashMap::new(),
            checkpoints: CheckpointTracker::new(quorum),
            executed_since_checkpoint: 0,
            last_executed: SeqNum(0),
            view_change_votes: HashMap::new(),
            voted_view: None,
            timeout_strikes: 0,
            future_proposals: BTreeMap::new(),
            future_votes: Vec::new(),
        }
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The current view.
    pub fn view(&self) -> ViewNum {
        self.view
    }

    /// The current primary (of this machine's consensus instance).
    pub fn primary(&self) -> ReplicaId {
        self.config.primary_of(self.view)
    }

    /// The next sequence this machine would assign as primary (exposed for
    /// the multi-primary runtime's gap-fill logic).
    pub fn next_seq(&self) -> SeqNum {
        self.next_seq
    }

    /// Whether this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// Number of in-flight consensus instances (for saturation metrics).
    pub fn in_flight(&self) -> usize {
        self.instances.len()
    }

    /// Whether any instance has started but not committed — the signal the
    /// runtime's suspicion timer watches for a stalled primary.
    ///
    /// Commits stranded above an execution hole also count: a sequence this
    /// replica never saw (its PrePrepare was lost) can only be refilled by a
    /// view-change re-issue, so committing past the hole is not progress.
    pub fn has_stalled_work(&self) -> bool {
        if self.instances.values().any(|i| !i.committed) {
            return true;
        }
        let next = self.config.next_owned(self.last_executed);
        !self.instances.contains_key(&next) && self.instances.keys().any(|seq| *seq > next)
    }

    /// Highest executed sequence this machine knows about.
    pub fn last_executed(&self) -> SeqNum {
        self.last_executed
    }

    fn prepare_quorum(&self) -> usize {
        quorum::prepare_quorum(self.config.f)
    }

    fn commit_quorum(&self) -> usize {
        quorum::commit_quorum(self.config.f)
    }

    /// Primary path: propose a batch (already digested by a batch-thread).
    ///
    /// Assigns the next sequence number and returns the `PrePrepare`
    /// broadcast. Returns an empty action list when called on a backup.
    pub fn propose(&mut self, batch: Batch, digest: Digest) -> Vec<Action> {
        if !self.is_primary() {
            return Vec::new();
        }
        if self.config.equivocate {
            return self.propose_equivocating(batch);
        }
        let seq = self.next_seq;
        self.next_seq = self.config.next_owned(self.next_seq);
        // One allocation for the batch; the instance and the broadcast
        // message share it from here on.
        let batch = Arc::new(batch);
        let inst = self.instances.entry(seq).or_default();
        inst.digest = Some(digest);
        inst.batch = Some(Arc::clone(&batch));
        inst.view = self.view;
        vec![Action::Broadcast(Message::PrePrepare {
            view: self.view,
            seq,
            digest,
            batch,
        })]
    }

    /// Byzantine test mode: send each backup a differently-ordered variant
    /// of the batch (honest digests over *different* content). With three
    /// or more transactions per batch every backup sees a unique digest, so
    /// no prepare quorum can form and the honest replicas oust this primary
    /// through a view change; the new primary's tail merge then picks one
    /// variant and commits it exactly once. The equivocator records no
    /// instance — it does not even try to commit its own lies.
    fn propose_equivocating(&mut self, batch: Batch) -> Vec<Action> {
        let seq = self.next_seq;
        self.next_seq = self.config.next_owned(self.next_seq);
        let mut actions = Vec::new();
        for r in 0..self.config.n as u32 {
            let rid = ReplicaId(r);
            if rid == self.id {
                continue;
            }
            let mut txns = batch.txns.clone();
            let rot = (r as usize) % txns.len().max(1);
            txns.rotate_left(rot);
            let variant = Batch::new(txns);
            let d = batch_digest(&variant.canonical_bytes());
            actions.push(Action::SendReplica(
                rid,
                Message::PrePrepare {
                    view: self.view,
                    seq,
                    digest: d,
                    batch: Arc::new(variant),
                },
            ));
        }
        actions
    }

    /// Handles a signed message from another replica.
    ///
    /// Signature verification is the runtime's job (it owns the crypto
    /// provider); the state machine assumes `sm` was verified.
    pub fn on_message(&mut self, sm: &SignedMessage) -> Vec<Action> {
        let from = match sm.sender() {
            Sender::Replica(r) => r,
            Sender::Client(_) => return Vec::new(), // clients talk to the runtime
        };
        match sm.msg() {
            Message::PrePrepare {
                view,
                seq,
                digest,
                batch,
            } => self.on_pre_prepare(from, *view, *seq, *digest, Arc::clone(batch)),
            Message::Prepare { view, seq, digest } => self.on_prepare(from, *view, *seq, *digest),
            Message::Commit { view, seq, digest } => {
                self.on_commit(from, *view, *seq, *digest, sm.sig().clone())
            }
            Message::Checkpoint {
                seq,
                state_digest,
                replica,
            } => self.on_checkpoint(*replica, *seq, *state_digest),
            Message::ViewChange {
                new_view,
                replica,
                tail,
                instance,
                ..
            } if *instance == self.config.instance => {
                self.on_view_change(*replica, *new_view, tail.clone())
            }
            Message::NewView {
                new_view, instance, ..
            } if *instance == self.config.instance => self.on_new_view(from, *new_view),
            _ => Vec::new(),
        }
    }

    fn on_pre_prepare(
        &mut self,
        from: ReplicaId,
        view: ViewNum,
        seq: SeqNum,
        digest: Digest,
        batch: Arc<Batch>,
    ) -> Vec<Action> {
        if view > self.view {
            // A re-issued proposal raced ahead of the NewView announcement:
            // park it until the view installs.
            if from == self.config.primary_of(view) && self.future_proposals.len() < MAX_PARKED {
                self.future_proposals
                    .insert((view, seq), (from, digest, batch));
            }
            return Vec::new();
        }
        if view < self.view || from != self.primary() || self.is_primary() {
            return Vec::new(); // old view, not from the primary, or echo
        }
        if seq <= self.checkpoints.stable_seq() {
            return Vec::new(); // already garbage-collected
        }
        let inst = self.instances.entry(seq).or_default();
        if let Some(existing) = inst.digest {
            if existing != digest {
                // Equivocating primary: refuse the conflicting proposal.
                return Vec::new();
            }
        }
        inst.digest = Some(digest);
        inst.batch = Some(batch);
        inst.view = view;
        inst.sent_prepare = true;
        let mut actions = vec![Action::Broadcast(Message::Prepare { view, seq, digest })];
        if inst.committed {
            // A post-view-change re-issue of a sequence this replica has
            // already committed: a straggler that missed the original
            // commit round needs a fresh 2f+1 — our Prepare alone cannot
            // unblock it because everyone else's `sent_commit` is long
            // since true. Re-cast the Commit too (same digest, so
            // repeating it is safe); without this, the straggler stalls,
            // keeps voting, and view changes churn forever.
            actions.push(Action::Broadcast(Message::Commit { view, seq, digest }));
        }
        // Prepares and commits may have raced ahead of this pre-prepare.
        actions.extend(self.check_progress(seq));
        actions
    }

    fn on_prepare(
        &mut self,
        from: ReplicaId,
        view: ViewNum,
        seq: SeqNum,
        digest: Digest,
    ) -> Vec<Action> {
        if view > self.view {
            if self.future_votes.len() < MAX_PARKED {
                self.future_votes.push(FutureVote {
                    view,
                    seq,
                    from,
                    digest,
                    commit: false,
                    sig: SignatureBytes::empty(),
                });
            }
            return Vec::new();
        }
        if view < self.view || from == self.config.primary_of(view) {
            return Vec::new(); // old view, or that view's primary (it never prepares)
        }
        if seq <= self.checkpoints.stable_seq() {
            return Vec::new();
        }
        let inst = self.instances.entry(seq).or_default();
        if inst.digest.is_some_and(|d| d != digest) {
            return Vec::new(); // conflicting digest: ignore
        }
        inst.prepares.insert(from);
        self.check_progress(seq)
    }

    fn on_commit(
        &mut self,
        from: ReplicaId,
        view: ViewNum,
        seq: SeqNum,
        digest: Digest,
        sig: SignatureBytes,
    ) -> Vec<Action> {
        if view > self.view {
            if self.future_votes.len() < MAX_PARKED {
                self.future_votes.push(FutureVote {
                    view,
                    seq,
                    from,
                    digest,
                    commit: true,
                    sig,
                });
            }
            return Vec::new();
        }
        if view < self.view {
            return Vec::new();
        }
        if seq <= self.checkpoints.stable_seq() {
            return Vec::new();
        }
        let inst = self.instances.entry(seq).or_default();
        if inst.digest.is_some_and(|d| d != digest) {
            return Vec::new();
        }
        if inst.commits.insert(from) {
            inst.commit_sigs.push((from, sig));
        }
        self.check_progress(seq)
    }

    /// Re-evaluates the prepare and commit quorums for `seq` after any
    /// state change, emitting whatever the new state warrants. This is the
    /// single place quorum rules live, so out-of-order arrivals (commit
    /// before prepare before pre-prepare) cannot wedge an instance.
    fn check_progress(&mut self, seq: SeqNum) -> Vec<Action> {
        let prepare_quorum = self.prepare_quorum();
        let commit_quorum = self.commit_quorum();
        let is_primary = self.is_primary();
        let my_id = self.id;
        let Some(inst) = self.instances.get_mut(&seq) else {
            return Vec::new();
        };
        let mut actions = Vec::new();
        let (Some(digest), true) = (inst.digest, inst.batch.is_some()) else {
            return Vec::new(); // no pre-prepare yet: nothing can fire
        };
        // Prepared: pre-prepare + 2f prepares from distinct replicas. A
        // backup's own Prepare counts (broadcasts are not self-delivered);
        // the primary holds the pre-prepare implicitly and needs 2f
        // prepares from backups. This own-vote accounting is what lets the
        // quorum still form when f backups are down (Figure 17).
        if !inst.sent_commit && inst.prepares.len() + inst.sent_prepare as usize >= prepare_quorum {
            inst.sent_commit = true;
            actions.push(Action::Broadcast(Message::Commit {
                view: inst.view,
                seq,
                digest,
            }));
        }
        // Committed: 2f+1 distinct commit votes; our own broadcast is not
        // self-delivered, so it counts via `sent_commit`.
        let own = inst.sent_commit as usize;
        if !inst.committed && inst.commits.len() + own >= commit_quorum {
            inst.committed = true;
            let mut certificate = BlockCertificate::new(inst.commit_sigs.clone());
            if inst.sent_commit && !certificate.contains(my_id) {
                // Include our own commit in the certificate. The runtime
                // holds the signature; an empty placeholder marks it.
                certificate.commits.push((my_id, SignatureBytes::empty()));
            }
            let _ = is_primary;
            actions.push(Action::CommitBatch {
                seq,
                view: inst.view,
                digest,
                batch: inst.batch.clone().expect("batch present"),
                certificate,
            });
        }
        actions
    }

    /// Notification from the execution layer that the batch at `seq` has
    /// been executed with the given replica state digest. Emits a
    /// `Checkpoint` broadcast every Δ batches (Section 4.7).
    pub fn on_executed(&mut self, seq: SeqNum, state_digest: Digest) -> Vec<Action> {
        self.last_executed = self.last_executed.max(seq);
        self.executed_since_checkpoint += 1;
        if self.executed_since_checkpoint >= self.config.checkpoint_interval_batches {
            self.executed_since_checkpoint = 0;
            let mut actions = vec![Action::Broadcast(Message::Checkpoint {
                seq,
                state_digest,
                replica: self.id,
            })];
            // The 2f+1 stability quorum includes this replica's own
            // checkpoint (the broadcast skips self-delivery, so the vote
            // is recorded here). This is both the PBFT-paper counting and
            // what lets a replica that lagged behind its peers stabilize
            // the moment its own execution reaches the boundary.
            if let Some(stable) = self.checkpoints.record(self.id, seq, state_digest) {
                self.instances.retain(|s, _| *s > stable);
                actions.push(Action::StableCheckpoint { seq: stable });
            }
            return actions;
        }
        Vec::new()
    }

    /// Serves a peer's `FetchRequest` for `seq`: the committed batch plus
    /// the 2f+1 commit certificate proving its order. Returns `None` when
    /// the sequence never committed here or was garbage-collected by a
    /// stable checkpoint (the runtime then falls back to a snapshot).
    pub fn serve_fetch(
        &self,
        seq: SeqNum,
    ) -> Option<(ViewNum, Digest, Arc<Batch>, BlockCertificate)> {
        let inst = self.instances.get(&seq)?;
        if !inst.committed {
            return None;
        }
        let (digest, batch) = match (inst.digest, &inst.batch) {
            (Some(d), Some(b)) => (d, Arc::clone(b)),
            _ => return None,
        };
        let mut certificate = BlockCertificate::new(inst.commit_sigs.clone());
        if inst.sent_commit && !certificate.contains(self.id) {
            // Our own commit: the empty placeholder marks the serving
            // replica, vouched for by its verified response envelope.
            certificate.commits.push((self.id, SignatureBytes::empty()));
        }
        Some((inst.view, digest, batch, certificate))
    }

    /// Installs a fetched batch whose certificate the runtime has already
    /// verified: the instance commits directly off the remote proof — this
    /// replica never voted, so no quorum bookkeeping applies. Fills an
    /// execution hole without waiting for a view change to re-issue it.
    pub fn install_fetched(
        &mut self,
        seq: SeqNum,
        view: ViewNum,
        digest: Digest,
        batch: Arc<Batch>,
        certificate: BlockCertificate,
    ) -> Vec<Action> {
        if seq <= self.checkpoints.stable_seq() || seq <= self.last_executed {
            return Vec::new();
        }
        let inst = self.instances.entry(seq).or_default();
        if inst.committed {
            return Vec::new();
        }
        inst.digest = Some(digest);
        inst.batch = Some(Arc::clone(&batch));
        inst.view = view;
        inst.committed = true;
        // A primary whose log advanced through fetch (e.g. a recovered
        // ex-primary catching up) must not re-propose a sequence the
        // cluster already decided.
        if self.next_seq <= seq {
            self.next_seq = self.config.next_owned(seq);
        }
        vec![Action::CommitBatch {
            seq,
            view,
            digest,
            batch,
            certificate,
        }]
    }

    /// Adopts a verified snapshot at `base`: execution state below it is
    /// authoritative, so the stable point jumps forward, covered instances
    /// are dropped, and proposals resume past whatever survives.
    pub fn install_snapshot(&mut self, base: SeqNum, _history: Digest) {
        self.last_executed = self.last_executed.max(base);
        self.instances.retain(|s, _| *s > base);
        self.checkpoints.force_stable(base);
        self.executed_since_checkpoint = 0;
        let head = self.instances.keys().copied().max().unwrap_or(SeqNum(0));
        self.next_seq = self
            .next_seq
            .max(self.config.next_owned(self.last_executed.max(head)));
    }

    /// Sequences worth fetching from peers, oldest first: execution holes
    /// below the local commit frontier, plus instances where f+1 commit
    /// votes arrived but the `PrePrepare` itself was lost. At most `limit`.
    pub fn fetch_wanted(&self, limit: usize) -> Vec<SeqNum> {
        let floor = self.last_executed.max(self.checkpoints.stable_seq());
        let frontier = self
            .instances
            .iter()
            .filter(|(s, i)| i.committed && **s > floor)
            .map(|(s, _)| *s)
            .max();
        let mut wanted: Vec<SeqNum> = Vec::new();
        if let Some(frontier) = frontier {
            let mut seq = self.config.next_owned(floor);
            while seq < frontier {
                if !self.instances.get(&seq).is_some_and(|i| i.committed) {
                    wanted.push(seq);
                }
                seq = self.config.next_owned(seq);
            }
        }
        for (s, i) in &self.instances {
            if *s > floor
                && !i.committed
                && i.batch.is_none()
                && i.commits.len() > self.config.f
                && !wanted.contains(s)
            {
                wanted.push(*s);
            }
        }
        wanted.sort();
        wanted.truncate(limit);
        wanted
    }

    fn on_checkpoint(&mut self, from: ReplicaId, seq: SeqNum, digest: Digest) -> Vec<Action> {
        match self.checkpoints.record(from, seq, digest) {
            Some(stable) => {
                // Garbage-collect instance state below the checkpoint.
                self.instances.retain(|s, _| *s > stable);
                vec![Action::StableCheckpoint { seq: stable }]
            }
            None => Vec::new(),
        }
    }

    /// Suspicion timer fired (a proposal stalled, or clients signalled
    /// unmet demand): vote to replace the primary. Re-fires re-broadcast
    /// the same vote (lossy networks drop votes too); after
    /// [`ESCALATE_AFTER`] fruitless re-fires the vote escalates to the next
    /// view in case the voted-for primary is itself down.
    pub fn on_timeout(&mut self) -> Vec<Action> {
        let target = match self.voted_view {
            Some(t) if t > self.view => {
                self.timeout_strikes += 1;
                if self.timeout_strikes >= ESCALATE_AFTER {
                    self.timeout_strikes = 0;
                    t.next()
                } else {
                    t
                }
            }
            _ => self.view.next(),
        };
        self.vote_view_change(target)
    }

    /// Broadcasts this replica's `ViewChange` vote for `target` and counts
    /// it toward the quorum.
    fn vote_view_change(&mut self, target: ViewNum) -> Vec<Action> {
        self.voted_view = Some(target);
        let tail = self.batch_tail();
        let mut actions = vec![Action::Broadcast(Message::ViewChange {
            new_view: target,
            last_stable: self.checkpoints.stable_seq(),
            prepared: self.prepared_summary(),
            tail: tail.clone(),
            replica: self.id,
            instance: self.config.instance,
        })];
        // Our own vote counts toward the quorum.
        actions.extend(self.on_view_change(self.id, target, tail));
        actions
    }

    /// PBFT's liveness join rule (§4.5.2 of the paper): once f+1 replicas
    /// are voting for views beyond ours, join them at the smallest such
    /// view even though our own suspicion timer has not fired — at least
    /// one of those voters is correct, so the suspicion is genuine.
    /// Without this, a straggling minority (replicas that lost Commit
    /// messages on a lossy network, or a healed partition's small side)
    /// votes forever while the healthy majority ignores it and no quorum
    /// ever forms.
    fn maybe_join_view_change(&mut self) -> Vec<Action> {
        if self.voted_view.is_some_and(|t| t > self.view) {
            return Vec::new(); // already voting for a future view
        }
        let voters: HashSet<ReplicaId> = self
            .view_change_votes
            .iter()
            .filter(|(v, _)| **v > self.view)
            .flat_map(|(_, votes)| votes.keys().copied())
            .collect();
        if voters.len() <= self.config.f {
            return Vec::new();
        }
        let target = self
            .view_change_votes
            .keys()
            .copied()
            .filter(|v| *v > self.view)
            .min()
            .expect("f+1 voters imply a future-view vote bucket");
        self.timeout_strikes = 0;
        self.vote_view_change(target)
    }

    fn prepared_summary(&self) -> Vec<(SeqNum, Digest)> {
        let mut v: Vec<(SeqNum, Digest)> = self
            .instances
            .iter()
            .filter(|(_, i)| i.sent_commit && !i.committed)
            .filter_map(|(s, i)| i.digest.map(|d| (*s, d)))
            .collect();
        v.sort_by_key(|(s, _)| *s);
        v
    }

    /// Every instance above the stable checkpoint whose batch this replica
    /// holds — committed ones included, so the new primary can catch up
    /// stragglers. This is what a `ViewChange` vote carries.
    fn batch_tail(&self) -> Vec<(SeqNum, Digest, Arc<Batch>)> {
        let stable = self.checkpoints.stable_seq();
        let mut v: Vec<(SeqNum, Digest, Arc<Batch>)> = self
            .instances
            .iter()
            .filter(|(s, _)| **s > stable)
            .filter_map(|(s, i)| match (&i.digest, &i.batch) {
                (Some(d), Some(b)) => Some((*s, *d, Arc::clone(b))),
                _ => None,
            })
            .collect();
        v.sort_by_key(|(s, _, _)| *s);
        v
    }

    fn on_view_change(
        &mut self,
        from: ReplicaId,
        new_view: ViewNum,
        tail: Vec<(SeqNum, Digest, Arc<Batch>)>,
    ) -> Vec<Action> {
        if new_view <= self.view {
            return Vec::new();
        }
        let quorum = self.commit_quorum();
        let votes = self.view_change_votes.entry(new_view).or_default();
        votes.insert(from, tail);
        if votes.len() >= quorum && self.config.primary_of(new_view) == self.id {
            return self.become_primary(new_view);
        }
        self.maybe_join_view_change()
    }

    /// 2f+1 votes named this replica the incoming primary: merge the vote
    /// tails (majority digest per sequence, so an equivocating old primary
    /// cannot split the new view), fill interior holes with no-op batches
    /// (sequential execution must not stall on a sequence nobody carried),
    /// announce the view, and re-issue every unresolved sequence at its
    /// original number.
    fn become_primary(&mut self, new_view: ViewNum) -> Vec<Action> {
        let votes = self.view_change_votes.remove(&new_view).unwrap_or_default();
        let mut merged: BTreeMap<SeqNum, Vec<(Digest, Arc<Batch>, usize)>> = BTreeMap::new();
        // Our own tail counts once: it is usually already in `votes` (we
        // voted on the way here); chaining it unconditionally would double
        // its weight in the majority merge.
        let own = if votes.contains_key(&self.id) {
            Vec::new()
        } else {
            self.batch_tail()
        };
        for tail in votes.values().chain(std::iter::once(&own)) {
            for (seq, d, batch) in tail {
                let cands = merged.entry(*seq).or_default();
                match cands.iter_mut().find(|(cd, _, _)| cd == d) {
                    Some((_, _, count)) => *count += 1,
                    None => cands.push((*d, Arc::clone(batch), 1)),
                }
            }
        }
        let mut actions = self.install_view(new_view);
        let stable = self.checkpoints.stable_seq();
        let hi = merged.keys().next_back().copied().unwrap_or(stable);
        let mut reissue: Vec<(SeqNum, Digest, Arc<Batch>)> = Vec::new();
        // Walk only the sequences this instance owns (a stride-k grid in a
        // multi-primary deployment; every sequence when k = 1).
        let mut seq = self.config.next_owned(stable);
        while seq <= hi {
            let (d, batch) = match merged.get(&seq) {
                Some(cands) => {
                    let (d, b, _) = cands
                        .iter()
                        .max_by_key(|(_, _, count)| *count)
                        .expect("candidate list is never empty");
                    (*d, Arc::clone(b))
                }
                None => {
                    // Interior hole: no vote carried this sequence, so no
                    // correct replica can have prepared it. A no-op batch
                    // keeps execution sequential.
                    let batch = Arc::new(Batch::new(Vec::new()));
                    (batch_digest(&batch.canonical_bytes()), batch)
                }
            };
            reissue.push((seq, d, batch));
            seq = self.config.next_owned(seq);
        }
        // Announce first so backups install the view before the re-issued
        // pre-prepares reach them (in-order transports).
        actions.push(Action::Broadcast(Message::NewView {
            new_view,
            reissued: reissue.iter().map(|(s, d, _)| (*s, *d)).collect(),
            instance: self.config.instance,
        }));
        for (seq, d, batch) in reissue {
            let inst = self.instances.entry(seq).or_default();
            let (d, batch) = if inst.committed {
                // Locally committed already: re-announce our copy so
                // stragglers catch up, without touching the instance.
                match (&inst.digest, &inst.batch) {
                    (Some(cd), Some(cb)) => (*cd, Arc::clone(cb)),
                    _ => (d, batch),
                }
            } else {
                inst.digest = Some(d);
                inst.batch = Some(Arc::clone(&batch));
                inst.view = new_view;
                inst.prepares.clear();
                inst.commits.clear();
                inst.commit_sigs.clear();
                inst.sent_prepare = false;
                inst.sent_commit = false;
                (d, batch)
            };
            actions.push(Action::Broadcast(Message::PrePrepare {
                view: new_view,
                seq,
                digest: d,
                batch,
            }));
        }
        if self.next_seq <= hi {
            self.next_seq = self.config.next_owned(hi);
        }
        actions
    }

    fn on_new_view(&mut self, from: ReplicaId, new_view: ViewNum) -> Vec<Action> {
        if new_view <= self.view || from != self.config.primary_of(new_view) {
            return Vec::new();
        }
        self.install_view(new_view)
    }

    fn install_view(&mut self, new_view: ViewNum) -> Vec<Action> {
        self.view = new_view;
        self.voted_view = None;
        self.timeout_strikes = 0;
        self.view_change_votes.retain(|v, _| *v > new_view);
        // Uncommitted instances are abandoned; the new primary re-issues.
        self.instances.retain(|_, i| i.committed);
        let head = self.instances.keys().copied().max().unwrap_or(SeqNum(0));
        self.next_seq = self.config.next_owned(self.last_executed.max(head));
        let mut actions = vec![Action::EnterView {
            view: new_view,
            instance: self.config.instance,
        }];
        // Replay parked messages addressed to the view just installed:
        // proposals first (they create the instances), then votes.
        type Parked = (ReplicaId, Digest, Arc<Batch>);
        let parked: Vec<(SeqNum, Parked)> = {
            let keys: Vec<(ViewNum, SeqNum)> = self
                .future_proposals
                .range((new_view, SeqNum(0))..=(new_view, SeqNum(u64::MAX)))
                .map(|(k, _)| *k)
                .collect();
            keys.into_iter()
                .filter_map(|k| self.future_proposals.remove(&k).map(|v| (k.1, v)))
                .collect()
        };
        for (seq, (from, d, batch)) in parked {
            actions.extend(self.on_pre_prepare(from, new_view, seq, d, batch));
        }
        self.future_proposals.retain(|(v, _), _| *v > new_view);
        let votes = std::mem::take(&mut self.future_votes);
        for fv in votes {
            if fv.view > new_view {
                self.future_votes.push(fv);
            } else if fv.view == new_view {
                let acts = if fv.commit {
                    self.on_commit(fv.from, fv.view, fv.seq, fv.digest, fv.sig)
                } else {
                    self.on_prepare(fv.from, fv.view, fv.seq, fv.digest)
                };
                actions.extend(acts);
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdb_common::{ClientId, Operation, Transaction};

    fn cfg(n: usize) -> ConsensusConfig {
        ConsensusConfig::new(n, 2)
    }

    fn batch() -> Batch {
        vec![Transaction::new(
            ClientId(0),
            0,
            vec![Operation::Write {
                key: 1,
                value: vec![1],
            }],
        )]
        .into_iter()
        .collect()
    }

    fn d(b: u8) -> Digest {
        Digest([b; 32])
    }

    fn signed(from: u32, msg: Message) -> SignedMessage {
        SignedMessage::new(
            msg,
            Sender::Replica(ReplicaId(from)),
            SignatureBytes(vec![from as u8]),
        )
    }

    /// Drives one full consensus round at a backup replica of a 4-node
    /// system (f = 1: prepare quorum 2, commit quorum 3).
    #[test]
    fn backup_full_round() {
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        // Pre-prepare from primary r0.
        let acts = r1.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
                batch: batch().into(),
            },
        ));
        assert!(matches!(
            &acts[..],
            [Action::Broadcast(Message::Prepare { .. })]
        ));
        // Prepare quorum is 2f = 2 distinct replicas; r1's own Prepare
        // counts (it broadcast one on receiving the pre-prepare), so one
        // more backup's prepare completes the quorum.
        let acts = r1.on_message(&signed(
            2,
            Message::Prepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        assert!(
            matches!(&acts[..], [Action::Broadcast(Message::Commit { .. })]),
            "own prepare + one backup = 2f → commit, got {acts:?}"
        );
        let acts = r1.on_message(&signed(
            3,
            Message::Prepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        assert!(acts.is_empty(), "extra prepares are absorbed");
        // Commits from r0 and r2; with r1's own commit that is 3 = 2f+1.
        let acts = r1.on_message(&signed(
            0,
            Message::Commit {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        assert!(acts.is_empty());
        let acts = r1.on_message(&signed(
            2,
            Message::Commit {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        match &acts[..] {
            [Action::CommitBatch {
                seq, certificate, ..
            }] => {
                assert_eq!(*seq, SeqNum(1));
                assert!(certificate.signer_count() >= 3);
                assert!(
                    certificate.contains(ReplicaId(1)),
                    "own commit in certificate"
                );
            }
            other => panic!("expected CommitBatch, got {other:?}"),
        }
    }

    #[test]
    fn primary_proposes_sequentially() {
        let mut p = Pbft::new(ReplicaId(0), cfg(4));
        assert!(p.is_primary());
        let a1 = p.propose(batch(), d(1));
        let a2 = p.propose(batch(), d(2));
        match (&a1[..], &a2[..]) {
            (
                [Action::Broadcast(Message::PrePrepare { seq: s1, .. })],
                [Action::Broadcast(Message::PrePrepare { seq: s2, .. })],
            ) => {
                assert_eq!(*s1, SeqNum(1));
                assert_eq!(*s2, SeqNum(2));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn backup_cannot_propose() {
        let mut b = Pbft::new(ReplicaId(2), cfg(4));
        assert!(b.propose(batch(), d(1)).is_empty());
    }

    #[test]
    fn primary_commits_with_backup_quorum() {
        // Primary of n=4: needs 2f=2 prepares from backups, then 2f+1=3
        // commits counting its own implicit one.
        let mut p = Pbft::new(ReplicaId(0), cfg(4));
        p.propose(batch(), d(5));
        assert!(p
            .on_message(&signed(
                1,
                Message::Prepare {
                    view: ViewNum(0),
                    seq: SeqNum(1),
                    digest: d(5)
                }
            ))
            .is_empty());
        let acts = p.on_message(&signed(
            2,
            Message::Prepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(5),
            },
        ));
        assert!(matches!(
            &acts[..],
            [Action::Broadcast(Message::Commit { .. })]
        ));
        p.on_message(&signed(
            1,
            Message::Commit {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(5),
            },
        ));
        let acts = p.on_message(&signed(
            2,
            Message::Commit {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(5),
            },
        ));
        assert!(
            matches!(&acts[..], [Action::CommitBatch { .. }]),
            "got {acts:?}"
        );
    }

    #[test]
    fn reissued_committed_sequence_recasts_commit_vote() {
        // r2 commits seq 1 in view 0. After a view change, the new primary
        // r1 re-issues seq 1 (a straggler somewhere missed it). r2 must
        // re-cast BOTH its Prepare and its Commit: the straggler needs a
        // fresh 2f+1 commit quorum, and every other replica's sent_commit
        // flag is long since true.
        let mut r2 = Pbft::new(ReplicaId(2), cfg(4));
        let commit = |from: u32| {
            signed(
                from,
                Message::Commit {
                    view: ViewNum(0),
                    seq: SeqNum(1),
                    digest: d(7),
                },
            )
        };
        r2.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
                batch: batch().into(),
            },
        ));
        r2.on_message(&signed(
            1,
            Message::Prepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        r2.on_message(&signed(
            3,
            Message::Prepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        r2.on_message(&commit(0));
        let acts = r2.on_message(&commit(1));
        assert!(
            acts.iter().any(|a| matches!(a, Action::CommitBatch { .. })),
            "setup must commit seq 1: {acts:?}"
        );
        // View change: r1 announces view 1 and re-issues seq 1.
        r2.on_message(&signed(
            1,
            Message::NewView {
                new_view: ViewNum(1),
                reissued: vec![(SeqNum(1), d(7))],
                instance: 0,
            },
        ));
        let acts = r2.on_message(&signed(
            1,
            Message::PrePrepare {
                view: ViewNum(1),
                seq: SeqNum(1),
                digest: d(7),
                batch: batch().into(),
            },
        ));
        assert!(
            acts.iter().any(|a| matches!(
                a,
                Action::Broadcast(Message::Prepare { view, seq, .. })
                    if *view == ViewNum(1) && *seq == SeqNum(1)
            )),
            "must re-prepare: {acts:?}"
        );
        assert!(
            acts.iter().any(|a| matches!(
                a,
                Action::Broadcast(Message::Commit { view, seq, .. })
                    if *view == ViewNum(1) && *seq == SeqNum(1)
            )),
            "must re-cast the commit vote: {acts:?}"
        );
        assert!(
            !acts.iter().any(|a| matches!(a, Action::CommitBatch { .. })),
            "must not execute twice: {acts:?}"
        );
    }

    #[test]
    fn out_of_order_messages_still_commit() {
        // Commits and prepares arrive before the pre-prepare (Section 4.5).
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        r1.on_message(&signed(
            2,
            Message::Prepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        r1.on_message(&signed(
            3,
            Message::Prepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        r1.on_message(&signed(
            0,
            Message::Commit {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        r1.on_message(&signed(
            2,
            Message::Commit {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        // Nothing committed yet — no pre-prepare, so no batch to execute.
        // When the pre-prepare arrives the stored quorums fire all at once:
        // prepare, commit, and the commit-quorum (2 stored commits + own).
        let acts = r1.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
                batch: batch().into(),
            },
        ));
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::Broadcast(Message::Commit { .. }))),
            "stored prepares must trigger commit: {acts:?}"
        );
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::CommitBatch { seq, .. } if *seq == SeqNum(1))),
            "stored commits + own must reach quorum: {acts:?}"
        );
        // A late commit after the fact is absorbed without re-committing.
        let acts = r1.on_message(&signed(
            3,
            Message::Commit {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
            },
        ));
        assert!(acts.is_empty(), "must not commit twice: {acts:?}");
    }

    #[test]
    fn parallel_instances_commit_independently() {
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        // Start two instances; finish seq 2 before seq 1.
        for seq in [1u64, 2] {
            r1.on_message(&signed(
                0,
                Message::PrePrepare {
                    view: ViewNum(0),
                    seq: SeqNum(seq),
                    digest: d(seq as u8),
                    batch: batch().into(),
                },
            ));
        }
        let drive = |r: &mut Pbft, seq: u64| -> Vec<Action> {
            let mut acts = Vec::new();
            for from in [2u32, 3] {
                acts.extend(r.on_message(&signed(
                    from,
                    Message::Prepare {
                        view: ViewNum(0),
                        seq: SeqNum(seq),
                        digest: d(seq as u8),
                    },
                )));
            }
            for from in [0u32, 2] {
                acts.extend(r.on_message(&signed(
                    from,
                    Message::Commit {
                        view: ViewNum(0),
                        seq: SeqNum(seq),
                        digest: d(seq as u8),
                    },
                )));
            }
            acts
        };
        let acts2 = drive(&mut r1, 2);
        assert!(
            acts2
                .iter()
                .any(|a| matches!(a, Action::CommitBatch { seq, .. } if *seq == SeqNum(2))),
            "seq 2 commits first"
        );
        let acts1 = drive(&mut r1, 1);
        assert!(
            acts1
                .iter()
                .any(|a| matches!(a, Action::CommitBatch { seq, .. } if *seq == SeqNum(1))),
            "seq 1 commits later"
        );
    }

    #[test]
    fn equivocating_primary_rejected() {
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        r1.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
                batch: batch().into(),
            },
        ));
        // Conflicting digest for the same sequence.
        let acts = r1.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(8),
                batch: batch().into(),
            },
        ));
        assert!(acts.is_empty(), "conflicting pre-prepare must be dropped");
    }

    #[test]
    fn pre_prepare_from_non_primary_rejected() {
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        let acts = r1.on_message(&signed(
            2,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
                batch: batch().into(),
            },
        ));
        assert!(acts.is_empty());
    }

    #[test]
    fn wrong_view_messages_ignored() {
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        let acts = r1.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(3),
                seq: SeqNum(1),
                digest: d(7),
                batch: batch().into(),
            },
        ));
        assert!(acts.is_empty());
    }

    #[test]
    fn duplicate_prepares_do_not_double_count() {
        // Use the primary (no own-prepare credit): five copies of the same
        // backup's prepare must never reach the 2f = 2 quorum.
        let mut p = Pbft::new(ReplicaId(0), cfg(4));
        p.propose(batch(), d(7));
        for _ in 0..5 {
            let acts = p.on_message(&signed(
                1,
                Message::Prepare {
                    view: ViewNum(0),
                    seq: SeqNum(1),
                    digest: d(7),
                },
            ));
            assert!(acts.is_empty(), "same sender must not reach quorum alone");
        }
    }

    #[test]
    fn checkpoint_cycle() {
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4)); // Δ = 2 batches
        assert!(r1.on_executed(SeqNum(1), d(1)).is_empty());
        let acts = r1.on_executed(SeqNum(2), d(2));
        assert!(
            matches!(&acts[..], [Action::Broadcast(Message::Checkpoint { seq, .. })] if *seq == SeqNum(2))
        );
        // The broadcast recorded r1's own vote; two matching remote
        // checkpoints complete the 2f+1 = 3 quorum.
        let acts = r1.on_message(&signed(
            0,
            Message::Checkpoint {
                seq: SeqNum(2),
                state_digest: d(2),
                replica: ReplicaId(0),
            },
        ));
        assert!(acts.is_empty());
        let acts = r1.on_message(&signed(
            2,
            Message::Checkpoint {
                seq: SeqNum(2),
                state_digest: d(2),
                replica: ReplicaId(2),
            },
        ));
        assert!(
            matches!(&acts[..], [Action::StableCheckpoint { seq }] if *seq == SeqNum(2)),
            "got {acts:?}"
        );
        // A late straggler vote for the already-stable sequence is a no-op.
        let acts = r1.on_message(&signed(
            3,
            Message::Checkpoint {
                seq: SeqNum(2),
                state_digest: d(2),
                replica: ReplicaId(3),
            },
        ));
        assert!(acts.is_empty(), "got {acts:?}");
        // Old sequences are now rejected.
        let acts = r1.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(9),
                batch: batch().into(),
            },
        ));
        assert!(acts.is_empty());
    }

    #[test]
    fn view_change_installs_new_primary() {
        // n=4: view 1's primary is r1. Drive view-change votes into r1.
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        let vote = |from: u32| {
            signed(
                from,
                Message::ViewChange {
                    new_view: ViewNum(1),
                    last_stable: SeqNum(0),
                    prepared: vec![],
                    tail: vec![],
                    replica: ReplicaId(from),
                    instance: 0,
                },
            )
        };
        assert!(r1.on_message(&vote(0)).is_empty());
        // The second vote reaches the f+1 join threshold: r1 joins the
        // view change without waiting for its own timer, its own vote
        // completes the 2f+1 quorum, and it becomes the view-1 primary.
        let acts = r1.on_message(&vote(2));
        assert!(
            acts.iter().any(|a| matches!(
                a,
                Action::Broadcast(Message::ViewChange { new_view, .. }) if *new_view == ViewNum(1)
            )),
            "must join the view change: {acts:?}"
        );
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::EnterView { view, .. } if *view == ViewNum(1))),
            "got {acts:?}"
        );
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::Broadcast(Message::NewView { .. }))),
            "incoming primary must announce"
        );
        assert!(r1.is_primary());
    }

    #[test]
    fn backup_joins_view_change_after_f_plus_one_votes() {
        // r3 is not view 1's primary and its own timer never fired, but
        // f+1 = 2 distinct replicas voting for a future view mean at least
        // one correct replica suspects the primary — r3 must join rather
        // than leave the voters stranded short of a quorum.
        let mut r3 = Pbft::new(ReplicaId(3), cfg(4));
        let vote = |from: u32| {
            signed(
                from,
                Message::ViewChange {
                    new_view: ViewNum(1),
                    last_stable: SeqNum(0),
                    prepared: vec![],
                    tail: vec![],
                    replica: ReplicaId(from),
                    instance: 0,
                },
            )
        };
        assert!(r3.on_message(&vote(0)).is_empty(), "one vote is not enough");
        let acts = r3.on_message(&vote(2));
        assert!(
            acts.iter().any(|a| matches!(
                a,
                Action::Broadcast(Message::ViewChange { new_view, .. }) if *new_view == ViewNum(1)
            )),
            "f+1 votes must trigger the join rule: {acts:?}"
        );
    }

    #[test]
    fn backup_follows_new_view_announcement() {
        let mut r2 = Pbft::new(ReplicaId(2), cfg(4));
        let acts = r2.on_message(&signed(
            1,
            Message::NewView {
                new_view: ViewNum(1),
                reissued: vec![],
                instance: 0,
            },
        ));
        assert!(matches!(&acts[..], [Action::EnterView { view, .. }] if *view == ViewNum(1)));
        assert_eq!(r2.primary(), ReplicaId(1));
        // NewView from a replica that is not the new primary is ignored.
        let acts = r2.on_message(&signed(
            3,
            Message::NewView {
                new_view: ViewNum(2),
                reissued: vec![],
                instance: 0,
            },
        ));
        assert!(acts.is_empty());
    }

    #[test]
    fn timeout_rebroadcasts_then_escalates() {
        let mut r2 = Pbft::new(ReplicaId(2), cfg(4));
        let vote_target = |acts: &[Action]| -> Option<ViewNum> {
            acts.iter().find_map(|a| match a {
                Action::Broadcast(Message::ViewChange { new_view, .. }) => Some(*new_view),
                _ => None,
            })
        };
        assert_eq!(vote_target(&r2.on_timeout()), Some(ViewNum(1)));
        // Re-fires re-broadcast the same vote (lossy networks drop votes).
        assert_eq!(vote_target(&r2.on_timeout()), Some(ViewNum(1)));
        assert_eq!(vote_target(&r2.on_timeout()), Some(ViewNum(1)));
        // After ESCALATE_AFTER fruitless re-fires, vote for the next view:
        // the voted-for primary may itself be down.
        assert_eq!(vote_target(&r2.on_timeout()), Some(ViewNum(2)));
    }

    #[test]
    fn view_change_reissues_in_flight_batches() {
        // r1 prepared seq 1 in view 0 but never committed it; the old
        // primary r0 died. Votes carrying r1's batch tail must make the new
        // primary (r1) re-issue seq 1 at its original number in view 1.
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        let b = batch();
        r1.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(1),
                digest: d(7),
                batch: b.clone().into(),
            },
        ));
        // Our own timeout vote carries the tail.
        r1.on_timeout();
        let vote = |from: u32, tail: Vec<(SeqNum, Digest, Arc<Batch>)>| {
            signed(
                from,
                Message::ViewChange {
                    new_view: ViewNum(1),
                    last_stable: SeqNum(0),
                    prepared: vec![],
                    tail,
                    replica: ReplicaId(from),
                    instance: 0,
                },
            )
        };
        assert!(r1
            .on_message(&vote(2, vec![(SeqNum(1), d(7), Arc::new(batch()))]))
            .is_empty());
        let acts = r1.on_message(&vote(3, vec![]));
        assert!(
            acts.iter()
                .any(|a| matches!(a, Action::EnterView { view, .. } if *view == ViewNum(1))),
            "got {acts:?}"
        );
        let reissued: Vec<(ViewNum, SeqNum, Digest)> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Broadcast(Message::PrePrepare {
                    view, seq, digest, ..
                }) => Some((*view, *seq, *digest)),
                _ => None,
            })
            .collect();
        assert_eq!(
            reissued,
            vec![(ViewNum(1), SeqNum(1), d(7))],
            "in-flight batch must be re-issued at its original sequence"
        );
        assert!(r1.is_primary());
        // The re-issued instance commits exactly once in the new view.
        for from in [2u32, 3] {
            r1.on_message(&signed(
                from,
                Message::Prepare {
                    view: ViewNum(1),
                    seq: SeqNum(1),
                    digest: d(7),
                },
            ));
        }
        let mut commits = Vec::new();
        for from in [2u32, 3] {
            commits.extend(r1.on_message(&signed(
                from,
                Message::Commit {
                    view: ViewNum(1),
                    seq: SeqNum(1),
                    digest: d(7),
                },
            )));
        }
        assert_eq!(
            commits
                .iter()
                .filter(|a| matches!(a, Action::CommitBatch { seq, .. } if *seq == SeqNum(1)))
                .count(),
            1,
            "re-issued sequence commits exactly once: {commits:?}"
        );
    }

    #[test]
    fn new_primary_fills_holes_with_noops() {
        // Votes carry seq 2 but nobody carried seq 1: the new primary must
        // fill the hole with a no-op batch so execution cannot stall.
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        r1.on_timeout();
        let tail = vec![(SeqNum(2), d(9), Arc::new(batch()))];
        let vote = |from: u32, tail: Vec<(SeqNum, Digest, Arc<Batch>)>| {
            signed(
                from,
                Message::ViewChange {
                    new_view: ViewNum(1),
                    last_stable: SeqNum(0),
                    prepared: vec![],
                    tail,
                    replica: ReplicaId(from),
                    instance: 0,
                },
            )
        };
        r1.on_message(&vote(2, tail.clone()));
        let acts = r1.on_message(&vote(3, tail));
        let reissued: Vec<(SeqNum, usize)> = acts
            .iter()
            .filter_map(|a| match a {
                Action::Broadcast(Message::PrePrepare { seq, batch, .. }) => {
                    Some((*seq, batch.len()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(reissued.len(), 2, "got {reissued:?}");
        assert_eq!(reissued[0], (SeqNum(1), 0), "hole filled with a no-op");
        assert_eq!(reissued[1].0, SeqNum(2));
    }

    #[test]
    fn future_view_preprepare_parks_until_install() {
        // The re-issued PrePrepare races ahead of the NewView announcement;
        // it must be replayed once the view installs, not dropped.
        let mut r2 = Pbft::new(ReplicaId(2), cfg(4));
        let acts = r2.on_message(&signed(
            1,
            Message::PrePrepare {
                view: ViewNum(1),
                seq: SeqNum(1),
                digest: d(7),
                batch: batch().into(),
            },
        ));
        assert!(acts.is_empty(), "future-view proposal is parked");
        let acts = r2.on_message(&signed(
            1,
            Message::NewView {
                new_view: ViewNum(1),
                reissued: vec![(SeqNum(1), d(7))],
                instance: 0,
            },
        ));
        assert!(
            acts.iter().any(|a| matches!(
                a,
                Action::Broadcast(Message::Prepare { view, seq, .. })
                    if *view == ViewNum(1) && *seq == SeqNum(1)
            )),
            "parked proposal replays on install: {acts:?}"
        );
    }

    /// Drives r1 (backup of a 4-node system) to commit `seq` with digest
    /// `dg` via the normal three-phase path.
    fn commit_at(r: &mut Pbft, seq: u64, dg: Digest) {
        r.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(seq),
                digest: dg,
                batch: batch().into(),
            },
        ));
        for from in [2u32, 3] {
            r.on_message(&signed(
                from,
                Message::Prepare {
                    view: ViewNum(0),
                    seq: SeqNum(seq),
                    digest: dg,
                },
            ));
        }
        for from in [0u32, 2] {
            r.on_message(&signed(
                from,
                Message::Commit {
                    view: ViewNum(0),
                    seq: SeqNum(seq),
                    digest: dg,
                },
            ));
        }
    }

    #[test]
    fn serve_fetch_returns_committed_batch_with_certificate() {
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        commit_at(&mut r1, 1, d(7));
        let (view, dg, b, cert) = r1.serve_fetch(SeqNum(1)).expect("committed");
        assert_eq!(view, ViewNum(0));
        assert_eq!(dg, d(7));
        assert_eq!(b.len(), 1);
        assert!(cert.signer_count() >= 3, "2f+1 commit proof");
        assert!(cert.contains(ReplicaId(1)), "server's own vote included");
        // Uncommitted and unknown sequences are not served.
        assert!(r1.serve_fetch(SeqNum(9)).is_none());
    }

    #[test]
    fn install_fetched_commits_without_voting() {
        // r3 missed everything about seq 1 (the hole) but committed seq 2.
        let mut r3 = Pbft::new(ReplicaId(3), cfg(4));
        let cert = BlockCertificate::new(
            (0..3)
                .map(|i| (ReplicaId(i), SignatureBytes(vec![i as u8; 8])))
                .collect(),
        );
        assert_eq!(r3.fetch_wanted(8), vec![], "no evidence yet");
        let acts = r3.install_fetched(SeqNum(1), ViewNum(0), d(7), batch().into(), cert.clone());
        assert!(
            matches!(&acts[..], [Action::CommitBatch { seq, .. }] if *seq == SeqNum(1)),
            "got {acts:?}"
        );
        // Installing again is a no-op (already committed).
        let acts = r3.install_fetched(SeqNum(1), ViewNum(0), d(7), batch().into(), cert);
        assert!(acts.is_empty(), "must not commit twice: {acts:?}");
    }

    #[test]
    fn fetch_wanted_reports_holes_below_commit_frontier() {
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        // Commit seq 3 while seqs 1 and 2 never arrived.
        commit_at(&mut r1, 3, d(3));
        assert_eq!(r1.fetch_wanted(8), vec![SeqNum(1), SeqNum(2)]);
        assert_eq!(r1.fetch_wanted(1), vec![SeqNum(1)], "limit respected");
        // Filling seq 1 narrows the gap.
        let cert = BlockCertificate::new(
            (0..3)
                .map(|i| (ReplicaId(i), SignatureBytes(vec![1u8; 8])))
                .collect(),
        );
        r1.install_fetched(SeqNum(1), ViewNum(0), d(1), batch().into(), cert);
        assert_eq!(r1.fetch_wanted(8), vec![SeqNum(2)]);
    }

    #[test]
    fn fetch_wanted_flags_lost_pre_prepare_with_vote_evidence() {
        // f+1 = 2 commit votes for seq 1 arrive but the PrePrepare never
        // does: the batch is being committed out there without us.
        let mut r1 = Pbft::new(ReplicaId(1), cfg(4));
        for from in [2u32, 3] {
            r1.on_message(&signed(
                from,
                Message::Commit {
                    view: ViewNum(0),
                    seq: SeqNum(1),
                    digest: d(7),
                },
            ));
        }
        assert_eq!(r1.fetch_wanted(8), vec![SeqNum(1)]);
    }

    #[test]
    fn install_snapshot_jumps_past_missed_history() {
        let mut r2 = Pbft::new(ReplicaId(2), cfg(4));
        r2.install_snapshot(SeqNum(10), Digest::ZERO);
        assert_eq!(r2.last_executed(), SeqNum(10));
        assert!(r2.next_seq() > SeqNum(10));
        assert!(r2.fetch_wanted(8).is_empty());
        // Pre-snapshot traffic is now below the stable point and ignored.
        let acts = r2.on_message(&signed(
            0,
            Message::PrePrepare {
                view: ViewNum(0),
                seq: SeqNum(5),
                digest: d(5),
                batch: batch().into(),
            },
        ));
        assert!(acts.is_empty(), "covered sequence must be rejected");
        let acts = r2.install_fetched(
            SeqNum(5),
            ViewNum(0),
            d(5),
            batch().into(),
            BlockCertificate::new(
                (0..3)
                    .map(|i| (ReplicaId(i), SignatureBytes(vec![0u8; 8])))
                    .collect(),
            ),
        );
        assert!(acts.is_empty(), "covered fetch must be rejected");
    }

    #[test]
    fn equivocating_primary_sends_distinct_proposals() {
        let mut p = Pbft::new(ReplicaId(0), cfg(4).with_equivocation(true));
        let b: Batch = (0..3u64)
            .map(|i| {
                Transaction::new(
                    ClientId(i),
                    i,
                    vec![Operation::Write {
                        key: i,
                        value: vec![i as u8],
                    }],
                )
            })
            .collect();
        let acts = p.propose(b, d(1));
        let digests: Vec<Digest> = acts
            .iter()
            .filter_map(|a| match a {
                Action::SendReplica(_, Message::PrePrepare { digest, .. }) => Some(*digest),
                _ => None,
            })
            .collect();
        assert_eq!(digests.len(), 3, "one per backup: {acts:?}");
        assert!(
            digests.windows(2).all(|w| w[0] != w[1]),
            "each backup must see a unique digest: {digests:?}"
        );
    }
}
